//! The live telemetry endpoint, scraped while the engine runs.
//!
//! Covers the acceptance criteria for production telemetry: a `GET /metrics`
//! during an `execute` run returns valid Prometheus text exposition carrying
//! the engine-pool gauges and p50/p95/p99 quantiles for every `*_seconds`
//! histogram, `/trace` returns Chrome trace-event JSON, and `/healthz`
//! answers while the engine is busy.

use quarry::service::{handle, ServiceRequest, ServiceResponse};
use quarry::Quarry;
use quarry_formats::xrq::figure4_requirement;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("response has a head");
    (head.to_string(), body.to_string())
}

/// A minimal Prometheus text-exposition parser: validates line grammar and
/// returns `name{labels} -> value` samples plus `# TYPE` declarations.
fn parse_prometheus(text: &str) -> (BTreeMap<String, f64>, BTreeMap<String, String>) {
    let mut samples = BTreeMap::new();
    let mut types = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("type line has a name");
            let kind = parts.next().expect("type line has a kind");
            assert!(["counter", "gauge", "histogram", "summary"].contains(&kind), "unknown metric kind in {line:?}");
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "only TYPE comments are emitted: {line:?}");
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("sample line {line:?}"));
        let value: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value.parse().unwrap_or_else(|_| panic!("numeric value in {line:?}"))
        };
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name grammar violated by {name:?}"
        );
        samples.insert(series.to_string(), value);
    }
    (samples, types)
}

#[test]
fn scrape_under_engine_load() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(figure4_requirement()).expect("requirement integrates");
    let addr = quarry.serve_metrics("127.0.0.1:0").expect("endpoint binds");

    // Hammer the endpoint from a background thread while the engine executes
    // the unified flow in the foreground.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let (head, body) = get(addr, "/metrics");
                assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                parse_prometheus(&body); // every mid-run scrape must parse
                let (health_head, health) = get(addr, "/healthz");
                assert!(health_head.starts_with("HTTP/1.1 200 OK"), "{health_head}");
                assert_eq!(health, "ok\n");
                scrapes += 1;
            }
            scrapes
        })
    };
    for _ in 0..3 {
        quarry.run_etl_parallel(quarry_engine::tpch::generate(0.002, 42)).expect("engine run succeeds");
    }
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes > 0, "at least one scrape landed during the runs");

    // Post-run scrape: pool gauges and per-series quantiles are all present.
    let (head, body) = get(addr, "/metrics");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    let (samples, types) = parse_prometheus(&body);
    for gauge in ["quarry_pool_queue_depth", "quarry_pool_active_workers", "quarry_pool_morsels_in_flight"] {
        assert_eq!(types.get(gauge).map(String::as_str), Some("gauge"), "{gauge} missing: {body}");
        assert!(samples.contains_key(gauge), "{gauge} sample missing");
    }
    assert!(samples.get("quarry_engine_runs_total").copied().unwrap_or(0.0) >= 3.0, "{body}");
    let seconds_families: Vec<&String> =
        types.keys().filter(|n| n.ends_with("_seconds") && types[*n] == "histogram").collect();
    assert!(
        seconds_families.iter().any(|n| *n == "quarry_engine_op_seconds"),
        "engine op timings exported: {seconds_families:?}"
    );
    for family in &seconds_families {
        for q in ["0.5", "0.95", "0.99"] {
            let series = format!("{family}_quantiles{{quantile=\"{q}\"}}");
            assert!(samples.contains_key(&series), "missing {series} in {body}");
        }
        assert!(samples.contains_key(&format!("{family}_bucket{{le=\"+Inf\"}}")), "{family} buckets");
    }

    // The trace endpoint serves Chrome trace-event JSON with worker lanes.
    let (head, trace) = get(addr, "/trace");
    assert!(head.contains("application/json"), "{head}");
    let json = quarry_repository::Json::parse(&trace).expect("trace is valid JSON");
    let events = json.path("traceEvents").and_then(|v| v.as_array().map(<[_]>::len)).unwrap_or(0);
    assert!(events > 0, "trace has events: {trace}");
    assert!(trace.contains("\"ph\":\"X\""), "{trace}");
    assert!(trace.contains("\"name\":\"execute\""), "{trace}");
    assert!(trace.contains("\"tid\":"), "{trace}");
}

#[test]
fn service_layer_starts_endpoint_from_config() {
    let domain = quarry_ontology::tpch::domain();
    let mut config = quarry::QuarryConfig::tpch(0.001);
    config.metrics_addr = Some("127.0.0.1:0".to_string());
    let mut quarry = Quarry::with_config(domain.ontology, domain.sources, config);

    let addr = match handle(&mut quarry, ServiceRequest::ServeMetrics { addr: None }) {
        ServiceResponse::Serving { addr } => addr.parse::<SocketAddr>().expect("bound address"),
        other => panic!("{other:?}"),
    };
    assert_eq!(quarry.metrics_addr(), Some(addr));
    // Serving enables recording, so a lifecycle step is immediately visible.
    quarry.add_requirement(figure4_requirement()).expect("requirement integrates");
    let (_, body) = get(addr, "/metrics");
    assert!(body.contains("quarry_integrator_etl_index_"), "{body}");
    quarry.stop_serving_metrics();
    assert_eq!(quarry.metrics_addr(), None);
}

#[test]
fn serve_without_address_or_config_is_a_structured_error() {
    let mut quarry = Quarry::tpch();
    match handle(&mut quarry, ServiceRequest::ServeMetrics { addr: None }) {
        ServiceResponse::Error(e) => assert!(e.contains("no metrics address"), "{e}"),
        other => panic!("{other:?}"),
    }
}
