//! End-to-end observability: a full lifecycle run (add → deploy → execute)
//! yields a retrievable span tree covering every phase, with per-phase
//! timings, per-operator engine rows/time, and cost deltas — via the façade,
//! the service endpoints, and the repository's versioned trace documents.

use quarry::obs::AttrValue;
use quarry::service::{handle, ServiceRequest, ServiceResponse};
use quarry::Quarry;
use quarry_formats::xrq::figure4_requirement;
use quarry_repository::{ArtifactKind, Json};

#[test]
fn full_run_yields_a_span_tree_covering_every_lifecycle_phase() {
    let mut q = Quarry::tpch();
    q.set_observability(true);
    q.add_requirement(figure4_requirement()).unwrap();
    q.deploy("native").unwrap();
    let (_, report) = q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();

    let trace = q.trace();
    assert_eq!(
        trace.spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
        ["add_requirement", "deploy", "execute"],
        "one root span per lifecycle step"
    );

    // Phase coverage: interpret → md_integrate → etl_integrate → validate
    // under add_requirement, then deploy and execute as their own steps.
    let add = &trace.spans[0];
    for phase in ["interpret", "md_integrate", "etl_integrate", "validate"] {
        let span = add.child(phase).unwrap_or_else(|| panic!("missing phase `{phase}` in {trace:?}"));
        assert!(span.start >= add.start, "{phase} starts within the step");
        assert!(span.elapsed <= add.elapsed, "{phase} fits inside the step");
    }
    assert_eq!(add.attr("requirement"), Some(&AttrValue::Str("IR1".into())));
    assert!(matches!(add.attr("md_cost"), Some(AttrValue::Float(c)) if *c > 0.0));

    // Cost deltas on the integrate phases: empty design → first requirement
    // means cost_before = 0 and cost_after = cost_delta > 0.
    let mdi = add.child("md_integrate").unwrap();
    assert_eq!(mdi.attr("cost_before"), Some(&AttrValue::Float(0.0)));
    assert!(matches!(mdi.attr("cost_delta"), Some(AttrValue::Float(d)) if *d > 0.0));
    let etli = add.child("etl_integrate").unwrap();
    assert!(matches!(etli.attr("cost_after"), Some(AttrValue::Float(c)) if *c > 0.0));

    // Deploy span carries the platform and what it emitted.
    let deploy = &trace.spans[1];
    assert_eq!(deploy.attr("platform"), Some(&AttrValue::Str("native".into())));
    assert!(matches!(deploy.attr("files"), Some(AttrValue::Int(n)) if *n >= 1));

    // Execute span: one child per engine operator, carrying the engine's own
    // measured rows and time (not re-measured by the lifecycle layer).
    let execute = &trace.spans[2];
    assert_eq!(execute.children.len(), report.timings.len());
    for timing in &report.timings {
        let op = execute.child(&timing.op).unwrap_or_else(|| panic!("missing operator span `{}`", timing.op));
        assert_eq!(op.elapsed, timing.elapsed, "engine timing lifted verbatim");
        assert_eq!(op.attr("rows_out"), Some(&AttrValue::Int(timing.rows_out as i64)));
        assert_eq!(op.attr("rows_in"), Some(&AttrValue::Int(timing.rows_in as i64)));
    }
    let loader = execute.find("LOADER_fact_table_revenue").expect("loader operator span");
    assert!(matches!(loader.attr("rows_in"), Some(AttrValue::Int(n)) if *n > 0));
    assert!(matches!(execute.attr("rows_processed"), Some(AttrValue::Int(n)) if *n > 0));

    // Metrics registry accumulated engine counters.
    assert_eq!(q.observability().metric("engine.runs").and_then(|m| m.as_counter()), Some(1));
    assert!(q.observability().metric("engine.rows").and_then(|m| m.as_counter()).unwrap() > 0);
}

#[test]
fn trace_is_retrievable_via_service_and_versioned_in_the_repository() {
    let mut q = Quarry::tpch();
    q.set_observability(true);
    let xrq = figure4_requirement().to_string_pretty();
    handle(&mut q, ServiceRequest::AddRequirement { xrq });
    handle(&mut q, ServiceRequest::Deploy { platform: "native".into() });
    q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();

    // GetTrace returns the span forest as JSON.
    let doc = match handle(&mut q, ServiceRequest::GetTrace) {
        ServiceResponse::Document(doc) => doc,
        other => panic!("{other:?}"),
    };
    let json = Json::parse(&doc).expect("trace document is well-formed JSON");
    let spans = json.get("spans").and_then(Json::as_array).unwrap();
    let names: Vec<&str> = spans.iter().filter_map(|s| s.get("name").and_then(Json::as_str)).collect();
    assert_eq!(names, ["add_requirement", "deploy", "execute"]);
    assert!(json.path("spans.0.elapsedUs").and_then(Json::as_f64).is_some(), "per-phase timing present");
    assert_eq!(json.path("spans.0.children.0.name").and_then(Json::as_str), Some("interpret"));
    assert_eq!(json.path("spans.1.attrs.platform").and_then(Json::as_str), Some("native"));

    // GetMetrics includes the engine counters and pool statistics.
    let metrics = match handle(&mut q, ServiceRequest::GetMetrics) {
        ServiceResponse::Document(doc) => Json::parse(&doc).unwrap(),
        other => panic!("{other:?}"),
    };
    assert_eq!(metrics.get("counters").and_then(|c| c.get("engine.runs")).and_then(Json::as_f64), Some(1.0));
    assert!(metrics.path("pool.regions").and_then(Json::as_f64).is_some());

    // Each lifecycle step versioned a trace document in the repository.
    let history = q.repository().history(ArtifactKind::Trace, "session");
    assert!(history.len() >= 3, "one trace version per step, got {}", history.len());
    let latest = Json::parse(&history.last().unwrap().content).unwrap();
    assert_eq!(latest.path("spans.0.name").and_then(Json::as_str), Some("add_requirement"));

    // The rendered tree (what `quarry-cli trace` prints) names every phase.
    let rendered = q.trace().render();
    for phase in ["add_requirement", "interpret", "md_integrate", "etl_integrate", "validate", "deploy", "execute"] {
        assert!(rendered.contains(phase), "rendered tree missing `{phase}`:\n{rendered}");
    }
}

#[test]
fn observability_is_off_by_default_and_clearable() {
    let mut q = Quarry::tpch();
    q.add_requirement(figure4_requirement()).unwrap();
    assert!(q.trace().is_empty(), "disabled by default");
    assert!(q.observability().metrics().is_empty());
    assert!(q.repository().history(ArtifactKind::Trace, "session").is_empty(), "nothing persisted while disabled");

    q.set_observability(true);
    q.deploy("native").unwrap();
    assert!(!q.trace().is_empty());
    q.observability().clear();
    assert!(q.trace().is_empty());
}

#[test]
fn failed_steps_are_traced_with_their_error() {
    let q = Quarry::tpch();
    q.set_observability(true);
    assert!(q.deploy("teradata").is_err());
    let trace = q.trace();
    let deploy = trace.find("deploy").expect("failed step still recorded");
    match deploy.attr("error") {
        Some(AttrValue::Str(e)) => assert!(e.contains("teradata"), "{e}"),
        other => panic!("expected error attr, got {other:?}"),
    }
}
