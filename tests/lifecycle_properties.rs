//! Property tests over the design lifecycle (the paper's §1 promise: "for
//! each new, changed, or removed requirement, an updated DW design must go
//! through a series of validation processes to guarantee the satisfaction of
//! the current set of requirements, and the soundness of the updated design
//! solutions").
//!
//! Invariants checked on randomized requirement sets and orders:
//!
//! 1. after every step the unified design is MD-sound and the flow validates;
//! 2. the satisfied-requirement set equals the lifecycle's requirement set;
//! 3. integration is idempotent (re-adding an identical design adds nothing);
//! 4. removal prunes every trace of the removed requirement.

use proptest::prelude::*;
use quarry::Quarry;
use quarry_formats::{MeasureSpec, Requirement, Slicer};

const MEASURES: [(&str, &str); 4] = [
    ("revenue", "Lineitem_l_extendedpriceATRIBUT * (1 - Lineitem_l_discountATRIBUT)"),
    ("quantity", "Lineitem_l_quantityATRIBUT"),
    ("gross", "Lineitem_l_extendedpriceATRIBUT"),
    ("netprofit", "Orders_o_totalpriceATRIBUT - Partsupp_ps_supplycostATRIBUT"),
];

const DIMS: [&str; 6] = [
    "Part_p_nameATRIBUT",
    "Supplier_s_nameATRIBUT",
    "Customer_c_mktsegmentATRIBUT",
    "Orders_o_orderpriorityATRIBUT",
    "Nation_n_nameATRIBUT",
    "Part_p_brandATRIBUT",
];

/// An index-vector encodes one requirement: measure index, two dim indices,
/// slicer on/off.
fn decode(id: usize, spec: (usize, usize, usize, bool)) -> Requirement {
    let (m, d1, d2, slice) = spec;
    let mut r = Requirement::new(format!("IR{id}"));
    let (name, expr) = MEASURES[m % MEASURES.len()];
    r.measures.push(MeasureSpec { id: format!("{name}_{id}"), function: expr.into() });
    r.dimensions.push(DIMS[d1 % DIMS.len()].into());
    let second = DIMS[d2 % DIMS.len()];
    if !r.dimensions.iter().any(|d| d == second) {
        r.dimensions.push(second.into());
    }
    if slice {
        r.slicers.push(Slicer { concept: "Nation_n_nameATRIBUT".into(), operator: "=".into(), value: "Spain".into() });
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_step_stays_sound_and_satisfaction_is_exact(
        specs in prop::collection::vec((0usize..4, 0usize..6, 0usize..6, any::<bool>()), 1..6),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
    ) {
        let mut quarry = Quarry::tpch();
        let mut live: Vec<String> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let req = decode(i, *spec);
            let id = req.id.clone();
            quarry.add_requirement(req).expect("family requirements are MD-compliant");
            live.push(id);
            let (md, etl) = quarry.unified();
            prop_assert!(md.is_sound());
            etl.validate().expect("flow validates after every add");
            let satisfied: Vec<String> = md.satisfied_requirements().into_iter().collect();
            let mut expected = live.clone();
            expected.sort();
            prop_assert_eq!(satisfied, expected);
        }
        for idx in removals {
            if live.is_empty() {
                break;
            }
            let victim = live.remove(idx.index(live.len()));
            quarry.remove_requirement(&victim).expect("live requirement removes");
            let (md, etl) = quarry.unified();
            prop_assert!(md.is_sound());
            if etl.op_count() > 0 {
                etl.validate().expect("flow validates after every removal");
            }
            // No trace of the victim anywhere.
            prop_assert!(!md.satisfied_requirements().contains(&victim));
            prop_assert!(etl.ops().all(|o| !o.satisfies.contains(&victim)));
            let satisfied: Vec<String> = md.satisfied_requirements().into_iter().collect();
            let mut expected = live.clone();
            expected.sort();
            prop_assert_eq!(satisfied, expected);
        }
    }

    #[test]
    fn md_integration_is_idempotent(
        spec in (0usize..4, 0usize..6, 0usize..6, any::<bool>()),
    ) {
        let quarry = Quarry::tpch();
        let req = decode(0, spec);
        let partial = quarry.interpret(&req).expect("valid").md;
        let model = quarry_md::StructuralComplexity::new();
        let once = quarry_integrator::md::integrate_md(&quarry_md::MdSchema::new("u"), &partial, &model)
            .expect("integrates");
        let twice = quarry_integrator::md::integrate_md(&once.schema, &partial, &model).expect("integrates");
        prop_assert_eq!(once.schema.size(), twice.schema.size(), "re-integrating an identical design adds nothing");
    }

    #[test]
    fn etl_integration_is_idempotent(
        spec in (0usize..4, 0usize..6, 0usize..6, any::<bool>()),
    ) {
        let quarry = Quarry::tpch();
        let req = decode(0, spec);
        let partial = quarry.interpret(&req).expect("valid").etl;
        let stats = &quarry.config().stats;
        let once = quarry_integrator::etl::integrate_etl_default(&quarry_etl::Flow::new("u"), &partial, stats)
            .expect("integrates");
        let twice = quarry_integrator::etl::integrate_etl_default(&once.flow, &partial, stats).expect("integrates");
        prop_assert_eq!(twice.report.added_ops, 0, "identical flow fully matches: {:?}", twice.report.matched);
        prop_assert_eq!(once.flow.op_count(), twice.flow.op_count());
    }

    #[test]
    fn add_then_remove_returns_to_the_previous_design_shape(
        base_spec in (0usize..4, 0usize..6, 0usize..6, any::<bool>()),
        extra_spec in (0usize..4, 0usize..6, 0usize..6, any::<bool>()),
    ) {
        let mut quarry = Quarry::tpch();
        quarry.add_requirement(decode(0, base_spec)).expect("valid");
        let (md_before, etl_before) = {
            let (m, e) = quarry.unified();
            (m.clone(), e.clone())
        };
        quarry.add_requirement(decode(1, extra_spec)).expect("valid");
        quarry.remove_requirement("IR1").expect("exists");
        let (md_after, etl_after) = quarry.unified();
        // Equal satisfaction and equal element counts — names/order of merged
        // internals may differ, so compare structure, not identity.
        prop_assert_eq!(md_after.satisfied_requirements(), md_before.satisfied_requirements());
        prop_assert_eq!(md_after.size(), md_before.size());
        prop_assert_eq!(etl_after.op_count(), etl_before.op_count());
        prop_assert!(md_after.is_sound());
    }
}
