//! Experiment E2: the Requirements Elicitor's assisted exploration
//! (paper Figure 2 / §2.1) — including the paper's concrete example: the
//! focus *Lineitem* yields suggested dimensions *Supplier*, *Nation*, *Part*.

use quarry::Quarry;
use quarry_elicitor::Elicitor;
use quarry_ontology::synthetic::{generate, SyntheticSpec};

#[test]
fn the_papers_lineitem_example_holds() {
    let quarry = Quarry::tpch();
    let lineitem = quarry.ontology().concept_by_name("Lineitem").expect("TPC-H has Lineitem");
    let suggestions = quarry.elicitor().suggest_dimensions(lineitem);
    let names: Vec<&str> = suggestions.iter().map(|s| s.name.as_str()).collect();
    for expected in ["Supplier", "Nation", "Part"] {
        assert!(names.contains(&expected), "paper example: {expected} must be suggested, got {names:?}");
    }
}

#[test]
fn suggestions_are_ranked_and_carry_paths() {
    let quarry = Quarry::tpch();
    let lineitem = quarry.ontology().concept_by_name("Lineitem").expect("present");
    let suggestions = quarry.elicitor().suggest_dimensions(lineitem);
    // Scores are non-increasing.
    for pair in suggestions.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
    // Every suggestion explains how to get there from the focus.
    for s in &suggestions {
        assert_eq!(s.via.first().map(String::as_str), Some("Lineitem"), "{:?}", s.via);
        assert_eq!(s.via.last().map(String::as_str), Some(s.name.as_str()));
        assert_eq!(s.via.len(), s.distance + 1);
    }
}

#[test]
fn foci_ranking_prefers_transaction_grain_concepts() {
    let quarry = Quarry::tpch();
    let foci = quarry.elicitor().suggest_foci();
    assert_eq!(foci[0].name, "Lineitem");
    let pos = |n: &str| foci.iter().position(|f| f.name == n).expect("all concepts ranked");
    assert!(pos("Lineitem") < pos("Region"), "rich hubs beat leaf concepts");
}

#[test]
fn a_session_built_from_suggestions_interprets_cleanly() {
    let quarry = Quarry::tpch();
    let lineitem = quarry.ontology().concept_by_name("Lineitem").expect("present");
    let perspective = quarry.elicitor().explore(lineitem);

    // Take the top measure and the top two dimensions, fully automatically.
    let mut session = quarry.session("IR-auto");
    let measure = &perspective.measures[0];
    session.add_measure("auto_measure", &measure.reference).expect("suggested measures resolve");
    for d in perspective.dimensions.iter().take(2) {
        // Pick each suggested concept's first descriptive property.
        let concept = d.concept;
        let prop = quarry
            .ontology()
            .all_properties(concept)
            .into_iter()
            .find(|&p| !quarry.ontology().property_def(p).identifier)
            .expect("suggested dimensions have descriptors");
        session.add_dimension(&quarry.ontology().property_ref(prop)).expect("resolves");
    }
    let requirement = session.build().expect("complete");
    let design = quarry.interpret(&requirement).expect("suggested perspectives are MD-compliant");
    assert!(design.md.is_sound());
}

#[test]
fn suggestion_quality_scales_to_large_ontologies() {
    for n in [32, 128, 512] {
        let domain = generate(&SyntheticSpec::with_concepts(n, 11));
        let elicitor = Elicitor::new(&domain.ontology);
        let suggestions = elicitor.suggest_dimensions(domain.hubs[0]);
        assert!(!suggestions.is_empty(), "hub of {n}-concept ontology has suggestions");
        // Everything suggested is genuinely reachable.
        for s in &suggestions {
            assert!(domain.ontology.functional_path(domain.hubs[0], s.concept).is_some());
        }
        let foci = elicitor.suggest_foci();
        assert_eq!(foci.len(), domain.ontology.concept_count());
    }
}
