//! Experiment E4: the paper's Figure 3 — partial designs for a revenue and a
//! netprofit requirement are consolidated into unified design solutions with
//! conformed dimensions (MD side) and shared flow prefixes (ETL side).

use quarry::Quarry;
use quarry_etl::cost::EtlCostModel;
use quarry_formats::{MeasureSpec, Requirement};

fn revenue_requirement() -> Requirement {
    let mut r = Requirement::new("IR1");
    r.measures.push(MeasureSpec {
        id: "revenue".into(),
        function: "Lineitem_l_extendedpriceATRIBUT * (1 - Lineitem_l_discountATRIBUT)".into(),
    });
    r.dimensions.push("Partsupp_ps_availqtyATRIBUT".into());
    r.dimensions.push("Orders_o_orderdateATRIBUT".into());
    r
}

fn netprofit_requirement() -> Requirement {
    let mut r = Requirement::new("IR2");
    r.measures.push(MeasureSpec {
        id: "netprofit".into(),
        function: "Orders_o_totalpriceATRIBUT - Partsupp_ps_supplycostATRIBUT".into(),
    });
    r.dimensions.push("Partsupp_ps_availqtyATRIBUT".into());
    r.dimensions.push("Orders_o_orderdateATRIBUT".into());
    r
}

#[test]
fn unified_md_schema_holds_both_facts_over_conformed_dimensions() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(revenue_requirement()).expect("IR1 integrates");
    quarry.add_requirement(netprofit_requirement()).expect("IR2 integrates");

    let (md, _) = quarry.unified();
    // Figure 3's unified xMD: fact_table_revenue and fact_table_netprofit
    // side by side. Same grain means the cost model may merge them; with
    // structural complexity the merged fact carries both measures — the
    // figure shows them as two facts, so verify both interpretations hold
    // the data: every measure present, dimensions conformed.
    let measures: Vec<&str> = md.facts.iter().flat_map(|f| f.measures.iter().map(|m| m.name.as_str())).collect();
    assert!(measures.contains(&"revenue"), "{measures:?}");
    assert!(measures.contains(&"netprofit"), "{measures:?}");
    assert_eq!(md.dimensions.len(), 2, "Partsupp and Orders are conformed, not duplicated");
    assert!(md.dimension("Partsupp").is_some() && md.dimension("Orders").is_some());
    for d in &md.dimensions {
        assert!(d.satisfies.contains("IR1") && d.satisfies.contains("IR2"), "{}: {:?}", d.name, d.satisfies);
    }
    assert!(md.is_sound());
}

#[test]
fn unified_etl_reuses_the_partsupp_orders_subflow() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(revenue_requirement()).expect("IR1 integrates");
    let before = quarry.unified().1.op_count();
    let update = quarry.add_requirement(netprofit_requirement()).expect("IR2 integrates");
    let report = update.etl_report.expect("integration ran");

    assert!(report.reused_ops >= 6, "sources, extractions and joins shared: {:?}", report.matched);
    let after = quarry.unified().1.op_count();
    assert!(
        after - before < netprofit_requirement_op_count(),
        "consolidation added fewer ops ({}) than a standalone flow ({})",
        after - before,
        netprofit_requirement_op_count()
    );

    // The shared scan serves both requirements.
    let etl = quarry.unified().1;
    let shared = etl.op_by_name("DATASTORE_Lineitem").expect("shared scan");
    assert!(shared.satisfies.contains("IR1") && shared.satisfies.contains("IR2"));
}

fn netprofit_requirement_op_count() -> usize {
    let quarry = Quarry::tpch();
    quarry.interpret(&netprofit_requirement()).expect("valid").etl.op_count()
}

#[test]
fn consolidated_flow_is_cheaper_than_running_both_partials() {
    let quarry = {
        let mut q = Quarry::tpch();
        q.add_requirement(revenue_requirement()).expect("IR1");
        q.add_requirement(netprofit_requirement()).expect("IR2");
        q
    };
    let model = quarry_etl::cost::EstimatedTime::new();
    let stats = &quarry.config().stats;
    let unified_cost = model.cost(quarry.unified().1, stats).expect("validates");

    let q2 = Quarry::tpch();
    let p1 = q2.interpret(&revenue_requirement()).expect("valid");
    let p2 = q2.interpret(&netprofit_requirement()).expect("valid");
    let separate = model.cost(&p1.etl, stats).expect("validates") + model.cost(&p2.etl, stats).expect("validates");
    assert!(unified_cost < separate, "integrated {unified_cost:.0} must beat separate {separate:.0}");
}

#[test]
fn both_facts_load_and_match_between_md_and_engine() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(revenue_requirement()).expect("IR1");
    quarry.add_requirement(netprofit_requirement()).expect("IR2");
    let (engine, report) = quarry.run_etl(quarry_engine::tpch::generate(0.002, 42)).expect("runs");
    assert!(report.rows_loaded("fact_table_revenue") > 0);
    assert!(report.rows_loaded("fact_table_netprofit") > 0);
    // Conformed grain: both facts have the same number of rows (same keys,
    // no slicers anywhere).
    assert_eq!(
        engine.catalog.get("fact_table_revenue").expect("loaded").len(),
        engine.catalog.get("fact_table_netprofit").expect("loaded").len(),
    );
    // Dimension tables are loaded once per dimension, not per requirement.
    assert_eq!(report.loaded.iter().filter(|(t, _)| t == "dim_partsupp").count(), 1);
}
