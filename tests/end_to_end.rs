//! End-to-end pipeline verification (experiment E1 / Figure 1).
//!
//! Drives the whole system — elicit, interpret, integrate, deploy, execute —
//! and cross-checks the warehouse contents against an independent
//! hand-rolled computation over the generated source data.

use quarry::Quarry;
use quarry_engine::{tpch, Value};
use quarry_formats::xrq::figure4_requirement;
use std::collections::HashMap;

/// Independently computes the Figure 4 query over the raw catalog:
/// AVG(l_extendedprice * l_discount) per (part, supplier) where the
/// supplier's nation is Spain.
fn expected_revenue(catalog: &quarry_engine::Catalog) -> HashMap<(i64, i64), (f64, u64)> {
    let nation = catalog.get("nation").expect("generated");
    let spain_key = nation
        .iter_rows()
        .find(|r| r[nation.col("n_name")] == Value::Str("Spain".into()))
        .map(|r| r[nation.col("n_nationkey")].clone())
        .expect("Spain exists");
    let supplier = catalog.get("supplier").expect("generated");
    let spanish: std::collections::HashSet<Value> = supplier
        .iter_rows()
        .filter(|r| r[supplier.col("s_nationkey")] == spain_key)
        .map(|r| r[supplier.col("s_suppkey")].clone())
        .collect();
    let li = catalog.get("lineitem").expect("generated");
    let (pk, sk, ep, dc) = (li.col("l_partkey"), li.col("l_suppkey"), li.col("l_extendedprice"), li.col("l_discount"));
    let mut acc: HashMap<(i64, i64), (f64, u64)> = HashMap::new();
    for r in li.iter_rows() {
        if !spanish.contains(&r[sk]) {
            continue;
        }
        let (Value::Int(p), Value::Int(s)) = (&r[pk], &r[sk]) else { panic!("keys are ints") };
        let revenue = r[ep].as_f64().expect("decimal") * r[dc].as_f64().expect("decimal");
        let slot = acc.entry((*p, *s)).or_insert((0.0, 0));
        slot.0 += revenue;
        slot.1 += 1;
    }
    acc
}

#[test]
fn figure4_pipeline_matches_an_independent_computation() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(figure4_requirement()).expect("figure 4 integrates");
    let catalog = tpch::generate(0.005, 42);
    let expected = expected_revenue(&catalog);
    let (engine, report) = quarry.run_etl(catalog).expect("flow executes");

    let fact = engine.catalog.get("fact_table_revenue").expect("fact loaded");
    assert_eq!(fact.len(), expected.len(), "one fact row per (part, supplier) group");
    assert_eq!(report.rows_loaded("fact_table_revenue"), expected.len());

    // Resolve fact FKs back to natural keys through the dimension tables.
    let dim_part = engine.catalog.get("dim_part").expect("dim loaded");
    let part_of: HashMap<Value, i64> = dim_part
        .iter_rows()
        .map(|r| {
            let Value::Int(natural) = r[dim_part.col("p_partkey")] else { panic!() };
            (r[dim_part.col("PartID")].clone(), natural)
        })
        .collect();
    let dim_supp = engine.catalog.get("dim_supplier").expect("dim loaded");
    let supp_of: HashMap<Value, i64> = dim_supp
        .iter_rows()
        .map(|r| {
            let Value::Int(natural) = r[dim_supp.col("s_suppkey")] else { panic!() };
            (r[dim_supp.col("SupplierID")].clone(), natural)
        })
        .collect();

    let (fk_p, fk_s, rev) = (fact.col("Part_PartID"), fact.col("Supplier_SupplierID"), fact.col("revenue"));
    for row in fact.iter_rows() {
        let p = part_of[&row[fk_p]];
        let s = supp_of[&row[fk_s]];
        let (sum, n) = expected[&(p, s)];
        let avg = sum / n as f64;
        let got = row[rev].as_f64().expect("revenue is numeric");
        assert!((got - avg).abs() < 1e-9, "part {p} supplier {s}: engine {got} vs expected {avg}");
    }
}

#[test]
fn incremental_lifecycle_stays_consistent_over_many_requirements() {
    let mut quarry = Quarry::tpch();
    let mut specs = Vec::new();
    // A family of requirements over rotating dimensions and measures.
    let dims = [
        "Part_p_nameATRIBUT",
        "Supplier_s_nameATRIBUT",
        "Customer_c_mktsegmentATRIBUT",
        "Orders_o_orderpriorityATRIBUT",
    ];
    let measures = [
        ("qty", "Lineitem_l_quantityATRIBUT"),
        ("gross", "Lineitem_l_extendedpriceATRIBUT"),
        ("taxed", "Lineitem_l_extendedpriceATRIBUT * (1 + Lineitem_l_taxATRIBUT)"),
    ];
    for i in 0..9 {
        let mut req = quarry_formats::Requirement::new(format!("IR{i}"));
        let (name, expr) = measures[i % measures.len()];
        req.measures.push(quarry_formats::MeasureSpec { id: format!("{name}{i}"), function: expr.into() });
        req.dimensions.push(dims[i % dims.len()].into());
        req.dimensions.push(dims[(i + 1) % dims.len()].into());
        specs.push(req);
    }
    let mut last_cost = 0.0;
    for req in specs {
        let update = quarry.add_requirement(req).expect("family integrates");
        assert!(update.warnings.iter().all(|w| !w.kind.is_error()), "{:?}", update.warnings);
        last_cost = update.md_cost;
    }
    assert_eq!(quarry.requirement_ids().len(), 9);
    let (md, etl) = quarry.unified();
    assert!(md.is_sound());
    etl.validate().expect("unified flow validates");
    // All nine requirements share one Lineitem-grain fact family and four
    // dimensions: far below the naive 9-fact/18-dimension union.
    assert!(md.dimensions.len() <= 4, "conformed dimensions: {}", md.dimensions.len());
    assert!(last_cost > 0.0);

    // The full design runs.
    let (_, report) = quarry.run_etl(tpch::generate(0.002, 13)).expect("unified flow executes");
    assert!(report.loaded.iter().any(|(t, _)| t.starts_with("fact_table_")));
}

#[test]
fn deployment_artifacts_cover_the_unified_design() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(figure4_requirement()).expect("integrates");
    let artifacts = quarry.deploy("postgres-pdi").expect("deploys");
    let sql = artifacts.file("schema.sql").expect("DDL generated");
    assert!(sql.contains("CREATE TABLE fact_table_revenue"));
    assert!(sql.contains("CREATE TABLE dim_part"));
    assert!(sql.contains("CREATE TABLE dim_supplier"));
    let ktr = artifacts.file("unified.ktr").expect("KTR generated");
    let parsed = quarry_xml::parse(ktr).expect("well-formed XML");
    let steps = parsed.children_named("step").count();
    assert_eq!(steps, quarry.unified().1.op_count(), "one PDI step per logical op");
}
