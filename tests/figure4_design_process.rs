//! Experiment E3: the paper's Figure 4 — one xRQ document flows through the
//! Requirements Interpreter into partial xMD and xLM designs.

use quarry_formats::xrq::{self, figure4_requirement};
use quarry_formats::{xlm, xmd, Requirement};
use quarry_interpreter::Interpreter;
use quarry_ontology::tpch;

/// The exact snippet printed in Figure 4 (bottom-left).
const FIGURE4_XRQ: &str = r#"<cube id="IR1">
  <dimensions>
    <concept id="Part_p_nameATRIBUT"/>
    <concept id="Supplier_s_nameATRIBUT"/>
  </dimensions>
  <measures>
    <concept id="revenue">
      <function>Lineitem_l_extendedpriceATRIBUT * Lineitem_l_discountATRIBUT</function>
    </concept>
  </measures>
  <slicers>
    <comparison>
      <concept id="Nation_n_nameATRIBUT"/>
      <operator>=</operator>
      <value>Spain</value>
    </comparison>
  </slicers>
  <aggregations>
    <aggregation order="1">
      <dimension refID="Part_p_nameATRIBUT"/>
      <measure refID="revenue"/>
      <function>AVERAGE</function>
    </aggregation>
    <aggregation order="1">
      <dimension refID="Supplier_s_nameATRIBUT"/>
      <measure refID="revenue"/>
      <function>AVERAGE</function>
    </aggregation>
  </aggregations>
</cube>"#;

#[test]
fn the_snippet_parses_to_the_canonical_requirement() {
    let parsed = Requirement::parse(FIGURE4_XRQ).expect("the paper snippet is valid xRQ");
    // The figure carries no prose description; everything else agrees.
    let mut reference = figure4_requirement();
    reference.description.clear();
    assert_eq!(parsed, reference);
}

#[test]
fn interpreter_produces_partial_xmd_matching_the_figure() {
    let domain = tpch::domain();
    let design = Interpreter::new(&domain.ontology, &domain.sources)
        .interpret(&figure4_requirement())
        .expect("figure 4 is MD-compliant");

    let doc = xmd::to_string(&design.md);
    // The figure's top-right snippet: an MDschema with the revenue fact and
    // the Part dimension.
    for needle in ["<MDschema", "<facts>", "<name>fact_table_revenue</name>", "<dimension>", "<name>Part</name>"] {
        assert!(doc.contains(needle), "missing `{needle}` in\n{doc}");
    }
    // Round-trips losslessly.
    assert_eq!(xmd::parse(&doc).expect("roundtrip"), design.md);
    // Structure: one fact at the Lineitem grain over Part and Supplier.
    let fact = design.md.fact("fact_table_revenue").expect("present");
    assert_eq!(fact.concept.as_deref(), Some("Lineitem"));
    assert_eq!(fact.measures[0].expression, "Lineitem_l_extendedpriceATRIBUT * Lineitem_l_discountATRIBUT");
    assert_eq!(fact.dimensions.len(), 2);
    assert!(design.md.is_sound());
}

#[test]
fn interpreter_produces_partial_xlm_matching_the_figure() {
    let domain = tpch::domain();
    let design = Interpreter::new(&domain.ontology, &domain.sources)
        .interpret(&figure4_requirement())
        .expect("figure 4 is MD-compliant");

    let doc = xlm::to_string(&design.etl);
    // The figure's bottom-right snippet: a <design> with <edges>/<nodes>,
    // Datastore-typed nodes with TableInput optypes.
    for needle in [
        "<design>",
        "<edges>",
        "<enabled>Y</enabled>",
        "<nodes>",
        "<type>Datastore</type>",
        "<optype>TableInput</optype>",
        "<name>DATASTORE_Lineitem</name>",
    ] {
        assert!(doc.contains(needle), "missing `{needle}` in\n{doc}");
    }
    let parsed = xlm::parse(&doc).expect("roundtrip");
    assert_eq!(parsed.op_count(), design.etl.op_count());
    parsed.validate().expect("parsed flow validates");
}

#[test]
fn every_generated_element_is_stamped_with_the_requirement() {
    let domain = tpch::domain();
    let design = Interpreter::new(&domain.ontology, &domain.sources)
        .interpret(&figure4_requirement())
        .expect("figure 4 is MD-compliant");
    assert!(design.md.facts.iter().all(|f| f.satisfies.contains("IR1")));
    assert!(design.md.dimensions.iter().all(|d| d.satisfies.contains("IR1")));
    assert!(design.etl.ops().all(|o| o.satisfies.contains("IR1")));
}

#[test]
fn xrq_emitter_reproduces_the_figure_shape() {
    let emitted = figure4_requirement().to_string_pretty();
    let reparsed = xrq::Requirement::parse(&emitted).expect("self-roundtrip");
    assert_eq!(reparsed, figure4_requirement());
    // Key lexical features of the snippet survive verbatim.
    for needle in [
        r#"<concept id="Part_p_nameATRIBUT"/>"#,
        "<operator>=</operator>",
        "<value>Spain</value>",
        "<function>AVERAGE</function>",
    ] {
        assert!(emitted.contains(needle), "missing `{needle}`");
    }
}
