//! Experiment E10: accommodating a DW design to changes (demo scenario 2) —
//! requirements are added, changed and removed; after every step the design
//! satisfies exactly the surviving requirements, stays MD-compliant and
//! executable.

use quarry::{Quarry, QuarryError};
use quarry_formats::{MeasureSpec, Requirement, Slicer};

fn req(id: &str, measure: (&str, &str), dims: &[&str]) -> Requirement {
    let mut r = Requirement::new(id);
    r.measures.push(MeasureSpec { id: measure.0.into(), function: measure.1.into() });
    r.dimensions.extend(dims.iter().map(|d| d.to_string()));
    r
}

fn family() -> Vec<Requirement> {
    vec![
        req(
            "IR1",
            ("revenue", "Lineitem_l_extendedpriceATRIBUT * (1 - Lineitem_l_discountATRIBUT)"),
            &["Part_p_nameATRIBUT", "Supplier_s_nameATRIBUT"],
        ),
        req("IR2", ("quantity", "Lineitem_l_quantityATRIBUT"), &["Part_p_nameATRIBUT"]),
        req(
            "IR3",
            ("netprofit", "Orders_o_totalpriceATRIBUT - Partsupp_ps_supplycostATRIBUT"),
            &["Supplier_s_nameATRIBUT"],
        ),
        req("IR4", ("balance", "Customer_c_acctbalATRIBUT"), &["Customer_c_mktsegmentATRIBUT", "Nation_n_nameATRIBUT"]),
    ]
}

#[test]
fn removal_prunes_exactly_the_exclusive_elements() {
    let mut quarry = Quarry::tpch();
    for r in family() {
        quarry.add_requirement(r).expect("family integrates");
    }
    let (md_before, etl_before) = {
        let (m, e) = quarry.unified();
        (m.clone(), e.clone())
    };

    quarry.remove_requirement("IR4").expect("IR4 exists");
    let (md, etl) = quarry.unified();

    // IR4's private dimension is gone, shared elements survive.
    assert!(md.dimension("Customer").is_none());
    assert!(md.dimension("Part").is_some());
    assert!(md.dimension("Supplier").is_some());
    assert!(etl.op_count() < etl_before.op_count());
    assert!(!etl.ops().any(|o| o.satisfies.contains("IR4")));
    assert!(md.is_sound());
    etl.validate().expect("still valid");

    // Satisfied set is exactly {IR1, IR2, IR3}.
    let satisfied = md.satisfied_requirements();
    assert_eq!(satisfied.iter().map(String::as_str).collect::<Vec<_>>(), ["IR1", "IR2", "IR3"]);
    drop(md_before);
}

#[test]
fn readding_a_removed_requirement_restores_satisfaction() {
    let mut quarry = Quarry::tpch();
    for r in family() {
        quarry.add_requirement(r).expect("integrates");
    }
    quarry.remove_requirement("IR2").expect("exists");
    assert!(!quarry.unified().0.satisfied_requirements().contains("IR2"));
    quarry.add_requirement(family().remove(1)).expect("re-integrates");
    assert!(quarry.unified().0.satisfied_requirements().contains("IR2"));
    assert!(quarry.unified().0.is_sound());
}

#[test]
fn change_narrows_a_requirement_with_a_new_slicer() {
    let mut quarry = Quarry::tpch();
    for r in family() {
        quarry.add_requirement(r).expect("integrates");
    }
    let mut narrowed = family().remove(0);
    narrowed.slicers.push(Slicer {
        concept: "Nation_n_nameATRIBUT".into(),
        operator: "=".into(),
        value: "Spain".into(),
    });
    quarry.change_requirement(narrowed).expect("change integrates");
    let (_, etl) = quarry.unified();
    assert!(
        etl.ops().any(|o| matches!(
            &o.kind,
            quarry_etl::OpKind::Selection { predicate } if predicate.to_string().contains("Spain")
        )),
        "the new slicer materialized as a selection"
    );
    // All four requirements still satisfied.
    assert_eq!(quarry.requirement_ids().len(), 4);
}

#[test]
fn every_intermediate_design_executes() {
    let mut quarry = Quarry::tpch();
    let catalog = quarry_engine::tpch::generate(0.002, 99);
    for r in family() {
        quarry.add_requirement(r).expect("integrates");
        let (_, report) = quarry.run_etl(catalog.clone()).expect("intermediate design runs");
        assert!(report.rows_processed > 0);
    }
    for id in ["IR1", "IR3"] {
        quarry.remove_requirement(id).expect("exists");
        let (_, report) = quarry.run_etl(catalog.clone()).expect("post-removal design runs");
        assert!(report.rows_processed > 0);
    }
}

#[test]
fn lifecycle_errors_leave_the_design_untouched() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(family().remove(0)).expect("integrates");
    let before = quarry.unified().0.clone();

    // Unknown removal.
    assert!(matches!(quarry.remove_requirement("IRX"), Err(QuarryError::UnknownRequirement(_))));
    // Duplicate addition.
    assert!(matches!(quarry.add_requirement(family().remove(0)), Err(QuarryError::DuplicateRequirement(_))));
    // Invalid new requirement.
    let mut bad = req("IR9", ("m", "Ghost_xATRIBUT"), &["Part_p_nameATRIBUT"]);
    bad.id = "IR9".into();
    assert!(matches!(quarry.add_requirement(bad), Err(QuarryError::Interpret(_))));

    assert_eq!(*quarry.unified().0, before);
}

#[test]
fn repository_versions_grow_with_every_step() {
    let mut quarry = Quarry::tpch();
    for r in family() {
        quarry.add_requirement(r).expect("integrates");
    }
    quarry.remove_requirement("IR1").expect("exists");
    let history = quarry.repository().history(quarry_repository::ArtifactKind::MdSchema, "unified");
    assert_eq!(history.len(), 5, "four additions + one removal");
    // The last version no longer carries IR1's measure (the merged fact's
    // *name* is sticky — it was named after the first head measure — but
    // the revenue measure itself is pruned).
    let last = quarry_formats::xmd::parse(&history.last().expect("non-empty").content).expect("stored xMD parses");
    assert!(last.facts.iter().all(|f| f.measure("revenue").is_none()), "revenue measure must be pruned");
    assert!(!last.satisfied_requirements().contains("IR1"));
}
