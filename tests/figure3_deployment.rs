//! Experiment E5: the paper's Figure 3 deployment — the unified design over
//! Partsupp and Orders becomes PostgreSQL DDL with the exact snippet shape
//! (`fact_table_revenue (Partsupp_PartsuppID BIGINT …, PRIMARY
//! KEY(Partsupp_PartsuppID, Orders_OrdersID))`) plus a Pentaho PDI
//! transformation.

use quarry::Quarry;
use quarry_formats::{MeasureSpec, Requirement};

fn figure3_quarry() -> Quarry {
    let mut quarry = Quarry::tpch();
    let mut revenue = Requirement::new("IR1");
    revenue.measures.push(MeasureSpec {
        id: "revenue".into(),
        function: "Lineitem_l_extendedpriceATRIBUT * (1 - Lineitem_l_discountATRIBUT)".into(),
    });
    revenue.dimensions.push("Partsupp_ps_availqtyATRIBUT".into());
    revenue.dimensions.push("Orders_o_orderdateATRIBUT".into());
    quarry.add_requirement(revenue).expect("IR1 integrates");

    let mut netprofit = Requirement::new("IR2");
    netprofit.measures.push(MeasureSpec {
        id: "netprofit".into(),
        function: "Orders_o_totalpriceATRIBUT - Partsupp_ps_supplycostATRIBUT".into(),
    });
    netprofit.dimensions.push("Partsupp_ps_availqtyATRIBUT".into());
    netprofit.dimensions.push("Orders_o_orderdateATRIBUT".into());
    quarry.add_requirement(netprofit).expect("IR2 integrates");
    quarry
}

#[test]
fn ddl_reproduces_the_figure3_snippet() {
    let quarry = figure3_quarry();
    let artifacts = quarry.deploy("postgres-pdi").expect("design deploys");
    let sql = artifacts.file("schema.sql").expect("DDL present");

    // The paper's fact shape, verbatim elements.
    assert!(sql.contains("CREATE DATABASE demo;"), "{sql}");
    assert!(sql.contains("CREATE TABLE fact_table_revenue ("), "{sql}");
    assert!(sql.contains("Partsupp_PartsuppID BIGINT"), "{sql}");
    assert!(sql.contains("Orders_OrdersID BIGINT"), "{sql}");
    assert!(sql.contains("revenue double precision"), "{sql}");
    assert!(
        sql.contains("PRIMARY KEY( Orders_OrdersID, Partsupp_PartsuppID )")
            || sql.contains("PRIMARY KEY( Partsupp_PartsuppID, Orders_OrdersID )"),
        "composite PK over both FKs: {sql}"
    );
    // The netprofit measure landed too (Figure 3 shows both facts).
    assert!(sql.contains("netprofit double precision"), "{sql}");
}

#[test]
fn ktr_reproduces_the_figure3_snippet() {
    let quarry = figure3_quarry();
    let artifacts = quarry.deploy("postgres-pdi").expect("design deploys");
    let ktr = artifacts.file("unified.ktr").expect("KTR present");
    for needle in [
        "<transformation>",
        "<database>demo</database>",
        "<hop>",
        "<from>DATASTORE_Partsupp</from>",
        "<to>EXTRACTION_Partsupp</to>",
        "<enabled>Y</enabled>",
        "<name>DATASTORE_Partsupp</name>",
        "<type>TableInput</type>",
    ] {
        assert!(ktr.contains(needle), "missing `{needle}` in the KTR");
    }
    quarry_xml::parse(ktr).expect("KTR is well-formed XML");
}

#[test]
fn deployment_is_recorded_in_the_metadata_repository() {
    let quarry = figure3_quarry();
    quarry.deploy("postgres-pdi").expect("deploys");
    let repo = quarry.repository();
    let stored = repo.latest(quarry_repository::ArtifactKind::Deployment, "postgres-pdi/schema.sql").expect("recorded");
    assert!(stored.content.contains("fact_table_revenue"));
    // Deploying twice versions the artifacts.
    quarry.deploy("postgres-pdi").expect("deploys again");
    assert_eq!(repo.history(quarry_repository::ArtifactKind::Deployment, "postgres-pdi/schema.sql").len(), 2);
}

#[test]
fn generated_ddl_and_engine_layout_agree_on_the_fact_table() {
    let quarry = figure3_quarry();
    let artifacts = quarry.deploy("postgres-pdi").expect("deploys");
    let sql = artifacts.file("schema.sql").expect("present");
    let (engine, _) = quarry.run_etl(quarry_engine::tpch::generate(0.002, 42)).expect("runs");
    let fact = engine.catalog.get("fact_table_revenue").expect("loaded");
    for col in fact.schema.names() {
        assert!(sql.contains(col), "engine column `{col}` must appear in the DDL");
    }
}
