//! Property tests: the generic equivalence rules (experiment E8's machinery)
//! preserve the relations computed at every sink — verified by executing the
//! original and normalized flows on the engine and comparing result bags.

use proptest::prelude::*;
use quarry_engine::{assert_same_rows, tpch, Engine};
use quarry_etl::{parse_expr, rules, AggSpec, Flow, JoinKind, OpKind, Schema};

fn li_schema() -> Schema {
    tpch::table_schema("lineitem").expect("known table")
}

fn orders_schema() -> Schema {
    tpch::table_schema("orders").expect("known table")
}

/// A pool of predicates over lineitem/orders columns.
fn predicates() -> Vec<&'static str> {
    vec![
        "l_discount > 0.05",
        "l_quantity <= 25",
        "l_extendedprice > 20000",
        "o_totalprice > 100000",
        "l_discount > 0.02 AND l_quantity > 10",
        "l_shipdate >= '1995-01-01'",
    ]
}

/// Builds a randomized but always-valid flow: lineitem (⋈ orders)?, a stack
/// of selections/projections/derivations in random order, aggregate, load.
fn arbitrary_flow(choices: &[usize]) -> Flow {
    let mut f = Flow::new("prop");
    let li = f.add_op("L", OpKind::Datastore { datastore: "lineitem".into(), schema: li_schema() }).expect("fresh");
    let with_orders = choices[0].is_multiple_of(2);
    let mut current = li;
    if with_orders {
        let o =
            f.add_op("O", OpKind::Datastore { datastore: "orders".into(), schema: orders_schema() }).expect("fresh");
        let j = f
            .add_op(
                "J",
                OpKind::Join {
                    kind: JoinKind::Inner,
                    left_on: vec!["l_orderkey".into()],
                    right_on: vec!["o_orderkey".into()],
                },
            )
            .expect("fresh");
        f.connect(li, j).expect("connects");
        f.connect(o, j).expect("connects");
        current = j;
    }
    let preds = predicates();
    for (i, &c) in choices[1..].iter().enumerate() {
        match c % 3 {
            0 => {
                let pred = preds[c % preds.len()];
                if !with_orders && pred.starts_with("o_") {
                    continue;
                }
                current = f
                    .append(current, format!("S{i}"), OpKind::Selection { predicate: parse_expr(pred).expect("valid") })
                    .expect("fresh");
            }
            1 => {
                current = f
                    .append(
                        current,
                        format!("D{i}"),
                        OpKind::Derivation {
                            column: format!("d{i}"),
                            expr: parse_expr("l_extendedprice * (1 - l_discount)").expect("valid"),
                        },
                    )
                    .expect("fresh");
            }
            _ => {
                current = f
                    .append(current, format!("SO{i}"), OpKind::Sort { columns: vec!["l_orderkey".into()] })
                    .expect("fresh");
            }
        }
    }
    let agg = f
        .append(
            current,
            "AGG",
            OpKind::Aggregation {
                group_by: vec!["l_orderkey".into()],
                aggregates: vec![
                    AggSpec::new("SUM", parse_expr("l_extendedprice").expect("valid"), "total"),
                    AggSpec::new("COUNT", parse_expr("1").expect("valid"), "n"),
                ],
            },
        )
        .expect("fresh");
    f.append(agg, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).expect("fresh");
    f
}

fn run(flow: &Flow) -> quarry_engine::Relation {
    let mut engine = Engine::new(tpch::generate(0.001, 1234));
    engine.run(flow).expect("flow executes");
    engine.catalog.remove("out").expect("loaded")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn normalization_preserves_results(choices in prop::collection::vec(0usize..12, 3..8)) {
        let original = arbitrary_flow(&choices);
        original.validate().expect("generated flows are valid");
        let mut normalized = original.clone();
        rules::normalize(&mut normalized).expect("rules apply");
        normalized.validate().expect("normalized flows stay valid");
        let a = run(&original);
        let b = run(&normalized);
        assert_same_rows(&a, &b);
    }
}

#[test]
fn normalization_preserves_results_on_the_figure4_flow() {
    let domain = quarry_ontology::tpch::domain();
    let design = quarry_interpreter::Interpreter::new(&domain.ontology, &domain.sources)
        .interpret(&quarry_formats::xrq::figure4_requirement())
        .expect("figure 4 interprets");
    let mut normalized = design.etl.clone();
    rules::normalize(&mut normalized).expect("rules apply");

    let catalog = tpch::generate(0.002, 7);
    let mut e1 = Engine::new(catalog.clone());
    e1.run(&design.etl).expect("original runs");
    let mut e2 = Engine::new(catalog);
    e2.run(&normalized).expect("normalized runs");
    for table in ["fact_table_revenue", "dim_part", "dim_supplier"] {
        assert_same_rows(e1.catalog.get(table).expect("loaded"), e2.catalog.get(table).expect("loaded"));
    }
}
