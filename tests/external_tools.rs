//! Cross-platform interoperability (paper §2.2): "Quarry allows plugging in
//! other external design tools, with the assumption that the provided
//! partial designs are sound … To enable such cross-platform
//! interoperability, Quarry provides logical, platform-independent
//! representations."
//!
//! These tests play the external tool: partial designs arrive as raw xMD/xLM
//! *text*, enter through the format registry, and integrate into the unified
//! design like any interpreter-produced partial.

use quarry::{Quarry, QuarryError};
use quarry_formats::registry::Artifact;
use quarry_formats::xrq::figure4_requirement;

/// A hand-authored partial design, as an external tool would emit it: a
/// quantity-by-part fact fed by a three-op flow.
const EXTERNAL_XMD: &str = r#"<MDschema name="external">
  <facts>
    <fact>
      <name>fact_table_quantity</name>
      <concept>Lineitem</concept>
      <measures>
        <measure>
          <name>quantity</name>
          <expression>l_quantity</expression>
          <datatype>decimal</datatype>
          <additivity>flow</additivity>
          <aggregation>SUM</aggregation>
        </measure>
      </measures>
      <dimensionRefs>
        <dimensionRef><dimension>Part</dimension><level>Part</level></dimensionRef>
      </dimensionRefs>
    </fact>
  </facts>
  <dimensions>
    <dimension>
      <name>Part</name>
      <atomic>Part</atomic>
      <temporal>false</temporal>
      <levels>
        <level>
          <name>Part</name>
          <key>PartID</key>
          <keyType>integer</keyType>
          <concept>Part</concept>
          <attributes>
            <attribute><name>p_name</name><datatype>text</datatype></attribute>
          </attributes>
        </level>
      </levels>
      <rollups/>
    </dimension>
  </dimensions>
</MDschema>"#;

const EXTERNAL_XLM: &str = r#"<design>
  <metadata><name>external</name></metadata>
  <edges>
    <edge><from>DATASTORE_Lineitem</from><to>AGG_qty</to><enabled>Y</enabled></edge>
    <edge><from>AGG_qty</from><to>LOADER_quantity</to><enabled>Y</enabled></edge>
  </edges>
  <nodes>
    <node>
      <name>DATASTORE_Lineitem</name>
      <type>Datastore</type>
      <optype>TableInput</optype>
      <datastore>lineitem</datastore>
      <schema>
        <column name="l_partkey" type="integer"/>
        <column name="l_quantity" type="decimal"/>
      </schema>
    </node>
    <node>
      <name>AGG_qty</name>
      <type>Aggregation</type>
      <optype>GroupBy</optype>
      <groupBy><column>l_partkey</column></groupBy>
      <aggregates>
        <aggregate><function>SUM</function><input>l_quantity</input><output>quantity</output></aggregate>
      </aggregates>
    </node>
    <node>
      <name>LOADER_quantity</name>
      <type>Loader</type>
      <optype>TableOutput</optype>
      <table>fact_table_quantity</table>
    </node>
  </nodes>
</design>"#;

#[test]
fn external_partial_design_imports_and_integrates() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(figure4_requirement()).expect("IR1 integrates");

    // The external artifacts enter through the format registry.
    let md = match quarry.formats().import("xmd", EXTERNAL_XMD).expect("valid xMD") {
        Artifact::Md(s) => s,
        other => panic!("wrong kind {}", other.kind()),
    };
    let etl = match quarry.formats().import("xlm", EXTERNAL_XLM).expect("valid xLM") {
        Artifact::Etl(f) => f,
        other => panic!("wrong kind {}", other.kind()),
    };

    let update = quarry.add_partial_design("IR-ext", md, etl).expect("sound external design integrates");
    assert_eq!(update.requirement_id, "IR-ext");
    let report = update.md_report.expect("integration ran");
    assert!(
        report.matches.iter().any(|m| matches!(m, quarry_integrator::md::MdMatch::Dimension { .. })),
        "the external Part dimension conforms with IR1's: {:?}",
        report.matches
    );

    let (md, etl) = quarry.unified();
    assert!(md.satisfied_requirements().contains("IR-ext"));
    assert!(etl.op_by_name("LOADER_quantity").is_some());
    assert!(md.is_sound());
    etl.validate().expect("unified flow stays valid");
}

#[test]
fn external_design_executes_alongside_native_ones() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(figure4_requirement()).expect("IR1");
    let md = quarry_formats::xmd::parse(EXTERNAL_XMD).expect("valid");
    let etl = quarry_formats::xlm::parse(EXTERNAL_XLM).expect("valid");
    quarry.add_partial_design("IR-ext", md, etl).expect("integrates");

    let (engine, report) = quarry.run_etl(quarry_engine::tpch::generate(0.002, 42)).expect("runs");
    assert!(report.rows_loaded("fact_table_quantity") > 0, "external fact loads");
    assert!(report.rows_loaded("fact_table_revenue") > 0, "native fact still loads");
    let q = engine.catalog.get("fact_table_quantity").expect("loaded");
    assert_eq!(q.schema.names().collect::<Vec<_>>(), ["l_partkey", "quantity"]);
}

#[test]
fn unsound_external_designs_are_rejected() {
    let mut quarry = Quarry::tpch();
    // A fact referencing a dimension that does not exist.
    let bad_md = quarry_formats::xmd::parse(
        &EXTERNAL_XMD.replace("<dimension>Part</dimension>", "<dimension>Ghost</dimension>"),
    )
    .expect("parses");
    let etl = quarry_formats::xlm::parse(EXTERNAL_XLM).expect("valid");
    assert!(matches!(quarry.add_partial_design("IR-bad", bad_md, etl.clone()), Err(QuarryError::Integrate(_))));
    // A cyclic flow.
    let md = quarry_formats::xmd::parse(EXTERNAL_XMD).expect("valid");
    let mut cyclic = etl;
    let b = cyclic.id_by_name("AGG_qty").expect("present");
    let l = cyclic.id_by_name("LOADER_quantity").expect("present");
    cyclic.connect(l, b).expect("edge accepted structurally; the cycle surfaces at validation");
    assert!(matches!(quarry.add_partial_design("IR-cyc", md, cyclic), Err(QuarryError::Integrate(_))));
    assert!(quarry.requirement_ids().is_empty(), "failed imports leave no trace");
}

#[test]
fn external_designs_participate_in_removal() {
    let mut quarry = Quarry::tpch();
    quarry.add_requirement(figure4_requirement()).expect("IR1");
    let md = quarry_formats::xmd::parse(EXTERNAL_XMD).expect("valid");
    let etl = quarry_formats::xlm::parse(EXTERNAL_XLM).expect("valid");
    quarry.add_partial_design("IR-ext", md, etl).expect("integrates");
    quarry.remove_requirement("IR-ext").expect("removable like any requirement");
    let (md, etl) = quarry.unified();
    assert!(!md.satisfied_requirements().contains("IR-ext"));
    assert!(etl.op_by_name("LOADER_quantity").is_none());
    assert!(md.fact("fact_table_revenue").is_some(), "native design untouched");
}
