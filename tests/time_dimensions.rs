//! End-to-end test of the derived time dimensions (extension feature,
//! DESIGN.md §5): a Date-typed requirement property becomes a Day→Month→Year
//! dimension computed by derivation operations, loaded once, and referenced
//! by integer yyyymmdd date keys from the fact.

use quarry::{Quarry, QuarryConfig};
use quarry_engine::Value;
use quarry_formats::{MeasureSpec, Requirement};
use quarry_interpreter::InterpreterOptions;

fn time_quarry() -> Quarry {
    let domain = quarry_ontology::tpch::domain();
    let mut config = QuarryConfig::tpch(0.01);
    config.interpreter = InterpreterOptions { time_dimensions: true };
    Quarry::with_config(domain.ontology, domain.sources, config)
}

fn revenue_by_date() -> Requirement {
    let mut r = Requirement::new("IR1");
    r.measures.push(MeasureSpec {
        id: "revenue".into(),
        function: "Lineitem_l_extendedpriceATRIBUT * (1 - Lineitem_l_discountATRIBUT)".into(),
    });
    r.dimensions.push("Part_p_nameATRIBUT".into());
    r.dimensions.push("Orders_o_orderdateATRIBUT".into());
    r
}

#[test]
fn time_dimension_loads_and_keys_match() {
    let mut quarry = time_quarry();
    quarry.add_requirement(revenue_by_date()).expect("integrates");
    let (engine, report) = quarry.run_etl(quarry_engine::tpch::generate(0.002, 42)).expect("runs");

    let time = engine.catalog.get("dim_time_o_orderdate").expect("time dimension loaded");
    assert!(report.rows_loaded("dim_time_o_orderdate") > 0);
    // Day keys are integer yyyymmdd and consistent with the date column.
    let key_col = time.col("Time_o_orderdateID");
    let date_col = time.col("o_orderdate");
    for row in time.iter_rows() {
        let Value::Int(key) = row[key_col] else { panic!("integer date key") };
        let (y, m, d) = row[date_col].date_parts().expect("date attribute");
        assert_eq!(key, y as i64 * 10000 + m as i64 * 100 + d as i64);
        let Value::Int(month_key) = row[time.col("month_key")] else { panic!() };
        assert_eq!(month_key, y as i64 * 100 + m as i64);
        let Value::Int(year) = row[time.col("year")] else { panic!() };
        assert_eq!(year, y as i64);
    }
    // Dates are unique (the dimension is distinct by construction).
    let mut keys: Vec<i64> = time
        .column_values("Time_o_orderdateID")
        .into_iter()
        .map(|v| match v {
            Value::Int(k) => k,
            other => panic!("{other}"),
        })
        .collect();
    let n = keys.len();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), n, "day members unique");

    // Every fact FK resolves to a day member.
    let fact = engine.catalog.get("fact_table_revenue").expect("fact loaded");
    let fk = fact.col("Time_o_orderdate_Time_o_orderdateID");
    let members: std::collections::HashSet<i64> = keys.into_iter().collect();
    for row in fact.iter_rows() {
        let Value::Int(k) = row[fk] else { panic!() };
        assert!(members.contains(&k), "fact date key {k} exists in the dimension");
    }
}

#[test]
fn time_dimension_appears_in_ddl_with_hierarchy_columns() {
    let mut quarry = time_quarry();
    quarry.add_requirement(revenue_by_date()).expect("integrates");
    let artifacts = quarry.deploy("postgres-pdi").expect("deploys");
    let sql = artifacts.file("schema.sql").expect("present");
    assert!(sql.contains("CREATE TABLE dim_time_o_orderdate"), "{sql}");
    assert!(sql.contains("Time_o_orderdateID BIGINT"), "{sql}");
    assert!(sql.contains("month_key BIGINT"), "{sql}");
    assert!(sql.contains("year BIGINT"), "{sql}");
    assert!(sql.contains("Time_o_orderdate_Time_o_orderdateID BIGINT NOT NULL"), "{sql}");
}

#[test]
fn temporal_dimension_constrains_stock_measures() {
    // A stock measure summed along the derived (temporal) time dimension is
    // flagged by MD validation — the summarizability rule of ref [9].
    let mut quarry = time_quarry();
    quarry.add_requirement(revenue_by_date()).expect("integrates");
    let mut md = quarry.unified().0.clone();
    let fact = &mut md.facts[0];
    fact.measures[0].additivity = quarry_md::Additivity::Stock;
    fact.measures[0].default_agg = quarry_md::AggFn::Sum;
    let violations = md.validate();
    assert!(
        violations.iter().any(|v| v.kind == quarry_md::ViolationKind::NonSummarizableAggregation),
        "{violations:?}"
    );
}

#[test]
fn two_requirements_share_one_time_dimension() {
    let mut quarry = time_quarry();
    quarry.add_requirement(revenue_by_date()).expect("IR1");
    let mut second = Requirement::new("IR2");
    second.measures.push(MeasureSpec { id: "qty".into(), function: "Lineitem_l_quantityATRIBUT".into() });
    second.dimensions.push("Supplier_s_nameATRIBUT".into());
    second.dimensions.push("Orders_o_orderdateATRIBUT".into());
    let update = quarry.add_requirement(second).expect("IR2");
    let report = update.md_report.expect("ran");
    assert!(
        report.matches.iter().any(|m| matches!(
            m,
            quarry_integrator::md::MdMatch::Dimension { unified, .. } if unified == "Time_o_orderdate"
        )),
        "the time dimension conforms across requirements: {:?}",
        report.matches
    );
    // One loader for the shared time dimension.
    let (_, etl) = quarry.unified();
    let loaders = etl
        .ops()
        .filter(|o| matches!(&o.kind, quarry_etl::OpKind::Loader { table, .. } if table == "dim_time_o_orderdate"))
        .count();
    assert_eq!(loaders, 1);
}
