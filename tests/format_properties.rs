//! Property tests over the Communication & Metadata layer: arbitrary
//! generated MD schemata, flows and requirements survive their format
//! round-trips, and the repository's XML↔JSON↔XML conversion is lossless on
//! every document the system produces.

use proptest::prelude::*;
use quarry_etl::{parse_expr, AggSpec, ColType, Column, Flow, OpKind, Schema};
use quarry_formats::{xlm, xmd, Aggregation, MeasureSpec, Requirement, Slicer};
use quarry_md::{Additivity, AggFn, Attribute, DimLink, Dimension, Fact, Level, MdDataType, MdSchema, Measure};
use quarry_repository::convert;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

fn md_type() -> impl Strategy<Value = MdDataType> {
    prop_oneof![
        Just(MdDataType::Integer),
        Just(MdDataType::Decimal),
        Just(MdDataType::Text),
        Just(MdDataType::Date),
        Just(MdDataType::Boolean),
    ]
}

fn agg_fn() -> impl Strategy<Value = AggFn> {
    prop_oneof![Just(AggFn::Sum), Just(AggFn::Avg), Just(AggFn::Min), Just(AggFn::Max), Just(AggFn::Count)]
}

fn additivity() -> impl Strategy<Value = Additivity> {
    prop_oneof![Just(Additivity::Flow), Just(Additivity::Stock), Just(Additivity::ValuePerUnit)]
}

prop_compose! {
    fn arb_level()(name in ident(), key in ident(), key_type in md_type(),
                   attrs in prop::collection::vec((ident(), md_type()), 0..3)) -> Level {
        let mut level = Level::new(format!("L{name}"), key, key_type);
        for (aname, aty) in attrs {
            if level.attribute(&aname).is_none() {
                level.attributes.push(Attribute::new(aname, aty));
            }
        }
        level
    }
}

prop_compose! {
    fn arb_dimension()(name in ident(), atomic in arb_level(),
                       uppers in prop::collection::vec(arb_level(), 0..3),
                       temporal in any::<bool>()) -> Dimension {
        let mut dim = Dimension::new(format!("D{name}"), atomic);
        let mut prev = dim.atomic.clone();
        for (i, mut up) in uppers.into_iter().enumerate() {
            up.name = format!("{}_{i}", up.name); // keep level names unique
            let up_name = up.name.clone();
            dim.add_level_above(&prev, up);
            prev = up_name;
        }
        dim.temporal = temporal;
        dim
    }
}

prop_compose! {
    fn arb_schema()(dims in prop::collection::vec(arb_dimension(), 1..4),
                    measures in prop::collection::vec((ident(), agg_fn(), additivity()), 1..4),
                    fact_name in ident()) -> MdSchema {
        let mut schema = MdSchema::new("prop");
        for (i, mut d) in dims.into_iter().enumerate() {
            d.name = format!("{}_{i}", d.name); // unique dimension names
            schema.dimensions.push(d);
        }
        let mut fact = Fact::new(format!("fact_{fact_name}"));
        for (i, (mname, agg, add)) in measures.into_iter().enumerate() {
            let mut m = Measure::new(format!("{mname}_{i}"), format!("expr_{i} * 2"));
            m.default_agg = agg;
            m.additivity = add;
            fact.measures.push(m);
        }
        for d in &schema.dimensions {
            fact.dimensions.push(DimLink::new(d.name.clone(), d.atomic.clone()));
        }
        fact.satisfies.insert("IRp".into());
        schema.facts.push(fact);
        schema
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xmd_roundtrip_on_arbitrary_schemas(schema in arb_schema()) {
        let doc = xmd::to_string(&schema);
        let parsed = xmd::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        prop_assert_eq!(parsed, schema);
    }

    #[test]
    fn xml_json_xml_is_identity_on_xmd(schema in arb_schema()) {
        let doc = xmd::to_string(&schema);
        let xml = quarry_xml::parse(&doc).expect("self-produced");
        let json = convert::xml_to_json(&xml);
        // Through JSON *text* too (the repository stores strings).
        let json_text = json.to_pretty_string();
        let reparsed = quarry_repository::Json::parse(&json_text).expect("self-produced JSON");
        let back = convert::json_to_xml(&reparsed).expect("canonical encoding");
        prop_assert_eq!(back, xml);
    }

    #[test]
    fn xrq_roundtrip_on_arbitrary_requirements(
        id in "[A-Z]{2}[0-9]{1,3}",
        dims in prop::collection::vec("[A-Za-z_]{1,12}", 0..4),
        measures in prop::collection::vec(("[a-z]{1,8}", "[a-z_*() +0-9]{1,20}"), 0..3),
        slicer_value in "[A-Za-z0-9 '<>&]{0,12}",
    ) {
        let mut req = Requirement::new(id);
        for (i, d) in dims.into_iter().enumerate() {
            req.dimensions.push(format!("{d}_{i}"));
        }
        for (i, (m, f)) in measures.into_iter().enumerate() {
            let m = format!("{m}_{i}");
            req.measures.push(MeasureSpec { id: m.clone(), function: f.trim().to_string() });
            if let Some(dim) = req.dimensions.first() {
                req.aggregations.push(Aggregation { order: 1, dimension: dim.clone(), measure: m, function: "SUM".into() });
            }
        }
        let trimmed = slicer_value.trim().to_string();
        if !trimmed.is_empty() {
            req.slicers.push(Slicer { concept: "C_x".into(), operator: "<=".into(), value: trimmed });
        }
        // Empty functions serialize as empty <function/> and parse back as
        // the measure id; skip that degenerate corner.
        prop_assume!(req.measures.iter().all(|m| !m.function.is_empty()));
        let doc = req.to_string_pretty();
        let parsed = Requirement::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        prop_assert_eq!(parsed, req);
    }
}

/// xLM round-trips on structurally diverse generated flows.
#[test]
fn xlm_roundtrip_on_generated_flows() {
    // Deterministic structural sweep (proptest generation of *valid* flows
    // is done in tests/rule_equivalence.rs; here we sweep shapes).
    for joins in 0..3usize {
        for with_union in [false, true] {
            let mut f = Flow::new(format!("gen_{joins}_{with_union}"));
            let schema = Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Decimal)]);
            let mut current =
                f.add_op("DS0", OpKind::Datastore { datastore: "t0".into(), schema: schema.clone() }).expect("fresh");
            for j in 0..joins {
                let right_schema = Schema::new(vec![
                    Column::new(format!("k{j}"), ColType::Integer),
                    Column::new(format!("w{j}"), ColType::Text),
                ]);
                let right = f
                    .add_op(
                        format!("DS{}", j + 1),
                        OpKind::Datastore { datastore: format!("t{}", j + 1), schema: right_schema },
                    )
                    .expect("fresh");
                let join = f
                    .add_op(
                        format!("J{j}"),
                        OpKind::Join {
                            kind: quarry_etl::JoinKind::Left,
                            left_on: vec!["k".into()],
                            right_on: vec![format!("k{j}")],
                        },
                    )
                    .expect("fresh");
                f.connect(current, join).expect("connects");
                f.connect(right, join).expect("connects");
                current = join;
            }
            if with_union {
                let p1 = f
                    .append(current, "P1", OpKind::Projection { columns: vec!["k".into(), "v".into()] })
                    .expect("fresh");
                let p2 = f
                    .append(current, "P2", OpKind::Projection { columns: vec!["k".into(), "v".into()] })
                    .expect("fresh");
                let u = f.add_op("U", OpKind::Union).expect("fresh");
                f.connect(p1, u).expect("connects");
                f.connect(p2, u).expect("connects");
                current = u;
            }
            let agg = f
                .append(
                    current,
                    "AGG",
                    OpKind::Aggregation {
                        group_by: vec!["k".into()],
                        aggregates: vec![AggSpec::new("AVERAGE", parse_expr("v").expect("valid"), "avg_v")],
                    },
                )
                .expect("fresh");
            f.append(agg, "L", OpKind::Loader { table: "out".into(), key: vec!["k".into()] }).expect("fresh");
            f.stamp_requirement("IRg");

            f.validate().expect("generated flows are valid");
            let doc = xlm::to_string(&f);
            let parsed = xlm::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
            assert_eq!(parsed.op_count(), f.op_count());
            assert_eq!(parsed.edge_count(), f.edge_count());
            for op in f.ops() {
                assert_eq!(parsed.op_by_name(&op.name).expect("op survives").kind, op.kind);
            }
            parsed.validate().expect("parsed flow validates");
        }
    }
}
