//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the `quarry-bench` harness
//! uses (`harness = false` benches driving `Criterion` directly): benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation, and a plain-text summary. Measurement is
//! deliberately simple — a warm-up pass, then `sample_size` timed samples —
//! because these benches are read by humans comparing orders of magnitude,
//! not by a statistics pipeline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; informational only here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Optional throughput annotation for a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on values produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let rate = throughput
        .map(|t| {
            let per_sec = match t {
                Throughput::Bytes(n) => format!("{:.1} MiB/s", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)),
                Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / mean.as_secs_f64()),
            };
            format!("  thrpt: {per_sec}")
        })
        .unwrap_or_default();
    println!("{name:<48} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, f);
        self.criterion.ran += 1;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self.criterion.ran += 1;
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), sample_size };
    f(&mut bencher);
    report(name, &bencher.samples, throughput);
}

/// True when the process was invoked with criterion's `--test` flag
/// (`cargo bench -- --test`): run everything once to prove it works, skip
/// the measurement-quality loops. Benches use this to gate their printed
/// comparison series.
pub fn is_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, test_mode: false, ran: 0 }
    }
}

impl Criterion {
    /// Honors criterion's `--test` flag (one sample per benchmark — the CI
    /// smoke mode that checks benches still compile and run); every other
    /// argument is ignored (`--bench` etc. are filtered by the harness
    /// anyway).
    pub fn configure_from_args(mut self) -> Self {
        if is_test_mode() {
            self.test_mode = true;
        }
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.test_mode { 1 } else { self.default_sample_size };
        let test_mode = self.test_mode;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size, throughput: None, test_mode }
    }

    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.test_mode { 1 } else { self.default_sample_size };
        run_one(&name.to_string(), sample_size, None, f);
        self.ran += 1;
        self
    }

    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) completed", self.ran);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &7, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
        c.final_summary();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
