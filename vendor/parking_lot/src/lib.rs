//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind `parking_lot`'s poison-free API (`read()` /
//! `write()` / `lock()` return guards directly). A poisoned lock — a thread
//! panicked while holding it — propagates the panic to the next acquirer,
//! which matches how the repository uses these locks (a poisoned metadata
//! store is unrecoverable anyway).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s guard-returning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("RwLock poisoned by a panicking writer")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("RwLock poisoned by a panicking writer")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Mutex with `parking_lot`'s guard-returning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("Mutex poisoned by a panicking holder")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), [1, 2]);
    }
}
