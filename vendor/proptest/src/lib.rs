//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate vendors the
//! slice of the proptest API the repository's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_recursive` /
//! `boxed`, regex-literal string strategies (character-class × repetition
//! subset), integer-range and tuple strategies, `Just`, `any::<T>()`,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::Index`, and
//! the `proptest!` / `prop_compose!` / `prop_oneof!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` representation (via the assertion message); minimization is the
//!   developer's job.
//! - **Deterministic seeding.** Each `proptest!` test derives its RNG seed
//!   from the test's name, so runs are reproducible without a regression
//!   file; `*.proptest-regressions` files are ignored.
//! - Generation is depth-bounded rather than size-bounded: `prop_recursive`
//!   interprets its first parameter as the maximum recursion depth and
//!   ignores the size hints.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 RNG used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a stable hash of `label` (typically the test name), so a
    /// given test re-runs the identical case sequence on every execution.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------------

/// A generator of values of one type. The single required method produces a
/// value; combinators mirror proptest's names.
pub trait Strategy: 'static {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter { inner: self, reason: reason.into(), f }
    }

    /// Depth-bounded recursive strategy: `self` generates leaves and `branch`
    /// lifts a strategy for depth-`d` values into one for depth-`d+1` values.
    /// `_desired_size` / `_expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive { leaf: self.boxed(), branch: Rc::new(move |inner| branch(inner).boxed()), depth }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_gen(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_gen(rng)
    }
}

// ---------------------------------------------------------------------------
// Combinator types
// ---------------------------------------------------------------------------

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive candidates", self.reason);
    }
}

pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        // Bias toward shallow trees the way proptest's size budget does:
        // depth d with probability ~2^-d, capped at self.depth.
        let mut depth = 0;
        while depth < self.depth && rng.next_u64().is_multiple_of(2) {
            depth += 1;
        }
        let mut strat = self.leaf.clone();
        for _ in 0..depth {
            strat = (self.branch)(strat);
        }
        strat.gen_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].gen_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: integer ranges, bool, tuples, regex-literal strings
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn gen_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String-literal strategies: a subset of regex syntax — a sequence of
/// character classes, each optionally followed by `{n}` or `{m,n}`. This is
/// exactly the shape every pattern in the repository's tests uses.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char>;
        if chars[i] == '[' {
            let close = find_class_end(&chars, i);
            alphabet = expand_class(&chars[i + 1..close]);
            i = close + 1;
        } else {
            // Bare literal character.
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            alphabet = vec![c];
            i += 1;
        }
        assert!(!alphabet.is_empty(), "empty character class in `{pattern}`");
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated {} in pattern") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (m.parse().expect("bad repeat"), n.parse().expect("bad repeat")),
                None => {
                    let n: usize = body.parse().expect("bad repeat");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let len = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
        for _ in 0..len {
            out.push(alphabet[rng.below(alphabet.len())]);
        }
    }
    out
}

fn find_class_end(chars: &[char], open: usize) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            ']' => return j,
            _ => j += 1,
        }
    }
    panic!("unterminated character class");
}

fn expand_class(body: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = if body[i] == '\\' {
            i += 1;
            body[i]
        } else {
            body[i]
        };
        // `a-z` range, unless `-` is the final character (then literal).
        if i + 2 < body.len() && body[i + 1] == '-' {
            let hi = body[i + 2];
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    out.push(ch);
                }
            }
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized + 'static {
    fn gen_any(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn gen_any(rng: &mut TestRng) -> bool {
        rng.next_u64().is_multiple_of(2)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn gen_any(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::gen_any(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// prop:: modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Accepted sizes for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        /// Exclusive upper bound.
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `None` one time in four, matching proptest's default weighting.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.gen_value(rng))
            }
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn gen_any(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Mirror of proptest's `prop::` hierarchy for `prop::collection::vec` etc.
pub mod prop {
    pub use super::{collection, option, sample};
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Result of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count as run.
    Reject,
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

thread_local! {
    static CURRENT_CASE: Cell<u64> = const { Cell::new(0) };
}

/// Internal: records the case number so assertion failures can report it.
pub fn set_current_case(n: u64) {
    CURRENT_CASE.with(|c| c.set(n));
}

pub fn current_case() -> u64 {
    CURRENT_CASE.with(|c| c.get())
}

/// Internal: formats the panic prefix for a failing case.
pub fn failure_prefix() -> String {
    format!("[proptest stub, case #{}] ", current_case())
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The test-definition macro. Each `fn` becomes a `#[test]` that runs
/// `config.cases` generated cases with a name-seeded deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(20).saturating_add(1000),
                        "too many rejected cases (prop_assume! filters out nearly everything)"
                    );
                    $crate::set_current_case(attempts as u64);
                    $(let $pat = $crate::Strategy::gen_value(&($strategy), &mut rng);)+
                    // The closure keeps `?` and early `return` inside $body
                    // scoped to this one test case.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                    }
                }
            }
        )*
    };
}

/// Builds a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)($($pat:pat in $strategy:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])* $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strategy,)+), move |($($pat,)+)| $body)
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "{}prop_assert failed: {}", $crate::failure_prefix(), stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, "{}{}", $crate::failure_prefix(), format!($($fmt)*));
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        assert_eq!(l, r, "{}prop_assert_eq failed", $crate::failure_prefix());
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        assert_eq!(l, r, "{}{}", $crate::failure_prefix(), format!($($fmt)*));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        assert_ne!(l, r, "{}prop_assert_ne failed", $crate::failure_prefix());
    }};
}

/// Vetoes the current case; it is regenerated and does not count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.len()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn class_with_trailing_dash_and_escapes() {
        let mut rng = TestRng::deterministic("dash");
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[A-Za-z0-9_.-]{1,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'), "{s}");
        }
        let quoted = Strategy::gen_value(&"[a\"b]{4}", &mut rng);
        assert!(quoted.chars().all(|c| "a\"b".contains(c)));
    }

    #[test]
    fn printable_ascii_range_class() {
        let mut rng = TestRng::deterministic("ascii");
        for _ in 0..100 {
            let s = Strategy::gen_value(&"[ -~]{0,64}", &mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_tuples_and_collections() {
        let mut rng = TestRng::deterministic("mix");
        let strat = (0usize..4, -10i64..10, any::<bool>());
        for _ in 0..100 {
            let (a, b, _c) = strat.gen_value(&mut rng);
            assert!(a < 4 && (-10..10).contains(&b));
        }
        let v = prop::collection::vec(0usize..5, 3..8).gen_value(&mut rng);
        assert!((3..8).contains(&v.len()));
        let idx = any::<prop::sample::Index>().gen_value(&mut rng);
        assert!(idx.index(7) < 7);
    }

    #[test]
    fn oneof_map_filter_recursive() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = prop_oneof![(0i64..50).prop_map(Tree::Leaf), Just(Tree::Leaf(99))]
            .prop_filter("non-negative", |t| matches!(t, Tree::Leaf(v) if *v >= 0))
            .prop_recursive(3, 16, 4, |inner| prop::collection::vec(inner, 1..4).prop_map(Tree::Node));
        let mut rng = TestRng::deterministic("tree");
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.gen_value(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion must sometimes branch");
        assert!(max_depth <= 3, "depth bound respected");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(x in 0usize..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x, x);
            }
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0i64..10, b in 0i64..10) -> (i64, i64) {
            (a.min(b), a.max(b))
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_apply_their_body(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }
    }
}
