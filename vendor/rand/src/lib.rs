//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no access to crates.io, so the
//! workspace vendors the *subset* of the `rand 0.8` API it actually uses: a
//! seedable deterministic generator (`rngs::StdRng`) and the `Rng` methods
//! `gen_range` / `gen_bool`. The generator is a SplitMix64 — statistically
//! fine for synthetic-data generation, deterministic for a given seed, and
//! dependency-free. It does **not** promise the same value stream as the real
//! `rand` crate; everything downstream treats generated data as
//! seed-deterministic, not stream-compatible.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (the vendored `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=7usize);
            assert!((1..=7).contains(&w));
        }
    }

    #[test]
    fn all_inclusive_values_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..=4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
