//! Quarry over a custom domain (the paper's demo uses "different examples of
//! synthetic and real-world domains"): a small clinic domain built from
//! scratch — ontology, source mappings, and data — with no TPC-H anywhere.
//!
//! Run with: `cargo run --example custom_domain`

use quarry::{Quarry, QuarryConfig};
use quarry_engine::{Catalog, Relation, Value};
use quarry_etl::{ColType, Column, Schema};
use quarry_interpreter::InterpreterOptions;
use quarry_ontology::mappings::{DatastoreMapping, JoinMapping, SourceRegistry};
use quarry_ontology::{DataType, Ontology};

/// Clinic ontology: Visit → Patient → City, Visit → Physician.
fn clinic_ontology() -> (Ontology, SourceRegistry) {
    let mut o = Ontology::new();
    let city = o.add_concept("City").expect("fresh");
    o.add_identifier(city, "city_id", DataType::Integer).expect("fresh");
    o.add_property(city, "city_name", DataType::String).expect("fresh");
    let patient = o.add_concept("Patient").expect("fresh");
    o.add_identifier(patient, "patient_id", DataType::Integer).expect("fresh");
    o.add_property(patient, "patient_name", DataType::String).expect("fresh");
    o.add_property(patient, "birth_year", DataType::Integer).expect("fresh");
    let physician = o.add_concept("Physician").expect("fresh");
    o.add_identifier(physician, "physician_id", DataType::Integer).expect("fresh");
    o.add_property(physician, "specialty", DataType::String).expect("fresh");
    let visit = o.add_concept("Visit").expect("fresh");
    o.add_identifier(visit, "visit_id", DataType::Integer).expect("fresh");
    o.add_property(visit, "cost", DataType::Decimal).expect("fresh");
    o.add_property(visit, "duration_min", DataType::Integer).expect("fresh");
    o.add_property(visit, "visit_date", DataType::Date).expect("fresh");
    o.add_concept_alias(visit, "consultation");
    o.add_concept_alias(physician, "doctor");

    let v_patient = o.add_many_to_one("visit_of_patient", visit, patient);
    let v_physician = o.add_many_to_one("visit_of_physician", visit, physician);
    let p_city = o.add_many_to_one("patient_in_city", patient, city);

    let mut sources = SourceRegistry::new();
    for (cid, table, key) in [
        (city, "city", "city_id"),
        (patient, "patient", "patient_id"),
        (physician, "physician", "physician_id"),
        (visit, "visit", "visit_id"),
    ] {
        let columns = o.all_properties(cid).into_iter().map(|p| (p, o.property_def(p).name.clone())).collect();
        sources
            .map_concept(DatastoreMapping {
                concept: cid,
                datastore: table.into(),
                columns,
                key_columns: vec![key.into()],
            })
            .expect("fresh");
    }
    for (aid, from, to) in [
        (v_patient, "patient_id", "patient_id"),
        (v_physician, "physician_id", "physician_id"),
        (p_city, "city_id", "city_id"),
    ] {
        sources
            .map_association(JoinMapping {
                association: aid,
                from_columns: vec![from.into()],
                to_columns: vec![to.into()],
            })
            .expect("fresh");
    }
    (o, sources)
}

/// Hand-built clinic data.
fn clinic_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.put(
        "city",
        Relation::with_rows(
            Schema::new(vec![Column::new("city_id", ColType::Integer), Column::new("city_name", ColType::Text)]),
            vec![
                vec![Value::Int(1), Value::Str("Barcelona".into())],
                vec![Value::Int(2), Value::Str("Brussels".into())],
            ],
        ),
    );
    c.put(
        "patient",
        Relation::with_rows(
            Schema::new(vec![
                Column::new("patient_id", ColType::Integer),
                Column::new("patient_name", ColType::Text),
                Column::new("birth_year", ColType::Integer),
                Column::new("city_id", ColType::Integer),
            ]),
            vec![
                vec![Value::Int(1), Value::Str("Anna".into()), Value::Int(1980), Value::Int(1)],
                vec![Value::Int(2), Value::Str("Bo".into()), Value::Int(1992), Value::Int(2)],
                vec![Value::Int(3), Value::Str("Carla".into()), Value::Int(1975), Value::Int(1)],
            ],
        ),
    );
    c.put(
        "physician",
        Relation::with_rows(
            Schema::new(vec![Column::new("physician_id", ColType::Integer), Column::new("specialty", ColType::Text)]),
            vec![
                vec![Value::Int(10), Value::Str("cardiology".into())],
                vec![Value::Int(11), Value::Str("dermatology".into())],
            ],
        ),
    );
    let visit_schema = Schema::new(vec![
        Column::new("visit_id", ColType::Integer),
        Column::new("cost", ColType::Decimal),
        Column::new("duration_min", ColType::Integer),
        Column::new("visit_date", ColType::Date),
        Column::new("patient_id", ColType::Integer),
        Column::new("physician_id", ColType::Integer),
    ]);
    let visits = vec![
        (1, 120.0, 30, (2024, 1, 10), 1, 10),
        (2, 80.0, 20, (2024, 1, 10), 2, 11),
        (3, 200.0, 45, (2024, 2, 2), 1, 10),
        (4, 60.0, 15, (2024, 2, 5), 3, 11),
        (5, 150.0, 40, (2024, 2, 5), 3, 10),
    ];
    c.put(
        "visit",
        Relation::with_rows(
            visit_schema,
            visits
                .into_iter()
                .map(|(id, cost, dur, (y, m, d), pat, phy)| {
                    vec![
                        Value::Int(id),
                        Value::Float(cost),
                        Value::Int(dur),
                        Value::date(y, m, d),
                        Value::Int(pat),
                        Value::Int(phy),
                    ]
                })
                .collect(),
        ),
    );
    c
}

fn main() {
    let (ontology, sources) = clinic_ontology();
    let config = QuarryConfig { interpreter: InterpreterOptions { time_dimensions: true }, ..QuarryConfig::default() };
    let mut quarry = Quarry::with_config(ontology, sources, config);

    // The Elicitor understands the new domain immediately.
    let visit = quarry.ontology().concept_by_name("Visit").expect("declared above");
    println!("suggested dimensions for focus `Visit`:");
    for s in quarry.elicitor().suggest_dimensions(visit) {
        println!("  {:<10} via {}", s.name, s.via.join(" → "));
    }

    // A requirement assembled from the clinic vocabulary (note the alias
    // `doctor` for Physician).
    let mut session = quarry.session("IR1");
    session.describe("Total cost of consultations per city and specialty, by visit date");
    session.add_measure("total_cost", "Visit.cost").expect("resolves");
    session.add_dimension("City.city_name").expect("resolves");
    session.add_dimension("Physician.specialty").expect("resolves");
    session.add_dimension("Visit.visit_date").expect("resolves");
    let requirement = session.build().expect("complete");
    quarry.add_requirement(requirement).expect("clinic requirement integrates");

    let (md, etl) = quarry.unified();
    println!(
        "\nunified design: {} fact(s), {} dimension(s), {} ETL ops",
        md.facts.len(),
        md.dimensions.len(),
        etl.op_count()
    );
    for d in &md.dimensions {
        println!(
            "  dimension {:<20} levels: {}",
            d.name,
            d.levels.iter().map(|l| l.name.as_str()).collect::<Vec<_>>().join(" → ")
        );
    }

    // Execute over the hand-built data.
    let (engine, report) = quarry.run_etl(clinic_catalog()).expect("runs");
    println!("\nloaded:");
    for (table, rows) in &report.loaded {
        println!("  {table}: {rows} rows");
    }
    let fact = engine.catalog.get("fact_table_total_cost").expect("fact loaded");
    println!("\nfact_table_total_cost:");
    print!("{fact}");

    // The derived time dimension captured the visit dates.
    let time = engine.catalog.get("dim_time_visit_date").expect("time dimension loaded");
    println!("\ndim_time_visit_date has {} distinct days", time.len());
}
