//! Assisted data exploration with the Requirements Elicitor (demo
//! scenario 1: "DW design" — business users pose information requirements
//! in domain vocabulary, without knowing the underlying sources).
//!
//! Run with: `cargo run --example elicitor_session`

use quarry::Quarry;

fn main() {
    let quarry = Quarry::tpch();
    let elicitor = quarry.elicitor();

    // Which concepts make good analysis foci at all?
    println!("suggested analysis foci:");
    for f in elicitor.suggest_foci().iter().take(4) {
        println!("  {:<10} score {:.1}", f.name, f.score);
    }

    // The user picks Lineitem; Quarry proposes perspectives (paper §2.1:
    // suggests e.g. Supplier, Nation, Part).
    let lineitem = quarry.ontology().concept_by_name("Lineitem").expect("TPC-H has Lineitem");
    let perspective = elicitor.explore(lineitem);
    println!("\nmeasure candidates on Lineitem:");
    for m in &perspective.measures {
        println!("  {}", m.reference);
    }
    println!("\ndimension candidates (top 6):");
    for d in perspective.dimensions.iter().take(6) {
        println!("  {:<10} via {}", d.name, d.via.join(" → "));
    }

    // The user assembles a requirement from business vocabulary — note the
    // aliases ("product" for Part) resolved through the ontology.
    let mut session = quarry.session("IR1");
    session.describe("Average revenue per product and vendor, Spanish suppliers only");
    session.add_dimension("Part.p_name").expect("resolves");
    session.add_dimension("Supplier.s_name").expect("resolves");
    session
        .add_measure("revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)")
        .expect("expression references resolve");
    session.add_slicer("Nation.n_name", "=", "Spain").expect("resolves");
    session.aggregate("revenue", "Part.p_name", "AVERAGE").expect("valid aggregation");
    session.aggregate("revenue", "Supplier.s_name", "AVERAGE").expect("valid aggregation");
    let requirement = session.build().expect("requirement is complete");

    println!("\nassembled xRQ:\n{}", requirement.to_string_pretty());

    // Vocabulary mistakes are caught with helpful errors.
    let mut bad = quarry.session("IR2");
    match bad.add_dimension("Part") {
        Err(e) => println!("as expected, `Part` alone is rejected: {e}"),
        Ok(_) => unreachable!("a bare concept is not a dimension property"),
    }
    match bad.add_measure("m", "Lineitem.l_extendedprice + Ghost.column") {
        Err(e) => println!("as expected, unknown references are rejected: {e}"),
        Ok(_) => unreachable!("ghost references must fail"),
    }
}
