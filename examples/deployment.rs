//! Design deployment (demo scenario 3).
//!
//! Builds the paper's Figure 3 configuration — a revenue fact and a
//! netprofit fact over conformed Partsupp and Orders dimensions — and
//! generates the executables for the chosen platform: PostgreSQL DDL for the
//! MD schema and a Pentaho PDI transformation for the ETL process. Then the
//! same logical design is executed on the embedded engine.
//!
//! Run with: `cargo run --example deployment`

use quarry::Quarry;
use quarry_formats::{MeasureSpec, Requirement};

fn main() {
    let mut quarry = Quarry::tpch();

    // IR1: revenue at the Lineitem grain, analyzed per partsupp and order.
    let mut revenue = Requirement::new("IR1");
    revenue.measures.push(MeasureSpec {
        id: "revenue".into(),
        function: "Lineitem_l_extendedpriceATRIBUT * (1 - Lineitem_l_discountATRIBUT)".into(),
    });
    revenue.dimensions.push("Partsupp_ps_availqtyATRIBUT".into());
    revenue.dimensions.push("Orders_o_orderdateATRIBUT".into());

    // IR2: net profit over the same analytical contexts.
    let mut netprofit = Requirement::new("IR2");
    netprofit.measures.push(MeasureSpec {
        id: "netprofit".into(),
        function: "Orders_o_totalpriceATRIBUT - Partsupp_ps_supplycostATRIBUT".into(),
    });
    netprofit.dimensions.push("Partsupp_ps_availqtyATRIBUT".into());
    netprofit.dimensions.push("Orders_o_orderdateATRIBUT".into());

    quarry.add_requirement(revenue).expect("IR1 integrates");
    let update = quarry.add_requirement(netprofit).expect("IR2 integrates");
    println!(
        "IR2 integration reused {} operations, added {}",
        update.etl_report.as_ref().map_or(0, |r| r.reused_ops),
        update.etl_report.as_ref().map_or(0, |r| r.added_ops)
    );

    // Generate the platform executables.
    let artifacts = quarry.deploy("postgres-pdi").expect("design is sound");
    println!("\n================= schema.sql =================");
    println!("{}", artifacts.file("schema.sql").expect("generated"));
    println!("================= unified.ktr (excerpt) =================");
    for line in artifacts.file("unified.ktr").expect("generated").lines().take(30) {
        println!("{line}");
    }

    // Run the same logical flow natively.
    let (engine, report) = quarry.run_etl(quarry_engine::tpch::generate(0.01, 42)).expect("flow executes");
    println!("\nnative run: {:?} total", report.total);
    for table in ["fact_table_revenue", "fact_table_netprofit", "dim_partsupp", "dim_orders"] {
        if let Some(rel) = engine.catalog.get(table) {
            println!("  {table}: {} rows", rel.len());
        }
    }
}
