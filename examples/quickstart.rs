//! Quickstart: the full Quarry lifecycle in one sitting.
//!
//! Builds the TPC-H domain, poses the paper's Figure 4 information
//! requirement (*average revenue per part and supplier, for orders from
//! Spain*), and walks it through interpretation, integration, deployment and
//! native execution.
//!
//! Run with: `cargo run --example quickstart`

use quarry::Quarry;
use quarry_formats::xrq::figure4_requirement;

fn main() {
    // 1. A Quarry instance over the TPC-H domain ontology + source mappings.
    let mut quarry = Quarry::tpch();
    println!(
        "domain: {} concepts, {} associations",
        quarry.ontology().concept_count(),
        quarry.ontology().association_count()
    );

    // 2. The Requirements Elicitor suggests analytical perspectives.
    let lineitem = quarry.ontology().concept_by_name("Lineitem").expect("TPC-H has Lineitem");
    let suggestions = quarry.elicitor().suggest_dimensions(lineitem);
    println!("\nsuggested dimensions for focus `Lineitem`:");
    for s in suggestions.iter().take(5) {
        println!("  {:<10} (distance {}, score {:.2})", s.name, s.distance, s.score);
    }

    // 3. Pose the Figure 4 requirement (an xRQ document).
    let requirement = figure4_requirement();
    println!("\nxRQ document:\n{}", requirement.to_string_pretty());
    let update = quarry.add_requirement(requirement).expect("figure 4 is MD-compliant");
    println!("integrated requirement {}", update.requirement_id);
    println!("  structural complexity: {:.1}", update.md_cost);
    println!("  estimated ETL time:    {:.0}", update.etl_cost);

    // 4. The unified design solutions.
    let (md, etl) = quarry.unified();
    let (facts, dims, levels, attrs, measures) = md.size();
    println!("\nunified MD schema: {facts} fact(s), {dims} dimension(s), {levels} level(s), {attrs} attribute(s), {measures} measure(s)");
    println!("unified ETL flow:  {} operations, {} edges", etl.op_count(), etl.edge_count());

    // 5. Deploy: PostgreSQL DDL + Pentaho PDI transformation.
    let artifacts = quarry.deploy("postgres-pdi").expect("design is sound");
    println!("\n--- schema.sql (excerpt) ---");
    for line in artifacts.file("schema.sql").expect("generated").lines().take(12) {
        println!("{line}");
    }

    // 6. Execute natively on generated TPC-H data.
    let catalog = quarry_engine::tpch::generate(0.01, 42);
    let (engine, report) = quarry.run_etl(catalog).expect("flow executes");
    println!("\nnative execution: {} rows processed in {:?}", report.rows_processed, report.total);
    for (table, rows) in &report.loaded {
        println!("  loaded {rows:>6} rows into {table}");
    }
    let fact = engine.catalog.get("fact_table_revenue").expect("fact loaded");
    println!("\nfact_table_revenue sample:");
    print!("{fact}");
}
