//! Accommodating a DW design to changes (demo scenario 2).
//!
//! Poses a sequence of information requirements, showing after each step how
//! the integrated design compares to a naive one-design-per-requirement
//! union: the structural complexity of the MD schema and the estimated
//! execution time of the ETL process stay far below the sums of the parts
//! because the integrator reuses conformed dimensions and overlapping flow
//! prefixes. Then a requirement is changed and another removed, and the
//! design shrinks to exactly what the surviving requirements need.
//!
//! Run with: `cargo run --example evolution`

use quarry::Quarry;
use quarry_etl::cost::EtlCostModel;
use quarry_formats::{MeasureSpec, Requirement, Slicer};
use quarry_md::CostModel;

fn requirement(id: &str, measure: (&str, &str), dims: &[&str], slicer: Option<(&str, &str, &str)>) -> Requirement {
    let mut r = Requirement::new(id);
    r.measures.push(MeasureSpec { id: measure.0.into(), function: measure.1.into() });
    r.dimensions.extend(dims.iter().map(|d| d.to_string()));
    if let Some((concept, op, value)) = slicer {
        r.slicers.push(Slicer { concept: concept.into(), operator: op.into(), value: value.into() });
    }
    r
}

fn main() {
    let mut quarry = Quarry::tpch();

    let requirements = vec![
        requirement(
            "IR1",
            ("revenue", "Lineitem_l_extendedpriceATRIBUT * (1 - Lineitem_l_discountATRIBUT)"),
            &["Part_p_nameATRIBUT", "Supplier_s_nameATRIBUT"],
            Some(("Nation_n_nameATRIBUT", "=", "Spain")),
        ),
        requirement(
            "IR2",
            ("quantity", "Lineitem_l_quantityATRIBUT"),
            &["Part_p_nameATRIBUT", "Part_p_brandATRIBUT"],
            None,
        ),
        requirement(
            "IR3",
            ("netprofit", "Orders_o_totalpriceATRIBUT - Partsupp_ps_supplycostATRIBUT"),
            &["Supplier_s_nameATRIBUT", "Nation_n_nameATRIBUT"],
            None,
        ),
        requirement(
            "IR4",
            ("balance", "Customer_c_acctbalATRIBUT"),
            &["Customer_c_mktsegmentATRIBUT", "Nation_n_nameATRIBUT", "Region_r_nameATRIBUT"],
            None,
        ),
    ];

    // Baseline: each requirement interpreted in isolation (no integration).
    let md_model = quarry_md::StructuralComplexity::new();
    let etl_model = quarry_etl::cost::EstimatedTime::new();
    let mut naive_md_cost = 0.0;
    let mut naive_etl_cost = 0.0;

    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>14} {:>8} {:>8}",
        "step", "md-cost", "naive-md", "etl-cost", "naive-etl", "reused", "added"
    );
    for req in requirements {
        let partial = quarry.interpret(&req).expect("requirements are MD-compliant");
        naive_md_cost += md_model.cost(&partial.md);
        naive_etl_cost += etl_model.cost(&partial.etl, &quarry.config().stats).expect("flow validates");

        let update = quarry.add_requirement(req).expect("requirements integrate");
        let etl_report = update.etl_report.as_ref().expect("integration ran");
        println!(
            "{:<6} {:>10.1} {:>12.1} {:>12.0} {:>14.0} {:>8} {:>8}",
            update.requirement_id,
            update.md_cost,
            naive_md_cost,
            update.etl_cost,
            naive_etl_cost,
            etl_report.reused_ops,
            etl_report.added_ops,
        );
    }

    let (md, etl) = quarry.unified();
    println!(
        "\nintegrated: {} facts, {} dimensions | naive union would hold 4 facts and 7+ dimensions",
        md.facts.len(),
        md.dimensions.len()
    );
    println!("integrated flow: {} ops", etl.op_count());

    // Change IR1: the analysts drop the Spain restriction.
    let relaxed = requirement(
        "IR1",
        ("revenue", "Lineitem_l_extendedpriceATRIBUT * (1 - Lineitem_l_discountATRIBUT)"),
        &["Part_p_nameATRIBUT", "Supplier_s_nameATRIBUT"],
        None,
    );
    quarry.change_requirement(relaxed).expect("change integrates");
    println!("\nafter changing IR1 (slicer dropped): {} ops", quarry.unified().1.op_count());

    // Remove IR4 entirely.
    let update = quarry.remove_requirement("IR4").expect("IR4 exists");
    let (md, etl) = quarry.unified();
    println!(
        "after removing IR4: {} facts, {} dimensions, {} ops (md-cost {:.1})",
        md.facts.len(),
        md.dimensions.len(),
        etl.op_count(),
        update.md_cost
    );
    assert!(md.dimension("Customer").is_none(), "IR4's private dimension is pruned");

    // The surviving design still runs.
    let (engine, report) = quarry.run_etl(quarry_engine::tpch::generate(0.005, 7)).expect("flow executes");
    println!(
        "\nfinal design executed: {} tables populated, {} rows processed in {:?}",
        report.loaded.len(),
        report.rows_processed,
        report.total
    );
    drop(engine);
}
