//! Source schema mappings: the bridge between ontology concepts and the
//! physical datastores they are extracted from (paper §2.5, "source schema
//! mappings that define the mappings of the ontological concepts in terms of
//! underlying data sources").

use crate::model::{AssociationId, ConceptId, Ontology, PropertyId};
use std::collections::HashMap;
use std::fmt;

/// Maps one concept onto a source datastore (a table-like extraction unit).
#[derive(Debug, Clone)]
pub struct DatastoreMapping {
    pub concept: ConceptId,
    /// Name of the source datastore, e.g. `partsupp`.
    pub datastore: String,
    /// Property → source column (or source-level expression).
    pub columns: Vec<(PropertyId, String)>,
    /// Columns forming the source key of the datastore.
    pub key_columns: Vec<String>,
}

impl DatastoreMapping {
    /// Column mapped for a property, if any.
    pub fn column_for(&self, property: PropertyId) -> Option<&str> {
        self.columns.iter().find(|(p, _)| *p == property).map(|(_, c)| c.as_str())
    }
}

/// Maps one association onto an equi-join between the two mapped datastores.
#[derive(Debug, Clone)]
pub struct JoinMapping {
    pub association: AssociationId,
    /// Join columns on the `from` concept's datastore.
    pub from_columns: Vec<String>,
    /// Join columns on the `to` concept's datastore (positionally paired).
    pub to_columns: Vec<String>,
}

/// Problems detected while validating a registry against its ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A property mapped under a concept it does not belong to.
    ForeignProperty { concept: String, property: String },
    /// An association mapping whose endpoints have no datastore mapping.
    UnmappedEndpoint { association: String, concept: String },
    /// Positional join column lists of different lengths.
    JoinArityMismatch { association: String },
    /// A concept mapped more than once.
    DuplicateConcept { concept: String },
    /// An association mapped more than once.
    DuplicateAssociation { association: String },
    /// A mapped column repeated for two properties of one concept.
    EmptyKey { concept: String },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ForeignProperty { concept, property } => {
                write!(f, "property `{property}` is not declared on concept `{concept}`")
            }
            MappingError::UnmappedEndpoint { association, concept } => {
                write!(f, "association `{association}` endpoint `{concept}` has no datastore mapping")
            }
            MappingError::JoinArityMismatch { association } => {
                write!(f, "association `{association}` maps join column lists of different lengths")
            }
            MappingError::DuplicateConcept { concept } => write!(f, "concept `{concept}` mapped twice"),
            MappingError::DuplicateAssociation { association } => {
                write!(f, "association `{association}` mapped twice")
            }
            MappingError::EmptyKey { concept } => write!(f, "datastore mapping for `{concept}` has no key columns"),
        }
    }
}

impl std::error::Error for MappingError {}

/// The registry of all source schema mappings for one ontology.
#[derive(Debug, Clone, Default)]
pub struct SourceRegistry {
    by_concept: HashMap<ConceptId, DatastoreMapping>,
    by_association: HashMap<AssociationId, JoinMapping>,
}

impl SourceRegistry {
    pub fn new() -> Self {
        SourceRegistry::default()
    }

    /// Registers a datastore mapping for a concept.
    pub fn map_concept(&mut self, mapping: DatastoreMapping) -> Result<(), MappingError> {
        if self.by_concept.contains_key(&mapping.concept) {
            return Err(MappingError::DuplicateConcept { concept: format!("#{}", mapping.concept.0) });
        }
        self.by_concept.insert(mapping.concept, mapping);
        Ok(())
    }

    /// Registers a join mapping for an association.
    pub fn map_association(&mut self, mapping: JoinMapping) -> Result<(), MappingError> {
        if self.by_association.contains_key(&mapping.association) {
            return Err(MappingError::DuplicateAssociation { association: format!("#{}", mapping.association.0) });
        }
        self.by_association.insert(mapping.association, mapping);
        Ok(())
    }

    pub fn datastore(&self, concept: ConceptId) -> Option<&DatastoreMapping> {
        self.by_concept.get(&concept)
    }

    pub fn join(&self, association: AssociationId) -> Option<&JoinMapping> {
        self.by_association.get(&association)
    }

    pub fn mapped_concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        self.by_concept.keys().copied()
    }

    pub fn len(&self) -> usize {
        self.by_concept.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_concept.is_empty()
    }

    /// Full consistency check against the ontology; returns every problem
    /// found (the paper's "automatic validation" surfaces all, not just the
    /// first).
    pub fn validate(&self, onto: &Ontology) -> Vec<MappingError> {
        let mut errors = Vec::new();
        for (cid, m) in &self.by_concept {
            let cname = &onto.concept(*cid).name;
            if m.key_columns.is_empty() {
                errors.push(MappingError::EmptyKey { concept: cname.clone() });
            }
            let visible = onto.all_properties(*cid);
            for (pid, _) in &m.columns {
                if !visible.contains(pid) {
                    errors.push(MappingError::ForeignProperty {
                        concept: cname.clone(),
                        property: onto.property_def(*pid).name.clone(),
                    });
                }
            }
        }
        for (aid, j) in &self.by_association {
            let a = onto.association(*aid);
            if j.from_columns.len() != j.to_columns.len() {
                errors.push(MappingError::JoinArityMismatch { association: a.name.clone() });
            }
            for endpoint in [a.from, a.to] {
                if !self.by_concept.contains_key(&endpoint) {
                    errors.push(MappingError::UnmappedEndpoint {
                        association: a.name.clone(),
                        concept: onto.concept(endpoint).name.clone(),
                    });
                }
            }
        }
        errors.sort_by_key(|e| e.to_string());
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataType, Multiplicity};

    fn fixture() -> (Ontology, SourceRegistry, ConceptId, ConceptId) {
        let mut o = Ontology::new();
        let li = o.add_concept("Lineitem").unwrap();
        let pa = o.add_concept("Part").unwrap();
        let li_key = o.add_identifier(li, "l_id", DataType::Integer).unwrap();
        let pa_key = o.add_identifier(pa, "p_partkey", DataType::Integer).unwrap();
        let aid = o.add_association("has_part", li, Multiplicity::Many, pa, Multiplicity::One);

        let mut reg = SourceRegistry::new();
        reg.map_concept(DatastoreMapping {
            concept: li,
            datastore: "lineitem".into(),
            columns: vec![(li_key, "l_id".into())],
            key_columns: vec!["l_id".into()],
        })
        .unwrap();
        reg.map_concept(DatastoreMapping {
            concept: pa,
            datastore: "part".into(),
            columns: vec![(pa_key, "p_partkey".into())],
            key_columns: vec!["p_partkey".into()],
        })
        .unwrap();
        reg.map_association(JoinMapping {
            association: aid,
            from_columns: vec!["l_partkey".into()],
            to_columns: vec!["p_partkey".into()],
        })
        .unwrap();
        (o, reg, li, pa)
    }

    #[test]
    fn valid_registry_validates_cleanly() {
        let (o, reg, _, _) = fixture();
        assert!(reg.validate(&o).is_empty());
    }

    #[test]
    fn column_lookup_by_property() {
        let (o, reg, _, pa) = fixture();
        let key = o.property(pa, "p_partkey").unwrap();
        assert_eq!(reg.datastore(pa).unwrap().column_for(key), Some("p_partkey"));
    }

    #[test]
    fn duplicate_concept_mapping_rejected() {
        let (_, mut reg, li, _) = fixture();
        let err = reg
            .map_concept(DatastoreMapping {
                concept: li,
                datastore: "other".into(),
                columns: vec![],
                key_columns: vec!["k".into()],
            })
            .unwrap_err();
        assert!(matches!(err, MappingError::DuplicateConcept { .. }));
    }

    #[test]
    fn foreign_property_detected() {
        let (o, mut reg, _, _) = fixture();
        // Map a new concept with a property that belongs to Lineitem.
        let mut o2 = o.clone();
        let alien = o2.add_concept("Alien").unwrap();
        let li = o2.concept_by_name("Lineitem").unwrap();
        let li_prop = o2.property(li, "l_id").unwrap();
        reg.map_concept(DatastoreMapping {
            concept: alien,
            datastore: "alien".into(),
            columns: vec![(li_prop, "x".into())],
            key_columns: vec!["x".into()],
        })
        .unwrap();
        let errors = reg.validate(&o2);
        assert!(errors.iter().any(|e| matches!(e, MappingError::ForeignProperty { .. })), "{errors:?}");
    }

    #[test]
    fn join_arity_mismatch_detected() {
        let (o, _, li, pa) = fixture();
        let mut o2 = o.clone();
        let aid = o2.add_association("broken", li, Multiplicity::Many, pa, Multiplicity::One);
        let mut reg = SourceRegistry::new();
        reg.map_association(JoinMapping {
            association: aid,
            from_columns: vec!["a".into(), "b".into()],
            to_columns: vec!["a".into()],
        })
        .unwrap();
        let errors = reg.validate(&o2);
        assert!(errors.iter().any(|e| matches!(e, MappingError::JoinArityMismatch { .. })));
        assert!(errors.iter().any(|e| matches!(e, MappingError::UnmappedEndpoint { .. })));
    }

    #[test]
    fn empty_key_detected() {
        let (o, _, li, _) = fixture();
        let mut reg = SourceRegistry::new();
        reg.map_concept(DatastoreMapping {
            concept: li,
            datastore: "lineitem".into(),
            columns: vec![],
            key_columns: vec![],
        })
        .unwrap();
        let errors = reg.validate(&o);
        assert!(errors.iter().any(|e| matches!(e, MappingError::EmptyKey { .. })));
    }
}
