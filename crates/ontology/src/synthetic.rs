//! Deterministic synthetic-ontology generation for scaling experiments.
//!
//! Experiment E2 (DESIGN.md) sweeps the Requirements Elicitor over ontologies
//! of growing size; this module manufactures them: a configurable number of
//! "fact-like" hub concepts, each with functional chains of dimension-like
//! concepts hanging off it, plus cross-links that make path search do real
//! work. Generation is seeded and reproducible (no dependency on `rand`; a
//! SplitMix64 suffices for structural choices).

use crate::mappings::{DatastoreMapping, JoinMapping, SourceRegistry};
use crate::model::{ConceptId, DataType, Ontology};

/// Parameters of a synthetic domain.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Number of hub (fact-like) concepts.
    pub hubs: usize,
    /// Functional chains per hub.
    pub chains_per_hub: usize,
    /// Concepts per chain.
    pub chain_length: usize,
    /// Non-identifier properties per concept.
    pub properties_per_concept: usize,
    /// Extra random functional cross-links between chain concepts.
    pub cross_links: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            hubs: 1,
            chains_per_hub: 3,
            chain_length: 3,
            properties_per_concept: 3,
            cross_links: 2,
            seed: 42,
        }
    }
}

impl SyntheticSpec {
    /// Total number of concepts this spec will generate.
    pub fn concept_count(&self) -> usize {
        self.hubs * (1 + self.chains_per_hub * self.chain_length)
    }

    /// A spec sized to approximately `n` concepts, used by benches.
    pub fn with_concepts(n: usize, seed: u64) -> SyntheticSpec {
        let chains = 4;
        let chain_length = 4;
        let per_hub = 1 + chains * chain_length;
        SyntheticSpec {
            hubs: n.div_ceil(per_hub).max(1),
            chains_per_hub: chains,
            chain_length,
            properties_per_concept: 3,
            cross_links: n / 8,
            seed,
        }
    }
}

/// A generated domain: ontology + registry + the hub concepts (requirement
/// foci for benches).
#[derive(Debug, Clone)]
pub struct SyntheticDomain {
    pub ontology: Ontology,
    pub sources: SourceRegistry,
    pub hubs: Vec<ConceptId>,
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Generates a synthetic domain from a spec.
pub fn generate(spec: &SyntheticSpec) -> SyntheticDomain {
    let mut rng = SplitMix64(spec.seed);
    let mut o = Ontology::new();
    let mut sources = SourceRegistry::new();
    let mut hubs = Vec::with_capacity(spec.hubs);
    let mut chain_concepts: Vec<ConceptId> = Vec::new();

    let declare = |o: &mut Ontology, sources: &mut SourceRegistry, name: String, numeric_props: usize| {
        let cid = o.add_concept(&name).expect("generated names are unique");
        let key =
            o.add_identifier(cid, format!("{}_id", name.to_lowercase()), DataType::Integer).expect("fresh concept");
        let mut columns = vec![(key, format!("{}_id", name.to_lowercase()))];
        for p in 0..numeric_props {
            // Alternate numeric and descriptive properties so both measure
            // and descriptor candidates exist everywhere.
            let dt = if p % 2 == 0 { DataType::Decimal } else { DataType::String };
            let pname = format!("{}_attr{}", name.to_lowercase(), p);
            let pid = o.add_property(cid, &pname, dt).expect("fresh property");
            columns.push((pid, pname));
        }
        sources
            .map_concept(DatastoreMapping {
                concept: cid,
                datastore: name.to_lowercase(),
                columns,
                key_columns: vec![format!("{}_id", name.to_lowercase())],
            })
            .expect("fresh concept mapping");
        cid
    };

    for h in 0..spec.hubs {
        let hub = declare(&mut o, &mut sources, format!("Hub{h}"), spec.properties_per_concept.max(2));
        hubs.push(hub);
        for c in 0..spec.chains_per_hub {
            let mut prev = hub;
            for l in 0..spec.chain_length {
                let cid = declare(&mut o, &mut sources, format!("H{h}C{c}L{l}"), spec.properties_per_concept);
                let aid = o.add_many_to_one(format!("h{h}c{c}l{l}_link"), prev, cid);
                let fk = format!("fk_{}", o.concept(cid).name.to_lowercase());
                sources
                    .map_association(JoinMapping {
                        association: aid,
                        from_columns: vec![fk],
                        to_columns: vec![format!("{}_id", o.concept(cid).name.to_lowercase())],
                    })
                    .expect("fresh association mapping");
                chain_concepts.push(cid);
                prev = cid;
            }
        }
    }

    // Cross-links between random chain concepts (always many-to-one toward
    // the later concept to keep the functional graph acyclic).
    for x in 0..spec.cross_links {
        if chain_concepts.len() < 2 {
            break;
        }
        let i = rng.below(chain_concepts.len() - 1);
        let j = i + 1 + rng.below(chain_concepts.len() - i - 1);
        let (from, to) = (chain_concepts[i], chain_concepts[j]);
        let aid = o.add_many_to_one(format!("cross{x}"), from, to);
        sources
            .map_association(JoinMapping {
                association: aid,
                from_columns: vec![format!("fk_cross{x}")],
                to_columns: vec![format!("{}_id", o.concept(to).name.to_lowercase())],
            })
            .expect("fresh association mapping");
    }

    SyntheticDomain { ontology: o, sources, hubs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_concept_count() {
        let spec = SyntheticSpec { hubs: 2, chains_per_hub: 3, chain_length: 4, ..Default::default() };
        let d = generate(&spec);
        assert_eq!(d.ontology.concept_count(), spec.concept_count());
        assert_eq!(d.hubs.len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.ontology.concept_count(), b.ontology.concept_count());
        assert_eq!(a.ontology.association_count(), b.ontology.association_count());
        let names_a: Vec<_> = a.ontology.concept_ids().map(|c| a.ontology.concept(c).name.clone()).collect();
        let names_b: Vec<_> = b.ontology.concept_ids().map(|c| b.ontology.concept(c).name.clone()).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn different_seeds_change_cross_links() {
        let mut spec = SyntheticSpec { cross_links: 8, ..Default::default() };
        let a = generate(&spec);
        spec.seed = 7;
        let b = generate(&spec);
        // Same counts, same chain structure, but cross-link targets differ.
        assert_eq!(a.ontology.association_count(), b.ontology.association_count());
        let ends_a: Vec<_> = a.ontology.association_ids().map(|i| a.ontology.association(i).to).collect();
        let ends_b: Vec<_> = b.ontology.association_ids().map(|i| b.ontology.association(i).to).collect();
        assert_ne!(ends_a, ends_b, "cross links should depend on the seed");
    }

    #[test]
    fn hubs_functionally_reach_their_chains() {
        let d = generate(&SyntheticSpec::default());
        let paths = d.ontology.functional_paths(d.hubs[0]);
        assert_eq!(paths.len(), d.ontology.concept_count(), "every concept hangs off the single hub");
    }

    #[test]
    fn registry_validates() {
        let d = generate(&SyntheticSpec { hubs: 3, cross_links: 6, ..Default::default() });
        assert!(d.sources.validate(&d.ontology).is_empty());
    }

    #[test]
    fn with_concepts_hits_target_size_approximately() {
        for n in [16, 64, 256] {
            let d = generate(&SyntheticSpec::with_concepts(n, 1));
            let got = d.ontology.concept_count();
            assert!(got >= n && got <= n + 17, "asked {n}, got {got}");
        }
    }
}
