//! The TPC-H domain ontology and source schema mappings used throughout the
//! paper's running example (Figure 2 shows this very ontology rendered in the
//! Requirements Elicitor).
//!
//! Concept and property names follow TPC-H so that the paper's identifiers
//! (`Part_p_nameATRIBUT`, `Lineitem_l_extendedpriceATRIBUT`, …) resolve
//! directly. A small business vocabulary is layered on top, as §2.1
//! describes ("a domain ontology can be additionally enriched with the
//! business level vocabulary").

use crate::mappings::{DatastoreMapping, JoinMapping, SourceRegistry};
use crate::model::{ConceptId, DataType, Ontology};

/// The TPC-H ontology together with its source registry.
#[derive(Debug, Clone)]
pub struct TpchDomain {
    pub ontology: Ontology,
    pub sources: SourceRegistry,
}

/// Builds the TPC-H domain: 8 concepts, 61 properties, 10 many-to-one
/// associations, fully mapped onto the 8 TPC-H tables.
pub fn domain() -> TpchDomain {
    let mut o = Ontology::new();

    let region = concept(
        &mut o,
        "Region",
        &[
            ("r_regionkey", DataType::Integer, true),
            ("r_name", DataType::String, false),
            ("r_comment", DataType::String, false),
        ],
    );
    let nation = concept(
        &mut o,
        "Nation",
        &[
            ("n_nationkey", DataType::Integer, true),
            ("n_name", DataType::String, false),
            ("n_comment", DataType::String, false),
        ],
    );
    let supplier = concept(
        &mut o,
        "Supplier",
        &[
            ("s_suppkey", DataType::Integer, true),
            ("s_name", DataType::String, false),
            ("s_address", DataType::String, false),
            ("s_phone", DataType::String, false),
            ("s_acctbal", DataType::Decimal, false),
            ("s_comment", DataType::String, false),
        ],
    );
    let customer = concept(
        &mut o,
        "Customer",
        &[
            ("c_custkey", DataType::Integer, true),
            ("c_name", DataType::String, false),
            ("c_address", DataType::String, false),
            ("c_phone", DataType::String, false),
            ("c_acctbal", DataType::Decimal, false),
            ("c_mktsegment", DataType::String, false),
            ("c_comment", DataType::String, false),
        ],
    );
    let part = concept(
        &mut o,
        "Part",
        &[
            ("p_partkey", DataType::Integer, true),
            ("p_name", DataType::String, false),
            ("p_mfgr", DataType::String, false),
            ("p_brand", DataType::String, false),
            ("p_type", DataType::String, false),
            ("p_size", DataType::Integer, false),
            ("p_container", DataType::String, false),
            ("p_retailprice", DataType::Decimal, false),
            ("p_comment", DataType::String, false),
        ],
    );
    let partsupp = concept(
        &mut o,
        "Partsupp",
        &[
            ("ps_partkey", DataType::Integer, true),
            ("ps_suppkey", DataType::Integer, true),
            ("ps_availqty", DataType::Integer, false),
            ("ps_supplycost", DataType::Decimal, false),
            ("ps_comment", DataType::String, false),
        ],
    );
    let orders = concept(
        &mut o,
        "Orders",
        &[
            ("o_orderkey", DataType::Integer, true),
            ("o_orderstatus", DataType::String, false),
            ("o_totalprice", DataType::Decimal, false),
            ("o_orderdate", DataType::Date, false),
            ("o_orderpriority", DataType::String, false),
            ("o_clerk", DataType::String, false),
            ("o_shippriority", DataType::Integer, false),
            ("o_comment", DataType::String, false),
        ],
    );
    let lineitem = concept(
        &mut o,
        "Lineitem",
        &[
            ("l_orderkey", DataType::Integer, true),
            ("l_linenumber", DataType::Integer, true),
            ("l_quantity", DataType::Decimal, false),
            ("l_extendedprice", DataType::Decimal, false),
            ("l_discount", DataType::Decimal, false),
            ("l_tax", DataType::Decimal, false),
            ("l_returnflag", DataType::String, false),
            ("l_linestatus", DataType::String, false),
            ("l_shipdate", DataType::Date, false),
            ("l_commitdate", DataType::Date, false),
            ("l_receiptdate", DataType::Date, false),
            ("l_shipinstruct", DataType::String, false),
            ("l_shipmode", DataType::String, false),
            ("l_comment", DataType::String, false),
        ],
    );

    // Business vocabulary (Elicitor resolution targets).
    o.add_concept_alias(lineitem, "sales");
    o.add_concept_alias(lineitem, "sales line");
    o.add_concept_alias(part, "product");
    o.add_concept_alias(customer, "client");
    o.add_concept_alias(nation, "country");
    o.add_concept_alias(orders, "order");
    o.add_concept_alias(supplier, "vendor");
    let extprice = o.property(lineitem, "l_extendedprice").expect("declared above");
    o.add_property_alias(extprice, "extended price");
    let discount = o.property(lineitem, "l_discount").expect("declared above");
    o.add_property_alias(discount, "discount rate");

    // Associations, all many-to-one in the FK direction.
    let li_orders = o.add_many_to_one("lineitem_of_order", lineitem, orders);
    let li_part = o.add_many_to_one("lineitem_of_part", lineitem, part);
    let li_supplier = o.add_many_to_one("lineitem_of_supplier", lineitem, supplier);
    let li_partsupp = o.add_many_to_one("lineitem_of_partsupp", lineitem, partsupp);
    let ps_part = o.add_many_to_one("partsupp_of_part", partsupp, part);
    let ps_supplier = o.add_many_to_one("partsupp_of_supplier", partsupp, supplier);
    let orders_customer = o.add_many_to_one("order_of_customer", orders, customer);
    let customer_nation = o.add_many_to_one("customer_in_nation", customer, nation);
    let supplier_nation = o.add_many_to_one("supplier_in_nation", supplier, nation);
    let nation_region = o.add_many_to_one("nation_in_region", nation, region);

    // Source schema mappings: every property maps 1:1 onto a TPC-H column.
    let mut sources = SourceRegistry::new();
    for (cid, table, keys) in [
        (region, "region", vec!["r_regionkey"]),
        (nation, "nation", vec!["n_nationkey"]),
        (supplier, "supplier", vec!["s_suppkey"]),
        (customer, "customer", vec!["c_custkey"]),
        (part, "part", vec!["p_partkey"]),
        (partsupp, "partsupp", vec!["ps_partkey", "ps_suppkey"]),
        (orders, "orders", vec!["o_orderkey"]),
        (lineitem, "lineitem", vec!["l_orderkey", "l_linenumber"]),
    ] {
        let columns = o.all_properties(cid).into_iter().map(|pid| (pid, o.property_def(pid).name.clone())).collect();
        sources
            .map_concept(DatastoreMapping {
                concept: cid,
                datastore: table.to_string(),
                columns,
                key_columns: keys.into_iter().map(String::from).collect(),
            })
            .expect("each TPC-H concept mapped once");
    }
    for (aid, from_cols, to_cols) in [
        (li_orders, vec!["l_orderkey"], vec!["o_orderkey"]),
        (li_part, vec!["l_partkey"], vec!["p_partkey"]),
        (li_supplier, vec!["l_suppkey"], vec!["s_suppkey"]),
        (li_partsupp, vec!["l_partkey", "l_suppkey"], vec!["ps_partkey", "ps_suppkey"]),
        (ps_part, vec!["ps_partkey"], vec!["p_partkey"]),
        (ps_supplier, vec!["ps_suppkey"], vec!["s_suppkey"]),
        (orders_customer, vec!["o_custkey"], vec!["c_custkey"]),
        (customer_nation, vec!["c_nationkey"], vec!["n_nationkey"]),
        (supplier_nation, vec!["s_nationkey"], vec!["n_nationkey"]),
        (nation_region, vec!["n_regionkey"], vec!["r_regionkey"]),
    ] {
        sources
            .map_association(JoinMapping {
                association: aid,
                from_columns: from_cols.into_iter().map(String::from).collect(),
                to_columns: to_cols.into_iter().map(String::from).collect(),
            })
            .expect("each TPC-H association mapped once");
    }

    TpchDomain { ontology: o, sources }
}

fn concept(o: &mut Ontology, name: &str, props: &[(&str, DataType, bool)]) -> ConceptId {
    let cid = o.add_concept(name).expect("TPC-H concept names are unique");
    for (pname, dt, identifier) in props {
        if *identifier {
            o.add_identifier(cid, *pname, *dt).expect("TPC-H property names are unique");
        } else {
            o.add_property(cid, *pname, *dt).expect("TPC-H property names are unique");
        }
    }
    cid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_eight_concepts_and_ten_associations() {
        let d = domain();
        assert_eq!(d.ontology.concept_count(), 8);
        assert_eq!(d.ontology.association_count(), 10);
    }

    #[test]
    fn registry_validates_against_ontology() {
        let d = domain();
        let errors = d.sources.validate(&d.ontology);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn paper_identifiers_resolve() {
        let d = domain();
        for id in [
            "Part_p_nameATRIBUT",
            "Supplier_s_nameATRIBUT",
            "Nation_n_nameATRIBUT",
            "Lineitem_l_extendedpriceATRIBUT",
            "Lineitem_l_discountATRIBUT",
        ] {
            assert!(d.ontology.resolve_property_ref(id).is_ok(), "{id} must resolve");
        }
    }

    #[test]
    fn lineitem_reaches_dimension_concepts_functionally() {
        let d = domain();
        let li = d.ontology.concept_by_name("Lineitem").unwrap();
        let paths = d.ontology.functional_paths(li);
        for name in ["Part", "Supplier", "Nation", "Region", "Orders", "Customer", "Partsupp"] {
            let cid = d.ontology.concept_by_name(name).unwrap();
            assert!(paths.contains_key(&cid), "Lineitem must functionally reach {name}");
        }
    }

    #[test]
    fn business_vocabulary_resolves() {
        let d = domain();
        assert!(d.ontology.resolve_term("product").is_ok());
        assert!(d.ontology.resolve_term("Country").is_ok());
        assert!(d.ontology.resolve_term("extended price").is_ok());
    }

    #[test]
    fn composite_keys_are_mapped() {
        let d = domain();
        let ps = d.ontology.concept_by_name("Partsupp").unwrap();
        assert_eq!(d.sources.datastore(ps).unwrap().key_columns, ["ps_partkey", "ps_suppkey"]);
        let li = d.ontology.concept_by_name("Lineitem").unwrap();
        assert_eq!(d.sources.datastore(li).unwrap().key_columns, ["l_orderkey", "l_linenumber"]);
    }

    #[test]
    fn nation_is_shared_between_customer_and_supplier_paths() {
        // The conformity that lets revenue-by-customer-nation and
        // profit-by-supplier-nation share a Nation dimension.
        let d = domain();
        let cust = d.ontology.concept_by_name("Customer").unwrap();
        let supp = d.ontology.concept_by_name("Supplier").unwrap();
        let nation = d.ontology.concept_by_name("Nation").unwrap();
        assert!(d.ontology.functional_path(cust, nation).is_some());
        assert!(d.ontology.functional_path(supp, nation).is_some());
    }
}
