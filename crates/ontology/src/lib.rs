//! Domain ontologies and source schema mappings for Quarry.
//!
//! Quarry grounds every stage of the DW design lifecycle in a *domain
//! ontology* that captures the semantics of the underlying data sources
//! (paper §2.5): concepts with datatype properties, a subclass taxonomy, and
//! associations annotated with multiplicities. End-users phrase information
//! requirements in this vocabulary; the Requirements Interpreter maps them to
//! sources through *source schema mappings* that tie each ontological concept
//! to a datastore and each property to a column or expression.
//!
//! The original system represented ontologies in OWL and handled them with
//! Apache Jena. This crate implements the fragment Quarry actually exercises
//! — a labelled multigraph with cardinalities and a vocabulary — plus:
//!
//! - graph analytics used by the Elicitor and Interpreter
//!   ([`Ontology::functional_paths`], [`Ontology::connecting_subgraph`]),
//! - an OWL-subset XML loader/saver ([`owlx`]),
//! - the TPC-H domain ontology of the paper's running example ([`tpch`]),
//! - a deterministic synthetic-ontology generator for scaling experiments
//!   ([`synthetic`]).

#![forbid(unsafe_code)]

mod graph;
pub mod mappings;
mod model;
pub mod owlx;
pub mod synthetic;
pub mod tpch;

pub use graph::{ConnectError, FunctionalPath, Subgraph};
pub use model::{
    Association, AssociationId, Concept, ConceptId, DataType, Multiplicity, Ontology, OntologyError, Property,
    PropertyId, Term,
};
