//! Graph analytics over the ontology: functional-path discovery (the
//! backbone of MD validation and of the Elicitor's suggestions) and
//! connecting-subgraph extraction (the join-path discovery of the
//! Requirements Interpreter).

use crate::model::{AssociationId, ConceptId, Multiplicity, Ontology};
use std::collections::{HashMap, VecDeque};

/// One step along a path: an association traversed in a given direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    pub association: AssociationId,
    /// True when the association is traversed `from → to`.
    pub forward: bool,
}

/// A functional path: a chain of to-one association hops from a base concept
/// to a target concept. Along such a path every base instance determines at
/// most one target instance — exactly the summarizability condition MD
/// schemas need between facts and dimension levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalPath {
    pub base: ConceptId,
    pub target: ConceptId,
    pub steps: Vec<Step>,
}

impl FunctionalPath {
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The ordered list of concepts visited, base first, target last.
    pub fn concepts(&self, onto: &Ontology) -> Vec<ConceptId> {
        let mut out = vec![self.base];
        let mut cur = self.base;
        for step in &self.steps {
            let a = onto.association(step.association);
            cur = if step.forward {
                debug_assert_eq!(a.from, cur);
                a.to
            } else {
                debug_assert_eq!(a.to, cur);
                a.from
            };
            out.push(cur);
        }
        out
    }
}

/// Failure to connect a set of concepts into one subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectError {
    /// Concepts unreachable from the chosen base.
    pub unreachable: Vec<ConceptId>,
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} concept(s) not connected to the base concept", self.unreachable.len())
    }
}

impl std::error::Error for ConnectError {}

/// A connected subgraph of the ontology: the concepts and association hops a
/// requirement touches. The Interpreter turns this into join paths.
#[derive(Debug, Clone, Default)]
pub struct Subgraph {
    pub concepts: Vec<ConceptId>,
    pub steps: Vec<Step>,
}

impl Ontology {
    /// Breadth-first discovery of every concept reachable from `base` via
    /// functional (to-one) hops only, returning the shortest such path per
    /// concept. The path to `base` itself is the empty path.
    ///
    /// Direction matters: an association `A --many:one--> B` is traversed
    /// A→B (each A has one B); it is additionally traversed B→A only when
    /// the A side is also `One` (a one-to-one association).
    pub fn functional_paths(&self, base: ConceptId) -> HashMap<ConceptId, FunctionalPath> {
        let mut out: HashMap<ConceptId, FunctionalPath> = HashMap::new();
        out.insert(base, FunctionalPath { base, target: base, steps: Vec::new() });
        let mut queue = VecDeque::from([base]);
        while let Some(cur) = queue.pop_front() {
            let cur_path = out[&cur].clone();
            for aid in self.association_ids() {
                let a = self.association(aid);
                let mut try_hop = |next: ConceptId, forward: bool| {
                    if let std::collections::hash_map::Entry::Vacant(e) = out.entry(next) {
                        let mut steps = cur_path.steps.clone();
                        steps.push(Step { association: aid, forward });
                        e.insert(FunctionalPath { base, target: next, steps });
                        queue.push_back(next);
                    }
                };
                if a.from == cur && a.to_mult == Multiplicity::One {
                    try_hop(a.to, true);
                }
                if a.to == cur && a.from_mult == Multiplicity::One {
                    try_hop(a.from, false);
                }
            }
        }
        out
    }

    /// The shortest functional path `base → target`, if one exists.
    pub fn functional_path(&self, base: ConceptId, target: ConceptId) -> Option<FunctionalPath> {
        self.functional_paths(base).remove(&target)
    }

    /// Builds the connecting subgraph for a requirement: the union of the
    /// shortest *functional* paths from `base` to every concept in
    /// `targets`. Fails with the list of unreachable targets when some
    /// concept has no to-one path from the base — the MD-compliance error
    /// the paper's automatic validation reports.
    pub fn connecting_subgraph(&self, base: ConceptId, targets: &[ConceptId]) -> Result<Subgraph, ConnectError> {
        let paths = self.functional_paths(base);
        let unreachable: Vec<ConceptId> = targets.iter().copied().filter(|t| !paths.contains_key(t)).collect();
        if !unreachable.is_empty() {
            return Err(ConnectError { unreachable });
        }
        let mut sub = Subgraph { concepts: vec![base], steps: Vec::new() };
        let mut seen_concepts = vec![base];
        let mut seen_steps: Vec<Step> = Vec::new();
        for &t in targets {
            let path = &paths[&t];
            for (i, step) in path.steps.iter().enumerate() {
                if !seen_steps.contains(step) {
                    seen_steps.push(*step);
                    sub.steps.push(*step);
                }
                let concepts = path.concepts(self);
                let next = concepts[i + 1];
                if !seen_concepts.contains(&next) {
                    seen_concepts.push(next);
                    sub.concepts.push(next);
                }
            }
        }
        Ok(sub)
    }

    /// Undirected reachability: all concepts connected to `base` ignoring
    /// multiplicities (used by the Elicitor to scope exploration).
    pub fn reachable(&self, base: ConceptId) -> Vec<ConceptId> {
        let mut seen = vec![false; self.concept_count()];
        seen[base.0 as usize] = true;
        let mut queue = VecDeque::from([base]);
        let mut out = vec![base];
        while let Some(cur) = queue.pop_front() {
            for aid in self.association_ids() {
                let a = self.association(aid);
                for next in [(a.from == cur).then_some(a.to), (a.to == cur).then_some(a.from)].into_iter().flatten() {
                    if !seen[next.0 as usize] {
                        seen[next.0 as usize] = true;
                        out.push(next);
                        queue.push_back(next);
                    }
                }
            }
        }
        out
    }

    /// The longest chain of functional hops starting at `base` where every
    /// concept on the chain is visited once — the raw material for deriving
    /// dimension hierarchies (e.g. Customer → Nation → Region).
    pub fn functional_chains(&self, base: ConceptId) -> Vec<Vec<ConceptId>> {
        let mut chains = Vec::new();
        let mut stack = vec![vec![base]];
        while let Some(chain) = stack.pop() {
            let cur = *chain.last().expect("chains are never empty");
            let mut extended = false;
            for aid in self.association_ids() {
                let a = self.association(aid);
                let next = if a.from == cur && a.to_mult == Multiplicity::One {
                    Some(a.to)
                } else if a.to == cur && a.from_mult == Multiplicity::One {
                    Some(a.from)
                } else {
                    None
                };
                if let Some(next) = next {
                    if !chain.contains(&next) {
                        let mut longer = chain.clone();
                        longer.push(next);
                        stack.push(longer);
                        extended = true;
                    }
                }
            }
            if !extended {
                chains.push(chain);
            }
        }
        chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DataType;

    /// Lineitem → Orders → Customer → Nation → Region plus Lineitem → Part.
    fn chain_ontology() -> (Ontology, Vec<ConceptId>) {
        let mut o = Ontology::new();
        let names = ["Lineitem", "Orders", "Customer", "Nation", "Region", "Part"];
        let ids: Vec<ConceptId> = names.iter().map(|n| o.add_concept(*n).unwrap()).collect();
        for c in &ids {
            o.add_identifier(*c, "id", DataType::Integer).unwrap();
        }
        o.add_many_to_one("li_orders", ids[0], ids[1]);
        o.add_many_to_one("orders_cust", ids[1], ids[2]);
        o.add_many_to_one("cust_nation", ids[2], ids[3]);
        o.add_many_to_one("nation_region", ids[3], ids[4]);
        o.add_many_to_one("li_part", ids[0], ids[5]);
        (o, ids)
    }

    #[test]
    fn functional_paths_follow_to_one_edges_transitively() {
        let (o, ids) = chain_ontology();
        let paths = o.functional_paths(ids[0]);
        assert_eq!(paths.len(), 6, "all concepts reachable from Lineitem");
        assert_eq!(paths[&ids[4]].len(), 4, "Region is four hops away");
        assert_eq!(paths[&ids[5]].len(), 1);
    }

    #[test]
    fn functional_paths_do_not_go_against_many_sides() {
        let (o, ids) = chain_ontology();
        let from_region = o.functional_paths(ids[4]);
        assert_eq!(from_region.len(), 1, "nothing is functionally reachable from Region");
    }

    #[test]
    fn one_to_one_edges_traverse_both_ways() {
        let mut o = Ontology::new();
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        o.add_association("ab", a, Multiplicity::One, b, Multiplicity::One);
        assert!(o.functional_path(a, b).is_some());
        assert!(o.functional_path(b, a).is_some());
    }

    #[test]
    fn path_concepts_reports_the_visited_chain() {
        let (o, ids) = chain_ontology();
        let p = o.functional_path(ids[0], ids[3]).unwrap();
        assert_eq!(p.concepts(&o), vec![ids[0], ids[1], ids[2], ids[3]]);
    }

    #[test]
    fn connecting_subgraph_unions_paths_without_duplicates() {
        let (o, ids) = chain_ontology();
        // Nation and Region share the prefix through Orders/Customer.
        let sub = o.connecting_subgraph(ids[0], &[ids[3], ids[4], ids[5]]).unwrap();
        assert_eq!(sub.steps.len(), 5, "five distinct hops");
        assert_eq!(sub.concepts.len(), 6);
    }

    #[test]
    fn connecting_subgraph_reports_unreachable_targets() {
        let (mut o, ids) = chain_ontology();
        let island = o.add_concept("Island").unwrap();
        let err = o.connecting_subgraph(ids[0], &[ids[1], island]).unwrap_err();
        assert_eq!(err.unreachable, vec![island]);
    }

    #[test]
    fn many_to_one_against_the_grain_is_not_functional() {
        let (o, ids) = chain_ontology();
        // Part → Lineitem goes against a many edge.
        let err = o.connecting_subgraph(ids[5], &[ids[0]]).unwrap_err();
        assert_eq!(err.unreachable, vec![ids[0]]);
    }

    #[test]
    fn reachable_ignores_direction() {
        let (o, ids) = chain_ontology();
        assert_eq!(o.reachable(ids[4]).len(), 6, "undirected reachability spans the graph");
    }

    #[test]
    fn functional_chains_enumerate_hierarchy_material() {
        let (o, ids) = chain_ontology();
        let chains = o.functional_chains(ids[2]); // Customer
        assert!(chains.contains(&vec![ids[2], ids[3], ids[4]]), "Customer→Nation→Region chain found: {chains:?}");
    }

    #[test]
    fn empty_path_for_base_itself() {
        let (o, ids) = chain_ontology();
        let p = o.functional_path(ids[0], ids[0]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.concepts(&o), vec![ids[0]]);
    }
}
