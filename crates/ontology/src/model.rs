//! The core ontology data model: concepts, properties, taxonomy,
//! associations with multiplicities, and a business vocabulary.

use std::collections::HashMap;
use std::fmt;

/// Index of a concept inside an [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

/// Index of a datatype property inside an [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropertyId(pub u32);

/// Index of an association (object property) inside an [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AssociationId(pub u32);

/// Data types of ontology properties; the interpreter uses these to decide
/// which properties can act as measures (numeric) versus descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    String,
    Integer,
    Decimal,
    Date,
    Boolean,
}

impl DataType {
    /// Numeric properties are measure candidates.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Integer | DataType::Decimal)
    }

    pub fn as_str(self) -> &'static str {
        match self {
            DataType::String => "string",
            DataType::Integer => "integer",
            DataType::Decimal => "decimal",
            DataType::Date => "date",
            DataType::Boolean => "boolean",
        }
    }

    pub fn parse(s: &str) -> Option<DataType> {
        Some(match s {
            "string" => DataType::String,
            "integer" | "int" => DataType::Integer,
            "decimal" | "double" | "float" => DataType::Decimal,
            "date" => DataType::Date,
            "boolean" | "bool" => DataType::Boolean,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Multiplicity of one end of an association.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Multiplicity {
    One,
    Many,
}

impl Multiplicity {
    pub fn as_str(self) -> &'static str {
        match self {
            Multiplicity::One => "one",
            Multiplicity::Many => "many",
        }
    }

    pub fn parse(s: &str) -> Option<Multiplicity> {
        match s {
            "one" | "1" => Some(Multiplicity::One),
            "many" | "n" | "*" => Some(Multiplicity::Many),
            _ => None,
        }
    }
}

/// A concept (OWL class) of the domain ontology.
#[derive(Debug, Clone)]
pub struct Concept {
    pub name: String,
    /// Business-vocabulary aliases (paper §2.1: the ontology "can be
    /// additionally enriched with the business level vocabulary").
    pub aliases: Vec<String>,
    /// Direct superclass in the taxonomy, if any.
    pub parent: Option<ConceptId>,
    /// Datatype properties declared on this concept (not inherited).
    pub properties: Vec<PropertyId>,
}

/// A datatype property of a concept.
#[derive(Debug, Clone)]
pub struct Property {
    pub name: String,
    pub aliases: Vec<String>,
    pub concept: ConceptId,
    pub datatype: DataType,
    /// Whether this property identifies instances of its concept (used to
    /// derive dimension keys and fact grain).
    pub identifier: bool,
}

/// An association (OWL object property) between two concepts, annotated with
/// the multiplicity of each end. `from_mult`/`to_mult` read as: *one instance
/// of `to` relates to `from_mult` instances of `from`*, and vice versa. E.g.
/// Lineitem→Orders has `from_mult = Many`, `to_mult = One`: many line items
/// per order, one order per line item.
#[derive(Debug, Clone)]
pub struct Association {
    pub name: String,
    pub from: ConceptId,
    pub to: ConceptId,
    pub from_mult: Multiplicity,
    pub to_mult: Multiplicity,
}

impl Association {
    /// True when traversing `from → to` is functional (each source instance
    /// maps to at most one target): the edge kind MD hierarchies and
    /// fact→dimension arcs are made of.
    pub fn is_functional(&self) -> bool {
        self.to_mult == Multiplicity::One
    }

    /// True when traversing `to → from` is functional.
    pub fn is_inverse_functional(&self) -> bool {
        self.from_mult == Multiplicity::One
    }
}

/// Errors raised while constructing or querying an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    DuplicateConcept(String),
    DuplicateProperty { concept: String, property: String },
    UnknownConcept(String),
    UnknownProperty { concept: String, property: String },
    UnknownTerm(String),
    AmbiguousTerm { term: String, candidates: Vec<String> },
    TaxonomyCycle(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::DuplicateConcept(n) => write!(f, "duplicate concept `{n}`"),
            OntologyError::DuplicateProperty { concept, property } => {
                write!(f, "duplicate property `{property}` on concept `{concept}`")
            }
            OntologyError::UnknownConcept(n) => write!(f, "unknown concept `{n}`"),
            OntologyError::UnknownProperty { concept, property } => {
                write!(f, "unknown property `{property}` on concept `{concept}`")
            }
            OntologyError::UnknownTerm(t) => write!(f, "term `{t}` matches no concept or property"),
            OntologyError::AmbiguousTerm { term, candidates } => {
                write!(f, "term `{term}` is ambiguous: {}", candidates.join(", "))
            }
            OntologyError::TaxonomyCycle(n) => write!(f, "taxonomy cycle through concept `{n}`"),
        }
    }
}

impl std::error::Error for OntologyError {}

/// A resolved vocabulary term: either a concept or a property of one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    Concept(ConceptId),
    Property(PropertyId),
}

/// The domain ontology: arenas of concepts, properties and associations plus
/// name/alias lookup tables.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    pub(crate) concepts: Vec<Concept>,
    pub(crate) properties: Vec<Property>,
    pub(crate) associations: Vec<Association>,
    concept_by_name: HashMap<String, ConceptId>,
    /// alias (lowercased) → candidate terms; used by the Elicitor's
    /// vocabulary resolution.
    vocabulary: HashMap<String, Vec<Term>>,
}

impl Ontology {
    pub fn new() -> Self {
        Ontology::default()
    }

    // ---- construction -----------------------------------------------------

    /// Adds a concept. Names must be unique.
    pub fn add_concept(&mut self, name: impl Into<String>) -> Result<ConceptId, OntologyError> {
        let name = name.into();
        if self.concept_by_name.contains_key(&name) {
            return Err(OntologyError::DuplicateConcept(name));
        }
        let id = ConceptId(self.concepts.len() as u32);
        self.concept_by_name.insert(name.clone(), id);
        self.vocabulary.entry(name.to_lowercase()).or_default().push(Term::Concept(id));
        self.concepts.push(Concept { name, aliases: Vec::new(), parent: None, properties: Vec::new() });
        Ok(id)
    }

    /// Adds a datatype property to a concept. Property names are unique per
    /// concept (including inherited ones is not enforced — TPC-H style
    /// prefixed names make clashes impossible in practice).
    pub fn add_property(
        &mut self,
        concept: ConceptId,
        name: impl Into<String>,
        datatype: DataType,
    ) -> Result<PropertyId, OntologyError> {
        self.add_property_full(concept, name, datatype, false)
    }

    /// Adds an identifying datatype property (dimension/fact key candidate).
    pub fn add_identifier(
        &mut self,
        concept: ConceptId,
        name: impl Into<String>,
        datatype: DataType,
    ) -> Result<PropertyId, OntologyError> {
        self.add_property_full(concept, name, datatype, true)
    }

    fn add_property_full(
        &mut self,
        concept: ConceptId,
        name: impl Into<String>,
        datatype: DataType,
        identifier: bool,
    ) -> Result<PropertyId, OntologyError> {
        let name = name.into();
        if self.property(concept, &name).is_some() {
            return Err(OntologyError::DuplicateProperty {
                concept: self.concept(concept).name.clone(),
                property: name,
            });
        }
        let id = PropertyId(self.properties.len() as u32);
        self.vocabulary.entry(name.to_lowercase()).or_default().push(Term::Property(id));
        self.properties.push(Property { name, aliases: Vec::new(), concept, datatype, identifier });
        self.concepts[concept.0 as usize].properties.push(id);
        Ok(id)
    }

    /// Adds an association between two concepts.
    pub fn add_association(
        &mut self,
        name: impl Into<String>,
        from: ConceptId,
        from_mult: Multiplicity,
        to: ConceptId,
        to_mult: Multiplicity,
    ) -> AssociationId {
        let id = AssociationId(self.associations.len() as u32);
        self.associations.push(Association { name: name.into(), from, to, from_mult, to_mult });
        id
    }

    /// Convenience: a many-to-one association (`from` side Many, `to` side
    /// One), the FK-like edge that dominates source schemas.
    pub fn add_many_to_one(&mut self, name: impl Into<String>, from: ConceptId, to: ConceptId) -> AssociationId {
        self.add_association(name, from, Multiplicity::Many, to, Multiplicity::One)
    }

    /// Declares `child` a subclass of `parent`.
    pub fn set_parent(&mut self, child: ConceptId, parent: ConceptId) -> Result<(), OntologyError> {
        // Reject cycles by walking up from `parent`.
        let mut cur = Some(parent);
        while let Some(c) = cur {
            if c == child {
                return Err(OntologyError::TaxonomyCycle(self.concept(child).name.clone()));
            }
            cur = self.concept(c).parent;
        }
        self.concepts[child.0 as usize].parent = Some(parent);
        Ok(())
    }

    /// Registers a business-vocabulary alias for a concept.
    pub fn add_concept_alias(&mut self, concept: ConceptId, alias: impl Into<String>) {
        let alias = alias.into();
        self.vocabulary.entry(alias.to_lowercase()).or_default().push(Term::Concept(concept));
        self.concepts[concept.0 as usize].aliases.push(alias);
    }

    /// Registers a business-vocabulary alias for a property.
    pub fn add_property_alias(&mut self, property: PropertyId, alias: impl Into<String>) {
        let alias = alias.into();
        self.vocabulary.entry(alias.to_lowercase()).or_default().push(Term::Property(property));
        self.properties[property.0 as usize].aliases.push(alias);
    }

    // ---- access ------------------------------------------------------------

    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.0 as usize]
    }

    pub fn property_def(&self, id: PropertyId) -> &Property {
        &self.properties[id.0 as usize]
    }

    pub fn association(&self, id: AssociationId) -> &Association {
        &self.associations[id.0 as usize]
    }

    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    pub fn association_count(&self) -> usize {
        self.associations.len()
    }

    pub fn concept_ids(&self) -> impl Iterator<Item = ConceptId> {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    pub fn association_ids(&self) -> impl Iterator<Item = AssociationId> {
        (0..self.associations.len() as u32).map(AssociationId)
    }

    /// Looks a concept up by exact name.
    pub fn concept_by_name(&self, name: &str) -> Option<ConceptId> {
        self.concept_by_name.get(name).copied()
    }

    /// Looks a concept up by exact name, as a `Result`.
    pub fn require_concept(&self, name: &str) -> Result<ConceptId, OntologyError> {
        self.concept_by_name(name).ok_or_else(|| OntologyError::UnknownConcept(name.to_string()))
    }

    /// Finds a property by name on a concept, searching up the taxonomy.
    pub fn property(&self, concept: ConceptId, name: &str) -> Option<PropertyId> {
        let mut cur = Some(concept);
        while let Some(c) = cur {
            for &pid in &self.concept(c).properties {
                if self.property_def(pid).name == name {
                    return Some(pid);
                }
            }
            cur = self.concept(c).parent;
        }
        None
    }

    /// Finds a property by name on a concept, as a `Result`.
    pub fn require_property(&self, concept: ConceptId, name: &str) -> Result<PropertyId, OntologyError> {
        self.property(concept, name).ok_or_else(|| OntologyError::UnknownProperty {
            concept: self.concept(concept).name.clone(),
            property: name.to_string(),
        })
    }

    /// All properties visible on a concept, inherited ones included.
    pub fn all_properties(&self, concept: ConceptId) -> Vec<PropertyId> {
        let mut out = Vec::new();
        let mut cur = Some(concept);
        while let Some(c) = cur {
            out.extend(self.concept(c).properties.iter().copied());
            cur = self.concept(c).parent;
        }
        out
    }

    /// Resolves a free-form vocabulary term (name or business alias,
    /// case-insensitive) to a unique concept or property.
    pub fn resolve_term(&self, term: &str) -> Result<Term, OntologyError> {
        let key = term.to_lowercase();
        match self.vocabulary.get(&key) {
            None => Err(OntologyError::UnknownTerm(term.to_string())),
            Some(candidates) if candidates.len() == 1 => Ok(candidates[0]),
            Some(candidates) => {
                let mut names: Vec<String> = candidates
                    .iter()
                    .map(|t| match t {
                        Term::Concept(c) => format!("concept {}", self.concept(*c).name),
                        Term::Property(p) => {
                            let prop = self.property_def(*p);
                            format!("property {}.{}", self.concept(prop.concept).name, prop.name)
                        }
                    })
                    .collect();
                names.sort();
                names.dedup();
                if names.len() == 1 {
                    return Ok(candidates[0]);
                }
                Err(OntologyError::AmbiguousTerm { term: term.to_string(), candidates: names })
            }
        }
    }

    /// Parses a qualified concept-property reference in either Quarry's
    /// internal id scheme from the paper's Figure 4 (`Part_p_nameATRIBUT`)
    /// or dotted form (`Part.p_name`).
    pub fn resolve_property_ref(&self, reference: &str) -> Result<PropertyId, OntologyError> {
        let body = reference.strip_suffix("ATRIBUT").unwrap_or(reference);
        if let Some((concept, prop)) = body.split_once('.') {
            let cid = self.require_concept(concept)?;
            return self.require_property(cid, prop);
        }
        // `Concept_property` — concept names may not contain `_`, property
        // names may. Split at every `_` until a known concept is found.
        for (idx, _) in body.match_indices('_') {
            let (concept, prop) = (&body[..idx], &body[idx + 1..]);
            if let Some(cid) = self.concept_by_name(concept) {
                if let Some(pid) = self.property(cid, prop) {
                    return Ok(pid);
                }
            }
        }
        Err(OntologyError::UnknownTerm(reference.to_string()))
    }

    /// The canonical Figure-4-style identifier of a property:
    /// `Concept_propertyATRIBUT`.
    pub fn property_ref(&self, id: PropertyId) -> String {
        let p = self.property_def(id);
        format!("{}_{}ATRIBUT", self.concept(p.concept).name, p.name)
    }

    /// The dotted human-readable form `Concept.property`.
    pub fn property_qualified_name(&self, id: PropertyId) -> String {
        let p = self.property_def(id);
        format!("{}.{}", self.concept(p.concept).name, p.name)
    }

    /// The identifying properties of a concept (inherited included).
    pub fn identifiers(&self, concept: ConceptId) -> Vec<PropertyId> {
        self.all_properties(concept).into_iter().filter(|&p| self.property_def(p).identifier).collect()
    }

    /// True if `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass_of(&self, sub: ConceptId, sup: ConceptId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.concept(c).parent;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> (Ontology, ConceptId, ConceptId) {
        let mut o = Ontology::new();
        let li = o.add_concept("Lineitem").unwrap();
        let pa = o.add_concept("Part").unwrap();
        o.add_identifier(pa, "p_partkey", DataType::Integer).unwrap();
        o.add_property(pa, "p_name", DataType::String).unwrap();
        o.add_property(li, "l_extendedprice", DataType::Decimal).unwrap();
        o.add_many_to_one("has_part", li, pa);
        (o, li, pa)
    }

    #[test]
    fn duplicate_concept_is_rejected() {
        let mut o = Ontology::new();
        o.add_concept("Part").unwrap();
        assert_eq!(o.add_concept("Part").unwrap_err(), OntologyError::DuplicateConcept("Part".into()));
    }

    #[test]
    fn duplicate_property_on_same_concept_is_rejected() {
        let (mut o, _, pa) = mini();
        let err = o.add_property(pa, "p_name", DataType::String).unwrap_err();
        assert!(matches!(err, OntologyError::DuplicateProperty { .. }));
    }

    #[test]
    fn property_lookup_searches_taxonomy() {
        let mut o = Ontology::new();
        let base = o.add_concept("Party").unwrap();
        o.add_property(base, "name", DataType::String).unwrap();
        let cust = o.add_concept("Customer").unwrap();
        o.set_parent(cust, base).unwrap();
        assert!(o.property(cust, "name").is_some());
        assert_eq!(o.all_properties(cust).len(), 1);
    }

    #[test]
    fn taxonomy_cycles_are_rejected() {
        let mut o = Ontology::new();
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        o.set_parent(b, a).unwrap();
        assert!(matches!(o.set_parent(a, b), Err(OntologyError::TaxonomyCycle(_))));
    }

    #[test]
    fn resolve_term_by_name_and_alias() {
        let (mut o, li, _) = mini();
        o.add_concept_alias(li, "sales line");
        assert_eq!(o.resolve_term("Lineitem").unwrap(), Term::Concept(li));
        assert_eq!(o.resolve_term("SALES LINE").unwrap(), Term::Concept(li));
        assert!(matches!(o.resolve_term("nonsense"), Err(OntologyError::UnknownTerm(_))));
    }

    #[test]
    fn ambiguous_alias_reports_candidates() {
        let (mut o, li, pa) = mini();
        o.add_concept_alias(li, "item");
        o.add_concept_alias(pa, "item");
        match o.resolve_term("item") {
            Err(OntologyError::AmbiguousTerm { candidates, .. }) => assert_eq!(candidates.len(), 2),
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn same_term_registered_twice_for_one_target_is_not_ambiguous() {
        let (mut o, li, _) = mini();
        o.add_concept_alias(li, "lineitem"); // alias equal to its own name
        assert_eq!(o.resolve_term("lineitem").unwrap(), Term::Concept(li));
    }

    #[test]
    fn property_ref_roundtrip_figure4_scheme() {
        let (o, _, pa) = mini();
        let pname = o.property(pa, "p_name").unwrap();
        let r = o.property_ref(pname);
        assert_eq!(r, "Part_p_nameATRIBUT");
        assert_eq!(o.resolve_property_ref(&r).unwrap(), pname);
        assert_eq!(o.resolve_property_ref("Part.p_name").unwrap(), pname);
    }

    #[test]
    fn property_ref_with_underscored_property_name() {
        let (o, li, _) = mini();
        let p = o.property(li, "l_extendedprice").unwrap();
        assert_eq!(o.resolve_property_ref("Lineitem_l_extendedpriceATRIBUT").unwrap(), p);
    }

    #[test]
    fn unknown_property_ref_errors() {
        let (o, _, _) = mini();
        assert!(o.resolve_property_ref("Part_bogusATRIBUT").is_err());
        assert!(o.resolve_property_ref("NoConcept.x").is_err());
    }

    #[test]
    fn functional_direction_of_associations() {
        let (o, _, _) = mini();
        let a = o.association(AssociationId(0));
        assert!(a.is_functional());
        assert!(!a.is_inverse_functional());
    }

    #[test]
    fn identifiers_are_tracked() {
        let (o, _, pa) = mini();
        let ids = o.identifiers(pa);
        assert_eq!(ids.len(), 1);
        assert_eq!(o.property_def(ids[0]).name, "p_partkey");
    }

    #[test]
    fn subclass_check() {
        let mut o = Ontology::new();
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        let c = o.add_concept("C").unwrap();
        o.set_parent(b, a).unwrap();
        o.set_parent(c, b).unwrap();
        assert!(o.is_subclass_of(c, a));
        assert!(!o.is_subclass_of(a, c));
    }
}
