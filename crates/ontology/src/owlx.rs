//! An OWL-subset XML serialization for domain ontologies.
//!
//! The original Quarry stores domain ontologies as OWL documents handled via
//! Apache Jena. Quarry only ever consumes the structural fragment — classes,
//! datatype properties, subclass axioms, and object properties with
//! cardinalities — so this module defines a compact XML dialect carrying
//! exactly that fragment:
//!
//! ```xml
//! <Ontology name="tpch">
//!   <Class name="Part">
//!     <DatatypeProperty name="p_partkey" type="integer" identifier="true"/>
//!     <DatatypeProperty name="p_name" type="string"/>
//!     <Label>product</Label>
//!   </Class>
//!   <Class name="Lineitem">...</Class>
//!   <SubClassOf sub="Customer" sup="Party"/>
//!   <ObjectProperty name="lineitem_of_part" from="Lineitem" to="Part"
//!                   fromCard="many" toCard="one"/>
//! </Ontology>
//! ```

use crate::model::{DataType, Multiplicity, Ontology};
use quarry_xml::Element;
use std::fmt;

/// Errors raised while loading an ontology document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwlxError {
    Xml(quarry_xml::ParseError),
    Structure(String),
}

impl fmt::Display for OwlxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwlxError::Xml(e) => write!(f, "{e}"),
            OwlxError::Structure(msg) => write!(f, "malformed ontology document: {msg}"),
        }
    }
}

impl std::error::Error for OwlxError {}

impl From<quarry_xml::ParseError> for OwlxError {
    fn from(e: quarry_xml::ParseError) -> Self {
        OwlxError::Xml(e)
    }
}

fn structure(msg: impl Into<String>) -> OwlxError {
    OwlxError::Structure(msg.into())
}

/// Serializes an ontology to the OWL-subset XML dialect.
pub fn to_xml(onto: &Ontology) -> Element {
    let mut root = Element::new("Ontology");
    for cid in onto.concept_ids() {
        let c = onto.concept(cid);
        let mut class = Element::new("Class").with_attr("name", &c.name);
        for &pid in &c.properties {
            let p = onto.property_def(pid);
            let mut prop =
                Element::new("DatatypeProperty").with_attr("name", &p.name).with_attr("type", p.datatype.as_str());
            if p.identifier {
                prop.set_attr("identifier", "true");
            }
            for alias in &p.aliases {
                prop.push_child(Element::new("Label").with_text(alias));
            }
            class.push_child(prop);
        }
        for alias in &c.aliases {
            class.push_child(Element::new("Label").with_text(alias));
        }
        root.push_child(class);
    }
    for cid in onto.concept_ids() {
        if let Some(parent) = onto.concept(cid).parent {
            root.push_child(
                Element::new("SubClassOf")
                    .with_attr("sub", &onto.concept(cid).name)
                    .with_attr("sup", &onto.concept(parent).name),
            );
        }
    }
    for aid in onto.association_ids() {
        let a = onto.association(aid);
        root.push_child(
            Element::new("ObjectProperty")
                .with_attr("name", &a.name)
                .with_attr("from", &onto.concept(a.from).name)
                .with_attr("to", &onto.concept(a.to).name)
                .with_attr("fromCard", a.from_mult.as_str())
                .with_attr("toCard", a.to_mult.as_str()),
        );
    }
    root
}

/// Serializes an ontology to an XML string.
pub fn to_string(onto: &Ontology) -> String {
    to_xml(onto).to_pretty_string()
}

/// Loads an ontology from a parsed OWL-subset document.
pub fn from_xml(root: &Element) -> Result<Ontology, OwlxError> {
    if root.name != "Ontology" {
        return Err(structure(format!("expected <Ontology>, found <{}>", root.name)));
    }
    let mut onto = Ontology::new();
    for class in root.children_named("Class") {
        let name = class.attr("name").ok_or_else(|| structure("<Class> missing name"))?;
        let cid = onto.add_concept(name).map_err(|e| structure(e.to_string()))?;
        for prop in class.children_named("DatatypeProperty") {
            let pname = prop.attr("name").ok_or_else(|| structure("<DatatypeProperty> missing name"))?;
            let dt = prop
                .attr("type")
                .and_then(DataType::parse)
                .ok_or_else(|| structure(format!("property `{pname}` has no valid type")))?;
            let pid = if prop.attr("identifier") == Some("true") {
                onto.add_identifier(cid, pname, dt)
            } else {
                onto.add_property(cid, pname, dt)
            }
            .map_err(|e| structure(e.to_string()))?;
            for label in prop.children_named("Label") {
                if let Some(text) = label.text() {
                    onto.add_property_alias(pid, text);
                }
            }
        }
        for label in class.children_named("Label") {
            if let Some(text) = label.text() {
                onto.add_concept_alias(cid, text);
            }
        }
    }
    for sub in root.children_named("SubClassOf") {
        let child = sub.attr("sub").ok_or_else(|| structure("<SubClassOf> missing sub"))?;
        let parent = sub.attr("sup").ok_or_else(|| structure("<SubClassOf> missing sup"))?;
        let child_id = onto.require_concept(child).map_err(|e| structure(e.to_string()))?;
        let parent_id = onto.require_concept(parent).map_err(|e| structure(e.to_string()))?;
        onto.set_parent(child_id, parent_id).map_err(|e| structure(e.to_string()))?;
    }
    for obj in root.children_named("ObjectProperty") {
        let name = obj.attr("name").ok_or_else(|| structure("<ObjectProperty> missing name"))?;
        let from = obj.attr("from").ok_or_else(|| structure("<ObjectProperty> missing from"))?;
        let to = obj.attr("to").ok_or_else(|| structure("<ObjectProperty> missing to"))?;
        let from_id = onto.require_concept(from).map_err(|e| structure(e.to_string()))?;
        let to_id = onto.require_concept(to).map_err(|e| structure(e.to_string()))?;
        let from_mult = obj
            .attr("fromCard")
            .and_then(Multiplicity::parse)
            .ok_or_else(|| structure(format!("object property `{name}` has no valid fromCard")))?;
        let to_mult = obj
            .attr("toCard")
            .and_then(Multiplicity::parse)
            .ok_or_else(|| structure(format!("object property `{name}` has no valid toCard")))?;
        onto.add_association(name, from_id, from_mult, to_id, to_mult);
    }
    Ok(onto)
}

/// Parses an ontology from an XML string.
pub fn from_string(xml: &str) -> Result<Ontology, OwlxError> {
    from_xml(&quarry_xml::parse(xml)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch;

    #[test]
    fn tpch_roundtrips_through_owlx() {
        let original = tpch::domain().ontology;
        let xml = to_string(&original);
        let loaded = from_string(&xml).unwrap();
        assert_eq!(loaded.concept_count(), original.concept_count());
        assert_eq!(loaded.association_count(), original.association_count());
        // Spot-check structure equivalence.
        let li = loaded.concept_by_name("Lineitem").unwrap();
        assert_eq!(loaded.all_properties(li).len(), 14);
        assert!(loaded.resolve_property_ref("Part_p_nameATRIBUT").is_ok());
        assert!(loaded.resolve_term("product").is_ok(), "vocabulary must survive");
        // Cardinalities survive: Lineitem functionally reaches Region.
        let region = loaded.concept_by_name("Region").unwrap();
        assert!(loaded.functional_path(li, region).is_some());
    }

    #[test]
    fn subclass_axioms_roundtrip() {
        let mut o = Ontology::new();
        let party = o.add_concept("Party").unwrap();
        o.add_property(party, "name", DataType::String).unwrap();
        let cust = o.add_concept("Customer").unwrap();
        o.set_parent(cust, party).unwrap();
        let loaded = from_string(&to_string(&o)).unwrap();
        let lc = loaded.concept_by_name("Customer").unwrap();
        let lp = loaded.concept_by_name("Party").unwrap();
        assert!(loaded.is_subclass_of(lc, lp));
        assert!(loaded.property(lc, "name").is_some(), "inherited property visible after reload");
    }

    #[test]
    fn property_aliases_roundtrip() {
        let mut o = Ontology::new();
        let c = o.add_concept("Lineitem").unwrap();
        let p = o.add_property(c, "l_discount", DataType::Decimal).unwrap();
        o.add_property_alias(p, "discount rate");
        let loaded = from_string(&to_string(&o)).unwrap();
        assert!(loaded.resolve_term("discount rate").is_ok());
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(matches!(from_string("<NotOntology/>"), Err(OwlxError::Structure(_))));
    }

    #[test]
    fn rejects_missing_type() {
        let xml = r#"<Ontology><Class name="A"><DatatypeProperty name="x"/></Class></Ontology>"#;
        assert!(matches!(from_string(xml), Err(OwlxError::Structure(_))));
    }

    #[test]
    fn rejects_unknown_association_endpoint() {
        let xml = r#"<Ontology><Class name="A"/><ObjectProperty name="r" from="A" to="B" fromCard="many" toCard="one"/></Ontology>"#;
        assert!(from_string(xml).is_err());
    }

    #[test]
    fn rejects_invalid_xml() {
        assert!(matches!(from_string("<Ontology><Class"), Err(OwlxError::Xml(_))));
    }

    use crate::model::DataType;
}
