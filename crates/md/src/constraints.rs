//! MD integrity constraint checking.
//!
//! Quarry promises that "for each new, changed, or removed requirement, an
//! updated DW design must go through a series of validation processes to
//! guarantee … the soundness of the updated design solutions (i.e., meeting
//! MD integrity constraints [9])". This module is that validator: it returns
//! *all* violations found, never just the first, so the caller can present a
//! complete report.

use crate::model::{Dimension, MdSchema};
use std::collections::BTreeSet;
use std::fmt;

/// The category of an MD integrity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two facts/dimensions share a name, or two levels within a dimension.
    DuplicateName,
    /// A fact references a dimension or level that does not exist.
    DanglingLink,
    /// A fact has no dimension links (no analytical context).
    FactWithoutDimensions,
    /// A fact has no measures (degenerate; reported as a violation because
    /// Quarry's requirements always carry at least one measure).
    FactWithoutMeasures,
    /// A roll-up edge references a missing level.
    DanglingRollup,
    /// The hierarchy graph of a dimension has a cycle.
    HierarchyCycle,
    /// A level is not reachable from the atomic level (disconnected).
    UnreachableLevel,
    /// A non-strict roll-up edge (child with multiple parents in the data).
    NonStrictRollup,
    /// A non-total (non-covering) roll-up edge.
    NonTotalRollup,
    /// A measure's default aggregation is incompatible with its additivity
    /// along one of the fact's dimensions.
    NonSummarizableAggregation,
    /// The atomic level declared by a dimension is missing.
    MissingAtomicLevel,
}

impl ViolationKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::DuplicateName => "duplicate-name",
            ViolationKind::DanglingLink => "dangling-link",
            ViolationKind::FactWithoutDimensions => "fact-without-dimensions",
            ViolationKind::FactWithoutMeasures => "fact-without-measures",
            ViolationKind::DanglingRollup => "dangling-rollup",
            ViolationKind::HierarchyCycle => "hierarchy-cycle",
            ViolationKind::UnreachableLevel => "unreachable-level",
            ViolationKind::NonStrictRollup => "non-strict-rollup",
            ViolationKind::NonTotalRollup => "non-total-rollup",
            ViolationKind::NonSummarizableAggregation => "non-summarizable-aggregation",
            ViolationKind::MissingAtomicLevel => "missing-atomic-level",
        }
    }

    /// Non-strict and non-total hierarchies are warnings in Quarry (the
    /// design is deployable but some aggregates need care); the rest are
    /// hard errors.
    pub fn is_error(self) -> bool {
        !matches!(self, ViolationKind::NonStrictRollup | ViolationKind::NonTotalRollup)
    }
}

/// One violation of the MD integrity constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdViolation {
    pub kind: ViolationKind,
    /// The schema element the violation concerns, e.g. `fact_table_revenue`
    /// or `Part/Brand`.
    pub element: String,
    pub detail: String,
}

impl fmt::Display for MdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind.as_str(), self.element, self.detail)
    }
}

fn violation(kind: ViolationKind, element: impl Into<String>, detail: impl Into<String>) -> MdViolation {
    MdViolation { kind, element: element.into(), detail: detail.into() }
}

impl MdSchema {
    /// Checks every MD integrity constraint and returns all violations.
    /// An empty result means the schema is MD-compliant.
    pub fn validate(&self) -> Vec<MdViolation> {
        let mut out = Vec::new();
        self.check_unique_names(&mut out);
        for dim in &self.dimensions {
            check_dimension(dim, &mut out);
        }
        self.check_facts(&mut out);
        out
    }

    /// True when [`MdSchema::validate`] reports no hard errors (warnings,
    /// such as non-strict hierarchies, are allowed).
    pub fn is_sound(&self) -> bool {
        self.validate().iter().all(|v| !v.kind.is_error())
    }

    fn check_unique_names(&self, out: &mut Vec<MdViolation>) {
        let mut seen = BTreeSet::new();
        for f in &self.facts {
            if !seen.insert(&f.name) {
                out.push(violation(ViolationKind::DuplicateName, &f.name, "fact name used more than once"));
            }
        }
        let mut seen = BTreeSet::new();
        for d in &self.dimensions {
            if !seen.insert(&d.name) {
                out.push(violation(ViolationKind::DuplicateName, &d.name, "dimension name used more than once"));
            }
        }
        for d in &self.dimensions {
            let mut levels = BTreeSet::new();
            for l in &d.levels {
                if !levels.insert(&l.name) {
                    out.push(violation(
                        ViolationKind::DuplicateName,
                        format!("{}/{}", d.name, l.name),
                        "level name used more than once in the dimension",
                    ));
                }
            }
        }
        for f in &self.facts {
            let mut measures = BTreeSet::new();
            for m in &f.measures {
                if !measures.insert(&m.name) {
                    out.push(violation(
                        ViolationKind::DuplicateName,
                        format!("{}/{}", f.name, m.name),
                        "measure name used more than once in the fact",
                    ));
                }
            }
        }
    }

    fn check_facts(&self, out: &mut Vec<MdViolation>) {
        for f in &self.facts {
            if f.dimensions.is_empty() {
                out.push(violation(
                    ViolationKind::FactWithoutDimensions,
                    &f.name,
                    "a fact must have at least one analysis dimension",
                ));
            }
            if f.measures.is_empty() {
                out.push(violation(
                    ViolationKind::FactWithoutMeasures,
                    &f.name,
                    "a fact must carry at least one measure",
                ));
            }
            for link in &f.dimensions {
                match self.dimension(&link.dimension) {
                    None => out.push(violation(
                        ViolationKind::DanglingLink,
                        &f.name,
                        format!("links unknown dimension `{}`", link.dimension),
                    )),
                    Some(d) => {
                        if d.level(&link.level).is_none() {
                            out.push(violation(
                                ViolationKind::DanglingLink,
                                &f.name,
                                format!("links unknown level `{}` of dimension `{}`", link.level, link.dimension),
                            ));
                        }
                        // Summarizability of each measure along this dim.
                        for m in &f.measures {
                            if !m.additivity.allows(m.default_agg, d.temporal) {
                                out.push(violation(
                                    ViolationKind::NonSummarizableAggregation,
                                    format!("{}/{}", f.name, m.name),
                                    format!(
                                        "{} of a {} measure along {}dimension `{}`",
                                        m.default_agg,
                                        m.additivity.as_str(),
                                        if d.temporal { "temporal " } else { "" },
                                        d.name
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

fn check_dimension(dim: &Dimension, out: &mut Vec<MdViolation>) {
    if dim.level(&dim.atomic).is_none() {
        out.push(violation(
            ViolationKind::MissingAtomicLevel,
            &dim.name,
            format!("atomic level `{}` is not among the dimension's levels", dim.atomic),
        ));
        return; // reachability analysis is meaningless without the root
    }
    for r in &dim.rollups {
        for end in [&r.child, &r.parent] {
            if dim.level(end).is_none() {
                out.push(violation(
                    ViolationKind::DanglingRollup,
                    format!("{}/{}→{}", dim.name, r.child, r.parent),
                    format!("level `{end}` does not exist"),
                ));
            }
        }
        if !r.strict {
            out.push(violation(
                ViolationKind::NonStrictRollup,
                format!("{}/{}→{}", dim.name, r.child, r.parent),
                "child members may have multiple parents; aggregates along this edge may double-count",
            ));
        }
        if !r.total {
            out.push(violation(
                ViolationKind::NonTotalRollup,
                format!("{}/{}→{}", dim.name, r.child, r.parent),
                "some child members have no parent; aggregates along this edge may lose data",
            ));
        }
    }
    // Cycle detection: DFS from every level over child→parent edges.
    for start in &dim.levels {
        let mut path: Vec<&str> = Vec::new();
        if has_cycle(dim, &start.name, &mut path) {
            out.push(violation(
                ViolationKind::HierarchyCycle,
                format!("{}/{}", dim.name, start.name),
                "roll-up edges form a cycle",
            ));
            break; // one report per dimension is enough
        }
    }
    // Reachability from the atomic level.
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![dim.atomic.as_str()];
    while let Some(cur) = stack.pop() {
        if reachable.insert(cur) {
            stack.extend(dim.parents_of(cur));
        }
    }
    for l in &dim.levels {
        if !reachable.contains(l.name.as_str()) {
            out.push(violation(
                ViolationKind::UnreachableLevel,
                format!("{}/{}", dim.name, l.name),
                "level is not reachable from the atomic level by roll-up edges",
            ));
        }
    }
}

fn has_cycle<'a>(dim: &'a Dimension, level: &'a str, path: &mut Vec<&'a str>) -> bool {
    if path.contains(&level) {
        return true;
    }
    path.push(level);
    for p in dim.parents_of(level) {
        if has_cycle(dim, p, path) {
            return true;
        }
    }
    path.pop();
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Additivity, AggFn, Attribute, DimLink, Fact, Level, MdDataType, MdSchema, Measure, Rollup};

    fn valid_schema() -> MdSchema {
        let mut s = MdSchema::new("demo");
        let atomic = Level::new("Part", "p_partkey", MdDataType::Integer)
            .with_attribute(Attribute::new("p_name", MdDataType::Text));
        let mut dim = crate::model::Dimension::new("Part", atomic);
        dim.add_level_above("Part", Level::new("Brand", "p_brand", MdDataType::Text));
        s.dimensions.push(dim);
        let mut f = Fact::new("fact_table_revenue");
        f.measures.push(Measure::new("revenue", "x"));
        f.dimensions.push(DimLink::new("Part", "Part"));
        s.facts.push(f);
        s
    }

    #[test]
    fn valid_schema_has_no_violations() {
        assert!(valid_schema().validate().is_empty());
        assert!(valid_schema().is_sound());
    }

    #[test]
    fn duplicate_fact_names_detected() {
        let mut s = valid_schema();
        let mut f2 = Fact::new("fact_table_revenue");
        f2.measures.push(Measure::new("m", "x"));
        f2.dimensions.push(DimLink::new("Part", "Part"));
        s.facts.push(f2);
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::DuplicateName));
    }

    #[test]
    fn duplicate_level_names_detected() {
        let mut s = valid_schema();
        s.dimension_mut("Part").unwrap().levels.push(Level::new("Brand", "x", MdDataType::Text));
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::DuplicateName));
    }

    #[test]
    fn dangling_dimension_link_detected() {
        let mut s = valid_schema();
        s.facts[0].dimensions.push(DimLink::new("Nope", "Nope"));
        let vs = s.validate();
        assert!(vs.iter().any(|v| v.kind == ViolationKind::DanglingLink), "{vs:?}");
        assert!(!s.is_sound());
    }

    #[test]
    fn dangling_level_link_detected() {
        let mut s = valid_schema();
        s.facts[0].dimensions[0].level = "Ghost".into();
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::DanglingLink));
    }

    #[test]
    fn fact_without_dimensions_detected() {
        let mut s = valid_schema();
        s.facts[0].dimensions.clear();
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::FactWithoutDimensions));
    }

    #[test]
    fn fact_without_measures_detected() {
        let mut s = valid_schema();
        s.facts[0].measures.clear();
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::FactWithoutMeasures));
    }

    #[test]
    fn hierarchy_cycle_detected() {
        let mut s = valid_schema();
        s.dimension_mut("Part").unwrap().rollups.push(Rollup::new("Brand", "Part"));
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::HierarchyCycle));
    }

    #[test]
    fn unreachable_level_detected() {
        let mut s = valid_schema();
        s.dimension_mut("Part").unwrap().levels.push(Level::new("Island", "i", MdDataType::Text));
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::UnreachableLevel));
    }

    #[test]
    fn dangling_rollup_detected() {
        let mut s = valid_schema();
        s.dimension_mut("Part").unwrap().rollups.push(Rollup::new("Brand", "Ghost"));
        let vs = s.validate();
        assert!(vs.iter().any(|v| v.kind == ViolationKind::DanglingRollup));
    }

    #[test]
    fn missing_atomic_level_detected() {
        let mut s = valid_schema();
        s.dimension_mut("Part").unwrap().atomic = "Ghost".into();
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::MissingAtomicLevel));
    }

    #[test]
    fn non_strict_rollup_is_a_warning_not_an_error() {
        let mut s = valid_schema();
        s.dimension_mut("Part").unwrap().rollups[0].strict = false;
        let vs = s.validate();
        assert!(vs.iter().any(|v| v.kind == ViolationKind::NonStrictRollup));
        assert!(s.is_sound(), "warnings do not make the schema unsound");
    }

    #[test]
    fn non_total_rollup_is_a_warning() {
        let mut s = valid_schema();
        s.dimension_mut("Part").unwrap().rollups[0].total = false;
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::NonTotalRollup));
        assert!(s.is_sound());
    }

    #[test]
    fn sum_of_value_per_unit_measure_is_non_summarizable() {
        let mut s = valid_schema();
        s.facts[0].measures[0] =
            Measure::new("price", "p_retailprice").with_additivity(Additivity::ValuePerUnit).with_agg(AggFn::Sum);
        let vs = s.validate();
        assert!(vs.iter().any(|v| v.kind == ViolationKind::NonSummarizableAggregation), "{vs:?}");
        assert!(!s.is_sound());
    }

    #[test]
    fn sum_of_stock_measure_only_flags_temporal_dimensions() {
        let mut s = valid_schema();
        s.facts[0].measures[0] = Measure::new("balance", "b").with_additivity(Additivity::Stock).with_agg(AggFn::Sum);
        assert!(s.validate().is_empty(), "non-temporal dimension is fine");
        s.dimension_mut("Part").unwrap().temporal = true;
        assert!(s.validate().iter().any(|v| v.kind == ViolationKind::NonSummarizableAggregation));
    }

    #[test]
    fn violations_format_readably() {
        let mut s = valid_schema();
        s.facts[0].dimensions.clear();
        let v = &s.validate()[0];
        let text = v.to_string();
        assert!(text.contains("fact_table_revenue") && text.contains("fact-without-dimensions"), "{text}");
    }
}
