//! Naming conventions shared by the Requirements Interpreter (which builds
//! ETL flows feeding the star schema) and the Design Deployer (which emits
//! DDL for it). Centralized so the two can never drift apart.
//!
//! The conventions reproduce the paper's Figure 3 DDL:
//! `fact_table_revenue (Partsupp_PartsuppID BIGINT …, Orders_OrdersID …,
//! PRIMARY KEY(Partsupp_PartsuppID, Orders_OrdersID))`.

/// Fact table name for a head measure: `fact_table_revenue`.
pub fn fact_table(measure: &str) -> String {
    format!("fact_table_{measure}")
}

/// Dimension-internal key column: `PartsuppID`.
pub fn dim_key(dimension: &str) -> String {
    format!("{dimension}ID")
}

/// Fact-side foreign-key column referencing a dimension:
/// `Partsupp_PartsuppID`.
pub fn fact_fk(dimension: &str) -> String {
    format!("{dimension}_{dimension}ID")
}

/// Physical dimension table name: `dim_partsupp`.
pub fn dim_table(dimension: &str) -> String {
    format!("dim_{}", dimension.to_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_ddl_shapes() {
        assert_eq!(fact_table("revenue"), "fact_table_revenue");
        assert_eq!(fact_table("netprofit"), "fact_table_netprofit");
        assert_eq!(fact_fk("Partsupp"), "Partsupp_PartsuppID");
        assert_eq!(fact_fk("Orders"), "Orders_OrdersID");
        assert_eq!(dim_key("Partsupp"), "PartsuppID");
        assert_eq!(dim_table("Partsupp"), "dim_partsupp");
    }
}
