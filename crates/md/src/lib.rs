//! The multidimensional (MD) model underlying Quarry's DW designs.
//!
//! Quarry validates every information requirement and every integrated design
//! against *MD integrity constraints* (paper §1, citing the summarizability
//! survey of Mazón et al. \[9\]) and ranks design alternatives with
//! *cost models that capture different quality factors*, the demonstrated one
//! being **structural design complexity** (§2.3, §3).
//!
//! This crate provides:
//!
//! - the MD schema model — facts, measures with additivity classes,
//!   dimensions with level hierarchies ([`MdSchema`]);
//! - the constraint checker ([`MdSchema::validate`]) covering structural
//!   well-formedness, hierarchy strictness/covering, and
//!   aggregation-compatibility (summarizability);
//! - the pluggable cost-model interface ([`CostModel`]) with the paper's
//!   [`StructuralComplexity`] instance.
//!
//! Requirement traceability: every fact, measure, dimension, level and
//! fact–dimension link carries the set of requirement IDs it satisfies
//! (`satisfies`), which is what lets the lifecycle engine prune designs when
//! requirements are removed (paper §3, "requirements might be changed or even
//! removed from the analysis").

#![forbid(unsafe_code)]

mod complexity;
mod constraints;
pub mod diff;
mod model;
pub mod naming;

pub use complexity::{AdditiveCostModel, ComplexityWeights, CostModel, OpCountComplexity, StructuralComplexity};
pub use constraints::{MdViolation, ViolationKind};
pub use model::{
    Additivity, AggFn, Attribute, DimLink, Dimension, Fact, Level, MdDataType, MdSchema, Measure, ReqSet, Rollup,
};
