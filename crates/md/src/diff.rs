//! Structural diffing of MD schemata — what changed between two design
//! versions. The metadata repository keeps every unified-design version;
//! this is the lens the demo's "accommodating changes" scenario uses to
//! narrate a step ("IR4 added dimension Customer with 2 levels…").

use crate::model::MdSchema;
use std::fmt;

/// A structural delta between two MD schemata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MdDiff {
    pub added_facts: Vec<String>,
    pub removed_facts: Vec<String>,
    pub added_dimensions: Vec<String>,
    pub removed_dimensions: Vec<String>,
    /// (fact, measure)
    pub added_measures: Vec<(String, String)>,
    pub removed_measures: Vec<(String, String)>,
    /// (dimension, level)
    pub added_levels: Vec<(String, String)>,
    pub removed_levels: Vec<(String, String)>,
    /// (dimension, level, attribute)
    pub added_attributes: Vec<(String, String, String)>,
    pub removed_attributes: Vec<(String, String, String)>,
}

impl MdDiff {
    pub fn is_empty(&self) -> bool {
        self.added_facts.is_empty()
            && self.removed_facts.is_empty()
            && self.added_dimensions.is_empty()
            && self.removed_dimensions.is_empty()
            && self.added_measures.is_empty()
            && self.removed_measures.is_empty()
            && self.added_levels.is_empty()
            && self.removed_levels.is_empty()
            && self.added_attributes.is_empty()
            && self.removed_attributes.is_empty()
    }
}

impl fmt::Display for MdDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "no structural changes");
        }
        let mut line = |sign: char, what: &str, name: &str| writeln!(f, "{sign} {what} {name}");
        for x in &self.added_facts {
            line('+', "fact", x)?;
        }
        for x in &self.removed_facts {
            line('-', "fact", x)?;
        }
        for x in &self.added_dimensions {
            line('+', "dimension", x)?;
        }
        for x in &self.removed_dimensions {
            line('-', "dimension", x)?;
        }
        for (fact, m) in &self.added_measures {
            writeln!(f, "+ measure {fact}.{m}")?;
        }
        for (fact, m) in &self.removed_measures {
            writeln!(f, "- measure {fact}.{m}")?;
        }
        for (d, l) in &self.added_levels {
            writeln!(f, "+ level {d}/{l}")?;
        }
        for (d, l) in &self.removed_levels {
            writeln!(f, "- level {d}/{l}")?;
        }
        for (d, l, a) in &self.added_attributes {
            writeln!(f, "+ attribute {d}/{l}.{a}")?;
        }
        for (d, l, a) in &self.removed_attributes {
            writeln!(f, "- attribute {d}/{l}.{a}")?;
        }
        Ok(())
    }
}

/// Computes the structural delta from `old` to `new`. Element identity is by
/// name (the lifecycle keeps names stable; renames report as remove+add).
pub fn diff(old: &MdSchema, new: &MdSchema) -> MdDiff {
    let mut out = MdDiff::default();
    for nf in &new.facts {
        match old.fact(&nf.name) {
            None => out.added_facts.push(nf.name.clone()),
            Some(of) => {
                for m in &nf.measures {
                    if of.measure(&m.name).is_none() {
                        out.added_measures.push((nf.name.clone(), m.name.clone()));
                    }
                }
                for m in &of.measures {
                    if nf.measure(&m.name).is_none() {
                        out.removed_measures.push((nf.name.clone(), m.name.clone()));
                    }
                }
            }
        }
    }
    for of in &old.facts {
        if new.fact(&of.name).is_none() {
            out.removed_facts.push(of.name.clone());
        }
    }
    for nd in &new.dimensions {
        match old.dimension(&nd.name) {
            None => out.added_dimensions.push(nd.name.clone()),
            Some(od) => {
                for nl in &nd.levels {
                    match od.level(&nl.name) {
                        None => out.added_levels.push((nd.name.clone(), nl.name.clone())),
                        Some(ol) => {
                            for a in &nl.attributes {
                                if ol.attribute(&a.name).is_none() {
                                    out.added_attributes.push((nd.name.clone(), nl.name.clone(), a.name.clone()));
                                }
                            }
                            for a in &ol.attributes {
                                if nl.attribute(&a.name).is_none() {
                                    out.removed_attributes.push((nd.name.clone(), nl.name.clone(), a.name.clone()));
                                }
                            }
                        }
                    }
                }
                for ol in &od.levels {
                    if nd.level(&ol.name).is_none() {
                        out.removed_levels.push((nd.name.clone(), ol.name.clone()));
                    }
                }
            }
        }
    }
    for od in &old.dimensions {
        if new.dimension(&od.name).is_none() {
            out.removed_dimensions.push(od.name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, DimLink, Dimension, Fact, Level, MdDataType, Measure};

    fn base() -> MdSchema {
        let mut s = MdSchema::new("v1");
        let atomic = Level::new("Part", "PartID", MdDataType::Integer)
            .with_attribute(Attribute::new("p_name", MdDataType::Text));
        s.dimensions.push(Dimension::new("Part", atomic));
        let mut f = Fact::new("fact_revenue");
        f.measures.push(Measure::new("revenue", "x"));
        f.dimensions.push(DimLink::new("Part", "Part"));
        s.facts.push(f);
        s
    }

    #[test]
    fn identical_schemas_diff_empty() {
        let d = diff(&base(), &base());
        assert!(d.is_empty());
        assert_eq!(d.to_string(), "no structural changes\n");
    }

    #[test]
    fn added_elements_are_reported() {
        let old = base();
        let mut new = base();
        let mut f2 = Fact::new("fact_quantity");
        f2.measures.push(Measure::new("qty", "y"));
        new.facts.push(f2);
        new.facts[0].measures.push(Measure::new("tax", "z"));
        new.dimension_mut("Part").unwrap().add_level_above("Part", Level::new("Brand", "b", MdDataType::Text));
        new.dimension_mut("Part")
            .unwrap()
            .level_mut("Part")
            .unwrap()
            .attributes
            .push(Attribute::new("p_brand", MdDataType::Text));

        let d = diff(&old, &new);
        assert_eq!(d.added_facts, ["fact_quantity"]);
        assert_eq!(d.added_measures, [("fact_revenue".to_string(), "tax".to_string())]);
        assert_eq!(d.added_levels, [("Part".to_string(), "Brand".to_string())]);
        assert_eq!(d.added_attributes, [("Part".to_string(), "Part".to_string(), "p_brand".to_string())]);
        assert!(d.removed_facts.is_empty());
        let text = d.to_string();
        assert!(text.contains("+ fact fact_quantity"));
        assert!(text.contains("+ level Part/Brand"));
    }

    #[test]
    fn removed_elements_are_reported_symmetrically() {
        let old = base();
        let mut new = base();
        new.facts.clear();
        new.dimensions.clear();
        let d = diff(&old, &new);
        assert_eq!(d.removed_facts, ["fact_revenue"]);
        assert_eq!(d.removed_dimensions, ["Part"]);
        // And the reverse direction flips signs.
        let r = diff(&new, &old);
        assert_eq!(r.added_facts, ["fact_revenue"]);
        assert_eq!(r.added_dimensions, ["Part"]);
    }
}
