//! Cost models over MD schemata.
//!
//! The paper (§2.3) states that the MD Schema Integrator "produces the
//! optimal solution by applying cost models that capture different quality
//! factors (e.g., structural design complexity)", and the demo (§3) uses
//! *structural design complexity* as the example quality factor for output
//! MD schemata. Cost models are pluggable ("configurable"): the integrator
//! takes any [`CostModel`].

use crate::model::{Dimension, Fact, MdSchema};

/// A quality factor over MD schemata: lower is better.
pub trait CostModel {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// The cost of a schema under this model.
    fn cost(&self, schema: &MdSchema) -> f64;

    /// An additive decomposition of this model, when one exists. Models that
    /// decompose let the integrator score candidate schemas by *element
    /// deltas* instead of constructing and costing a full schema clone per
    /// alternative. The default (`None`) keeps whole-schema costing, so
    /// custom models work unchanged.
    fn decompose(&self) -> Option<&dyn AdditiveCostModel> {
        None
    }
}

/// Per-element view of a cost model that is a sum of independent fact and
/// dimension terms plus a term over the maximum hierarchy depth:
///
/// `cost(s) == Σ fact_cost(f) + Σ dimension_cost(d) + depth_term(max depth)`
///
/// The decomposition must hold exactly (the integrator compares summed
/// element costs against whole-schema costs across code paths), and element
/// costs must not depend on element *names* — the integrator may cost a
/// kept-separate element before its disambiguating rename.
pub trait AdditiveCostModel: Sync {
    fn fact_cost(&self, fact: &Fact) -> f64;
    fn dimension_cost(&self, dim: &Dimension) -> f64;
    /// The schema-wide term over the maximum hierarchy depth.
    fn depth_term(&self, max_depth: usize) -> f64;
}

/// Weights of the structural-complexity model. Defaults follow the intuition
/// of MD design-quality metrics (conceptual-model metric suites à la
/// Serrano et al.): tables dominate, attributes and edges refine.
#[derive(Debug, Clone, Copy)]
pub struct ComplexityWeights {
    pub per_fact: f64,
    pub per_dimension: f64,
    pub per_level: f64,
    pub per_attribute: f64,
    pub per_measure: f64,
    pub per_fact_dim_link: f64,
    pub per_rollup: f64,
    /// Multiplied by the *maximum* hierarchy depth of the schema.
    pub per_depth: f64,
}

impl Default for ComplexityWeights {
    fn default() -> Self {
        ComplexityWeights {
            per_fact: 10.0,
            per_dimension: 6.0,
            per_level: 3.0,
            per_attribute: 1.0,
            per_measure: 1.5,
            per_fact_dim_link: 2.0,
            per_rollup: 1.0,
            per_depth: 2.0,
        }
    }
}

/// The paper's demonstrated quality factor: a weighted count of the schema's
/// structural elements. Integrations that reuse conformed dimensions and
/// merge compatible facts score strictly lower than naive unions, which is
/// exactly the signal the MD Schema Integrator optimizes (experiment E6).
#[derive(Debug, Clone, Copy, Default)]
pub struct StructuralComplexity {
    pub weights: ComplexityWeights,
}

impl StructuralComplexity {
    pub fn new() -> Self {
        StructuralComplexity::default()
    }

    pub fn with_weights(weights: ComplexityWeights) -> Self {
        StructuralComplexity { weights }
    }
}

impl CostModel for StructuralComplexity {
    fn name(&self) -> &str {
        "structural-design-complexity"
    }

    fn cost(&self, schema: &MdSchema) -> f64 {
        let w = &self.weights;
        let mut cost = 0.0;
        cost += schema.facts.len() as f64 * w.per_fact;
        for f in &schema.facts {
            cost += f.measures.len() as f64 * w.per_measure;
            cost += f.dimensions.len() as f64 * w.per_fact_dim_link;
        }
        let mut max_depth = 0usize;
        for d in &schema.dimensions {
            cost += w.per_dimension;
            cost += d.levels.len() as f64 * w.per_level;
            cost += d.attribute_count() as f64 * w.per_attribute;
            cost += d.rollups.len() as f64 * w.per_rollup;
            max_depth = max_depth.max(d.depth());
        }
        cost += max_depth as f64 * w.per_depth;
        cost
    }

    fn decompose(&self) -> Option<&dyn AdditiveCostModel> {
        Some(self)
    }
}

impl AdditiveCostModel for StructuralComplexity {
    fn fact_cost(&self, fact: &Fact) -> f64 {
        let w = &self.weights;
        w.per_fact + fact.measures.len() as f64 * w.per_measure + fact.dimensions.len() as f64 * w.per_fact_dim_link
    }

    fn dimension_cost(&self, dim: &Dimension) -> f64 {
        let w = &self.weights;
        w.per_dimension
            + dim.levels.len() as f64 * w.per_level
            + dim.attribute_count() as f64 * w.per_attribute
            + dim.rollups.len() as f64 * w.per_rollup
    }

    fn depth_term(&self, max_depth: usize) -> f64 {
        max_depth as f64 * self.weights.per_depth
    }
}

/// A trivial alternative model counting schema elements uniformly; useful to
/// demonstrate that the integrator's choices are cost-model-driven
/// (ablation in experiment E6).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCountComplexity;

impl CostModel for OpCountComplexity {
    fn name(&self) -> &str {
        "element-count"
    }

    fn cost(&self, schema: &MdSchema) -> f64 {
        let (facts, dims, levels, attrs, measures) = schema.size();
        (facts + dims + levels + attrs + measures) as f64
    }

    fn decompose(&self) -> Option<&dyn AdditiveCostModel> {
        Some(self)
    }
}

impl AdditiveCostModel for OpCountComplexity {
    fn fact_cost(&self, fact: &Fact) -> f64 {
        1.0 + fact.measures.len() as f64
    }

    fn dimension_cost(&self, dim: &Dimension) -> f64 {
        1.0 + dim.levels.len() as f64 + dim.attribute_count() as f64
    }

    fn depth_term(&self, _max_depth: usize) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, DimLink, Dimension, Fact, Level, MdDataType, MdSchema, Measure};

    fn schema_with(facts: usize, dims: usize) -> MdSchema {
        let mut s = MdSchema::new("s");
        for d in 0..dims {
            let atomic = Level::new(format!("L{d}"), "k", MdDataType::Integer)
                .with_attribute(Attribute::new("a", MdDataType::Text));
            s.dimensions.push(Dimension::new(format!("D{d}"), atomic));
        }
        for fi in 0..facts {
            let mut f = Fact::new(format!("F{fi}"));
            f.measures.push(Measure::new("m", "x"));
            for d in 0..dims {
                f.dimensions.push(DimLink::new(format!("D{d}"), format!("L{d}")));
            }
            s.facts.push(f);
        }
        s
    }

    #[test]
    fn empty_schema_costs_zero() {
        assert_eq!(StructuralComplexity::new().cost(&MdSchema::new("e")), 0.0);
        assert_eq!(OpCountComplexity.cost(&MdSchema::new("e")), 0.0);
    }

    #[test]
    fn cost_grows_with_elements() {
        let m = StructuralComplexity::new();
        let small = m.cost(&schema_with(1, 2));
        let large = m.cost(&schema_with(2, 4));
        assert!(large > small, "{large} !> {small}");
    }

    #[test]
    fn shared_dimensions_cost_less_than_duplicated_ones() {
        let m = StructuralComplexity::new();
        // Two facts sharing 2 dims vs. two facts with private copies (4 dims).
        let shared = m.cost(&schema_with(2, 2));
        let duplicated = m.cost(&schema_with(2, 4));
        assert!(shared < duplicated);
    }

    #[test]
    fn depth_contributes() {
        let mut flat = schema_with(1, 1);
        let deep = {
            let mut s = flat.clone();
            let d = s.dimension_mut("D0").unwrap();
            d.add_level_above("L0", Level::new("Up1", "k", MdDataType::Text));
            d.add_level_above("Up1", Level::new("Up2", "k", MdDataType::Text));
            s
        };
        let m = StructuralComplexity::new();
        assert!(m.cost(&deep) > m.cost(&flat));
        // Zeroing the depth weight reduces (but does not eliminate, since
        // levels/rollups still count) the difference.
        // Zero every weight the extra levels touch (they also carry key
        // attributes).
        let w = ComplexityWeights {
            per_depth: 0.0,
            per_level: 0.0,
            per_rollup: 0.0,
            per_attribute: 0.0,
            ..ComplexityWeights::default()
        };
        let m0 = StructuralComplexity::with_weights(w);
        assert_eq!(m0.cost(&deep), m0.cost(&flat));
        flat.facts.clear();
    }

    #[test]
    fn decomposition_sums_to_whole_schema_cost() {
        let schemas = [schema_with(0, 0), schema_with(1, 2), schema_with(3, 4), {
            let mut s = schema_with(2, 2);
            let d = s.dimension_mut("D0").unwrap();
            d.add_level_above("L0", Level::new("Up1", "k", MdDataType::Text));
            s
        }];
        let models: [&dyn CostModel; 2] = [&StructuralComplexity::new(), &OpCountComplexity];
        for model in models {
            let am = model.decompose().expect("built-ins decompose");
            for s in &schemas {
                let mut sum = 0.0;
                for f in &s.facts {
                    sum += am.fact_cost(f);
                }
                let mut max_depth = 0;
                for d in &s.dimensions {
                    sum += am.dimension_cost(d);
                    max_depth = max_depth.max(d.depth());
                }
                sum += am.depth_term(max_depth);
                assert_eq!(sum, model.cost(s), "{} decomposition drifts", model.name());
            }
        }
    }

    #[test]
    fn models_report_names() {
        assert_eq!(StructuralComplexity::new().name(), "structural-design-complexity");
        assert_eq!(OpCountComplexity.name(), "element-count");
    }
}
