//! MD schema model: facts, measures, dimensions, level hierarchies.

use std::collections::BTreeSet;
use std::fmt;

/// The set of requirement IDs a design element satisfies. Ordered so that
/// serializations and golden tests are stable.
pub type ReqSet = BTreeSet<String>;

/// Data types of MD attributes and measures (a deliberately small lattice —
/// what the deployers need to emit typed DDL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MdDataType {
    Integer,
    Decimal,
    Text,
    Date,
    Boolean,
}

impl MdDataType {
    pub fn as_str(self) -> &'static str {
        match self {
            MdDataType::Integer => "integer",
            MdDataType::Decimal => "decimal",
            MdDataType::Text => "text",
            MdDataType::Date => "date",
            MdDataType::Boolean => "boolean",
        }
    }

    pub fn parse(s: &str) -> Option<MdDataType> {
        Some(match s {
            "integer" | "int" | "bigint" => MdDataType::Integer,
            "decimal" | "double" | "float" | "numeric" => MdDataType::Decimal,
            "text" | "string" | "varchar" => MdDataType::Text,
            "date" | "timestamp" => MdDataType::Date,
            "boolean" | "bool" => MdDataType::Boolean,
            _ => return None,
        })
    }
}

impl fmt::Display for MdDataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Aggregation functions supported in requirements and measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    Sum,
    Avg,
    Min,
    Max,
    Count,
}

impl AggFn {
    pub fn as_str(self) -> &'static str {
        match self {
            AggFn::Sum => "SUM",
            AggFn::Avg => "AVERAGE",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
            AggFn::Count => "COUNT",
        }
    }

    /// Parses the spellings used in xRQ documents (the paper's Figure 4 uses
    /// `AVERAGE`) and common SQL spellings.
    pub fn parse(s: &str) -> Option<AggFn> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SUM" => AggFn::Sum,
            "AVG" | "AVERAGE" | "MEAN" => AggFn::Avg,
            "MIN" => AggFn::Min,
            "MAX" => AggFn::Max,
            "COUNT" | "CNT" => AggFn::Count,
            _ => return None,
        })
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Additivity class of a measure, the key input to summarizability checking
/// (Mazón et al. \[9\]): *flow* measures add along every dimension, *stock*
/// measures (inventory levels, balances) must not be summed along temporal
/// dimensions, *value-per-unit* measures (prices, rates) are never summed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Additivity {
    #[default]
    Flow,
    Stock,
    ValuePerUnit,
}

impl Additivity {
    pub fn as_str(self) -> &'static str {
        match self {
            Additivity::Flow => "flow",
            Additivity::Stock => "stock",
            Additivity::ValuePerUnit => "value-per-unit",
        }
    }

    pub fn parse(s: &str) -> Option<Additivity> {
        Some(match s {
            "flow" | "additive" => Additivity::Flow,
            "stock" | "semi-additive" => Additivity::Stock,
            "value-per-unit" | "non-additive" => Additivity::ValuePerUnit,
            _ => return None,
        })
    }

    /// Whether aggregating this measure with `agg` along a dimension is
    /// summarizable. `temporal` marks the dimension as a time dimension.
    pub fn allows(self, agg: AggFn, temporal: bool) -> bool {
        match (self, agg) {
            // MIN/MAX/COUNT are safe for every additivity class.
            (_, AggFn::Min | AggFn::Max | AggFn::Count) => true,
            // AVG of an aggregate is statistically delicate but permitted by
            // the MD literature for all classes (it is distributive over the
            // detail data Quarry aggregates from).
            (_, AggFn::Avg) => true,
            (Additivity::Flow, AggFn::Sum) => true,
            (Additivity::Stock, AggFn::Sum) => !temporal,
            (Additivity::ValuePerUnit, AggFn::Sum) => false,
        }
    }
}

/// A descriptive attribute of a level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub datatype: MdDataType,
    pub satisfies: ReqSet,
}

impl Attribute {
    pub fn new(name: impl Into<String>, datatype: MdDataType) -> Self {
        Attribute { name: name.into(), datatype, satisfies: ReqSet::new() }
    }
}

/// An aggregation level of a dimension hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    pub name: String,
    /// The ontology concept this level came from, when derived by the
    /// interpreter (kept for semantic matching during integration).
    pub concept: Option<String>,
    /// The level key attribute name (identifies members).
    pub key: String,
    pub key_type: MdDataType,
    pub attributes: Vec<Attribute>,
    pub satisfies: ReqSet,
}

impl Level {
    pub fn new(name: impl Into<String>, key: impl Into<String>, key_type: MdDataType) -> Self {
        Level {
            name: name.into(),
            concept: None,
            key: key.into(),
            key_type,
            attributes: Vec::new(),
            satisfies: ReqSet::new(),
        }
    }

    pub fn with_concept(mut self, concept: impl Into<String>) -> Self {
        self.concept = Some(concept.into());
        self
    }

    pub fn with_attribute(mut self, attr: Attribute) -> Self {
        self.attributes.push(attr);
        self
    }

    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }
}

/// A roll-up edge between two levels of a dimension (child aggregates into
/// parent). `strict` and `total` are the summarizability annotations of \[9\]:
/// strict = each child member has at most one parent member; total (a.k.a.
/// covering/onto) = each child member has at least one parent member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rollup {
    pub child: String,
    pub parent: String,
    pub strict: bool,
    pub total: bool,
}

impl Rollup {
    pub fn new(child: impl Into<String>, parent: impl Into<String>) -> Self {
        Rollup { child: child.into(), parent: parent.into(), strict: true, total: true }
    }
}

/// An analysis dimension: a set of levels connected by roll-up edges into a
/// hierarchy (possibly a lattice), rooted at an atomic level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    pub name: String,
    /// Name of the atomic (finest-grain) level.
    pub atomic: String,
    pub levels: Vec<Level>,
    pub rollups: Vec<Rollup>,
    /// Marks time-like dimensions, which constrain stock measures.
    pub temporal: bool,
    pub satisfies: ReqSet,
}

impl Dimension {
    pub fn new(name: impl Into<String>, atomic_level: Level) -> Self {
        let atomic = atomic_level.name.clone();
        Dimension {
            name: name.into(),
            atomic,
            levels: vec![atomic_level],
            rollups: Vec::new(),
            temporal: false,
            satisfies: ReqSet::new(),
        }
    }

    pub fn level(&self, name: &str) -> Option<&Level> {
        self.levels.iter().find(|l| l.name == name)
    }

    pub fn level_mut(&mut self, name: &str) -> Option<&mut Level> {
        self.levels.iter_mut().find(|l| l.name == name)
    }

    /// Adds a level and a roll-up edge from `child` to it.
    pub fn add_level_above(&mut self, child: &str, level: Level) {
        let parent = level.name.clone();
        self.levels.push(level);
        self.rollups.push(Rollup::new(child, parent));
    }

    /// Parents of a level along roll-up edges.
    pub fn parents_of(&self, level: &str) -> Vec<&str> {
        self.rollups.iter().filter(|r| r.child == level).map(|r| r.parent.as_str()).collect()
    }

    /// Depth of the longest roll-up chain starting at the atomic level.
    pub fn depth(&self) -> usize {
        fn walk(dim: &Dimension, level: &str, visited: &mut Vec<String>) -> usize {
            if visited.iter().any(|v| v == level) {
                return 0; // cycle guard; validation reports it separately
            }
            visited.push(level.to_string());
            let d = dim.parents_of(level).iter().map(|p| walk(dim, p, visited)).max().map_or(0, |m| m + 1);
            visited.pop();
            d
        }
        walk(self, &self.atomic, &mut Vec::new())
    }

    /// True when `ancestor` is reachable from `level` along roll-up edges.
    pub fn rolls_up_to(&self, level: &str, ancestor: &str) -> bool {
        if level == ancestor {
            return true;
        }
        let mut stack = vec![level];
        let mut seen: Vec<&str> = Vec::new();
        while let Some(cur) = stack.pop() {
            if seen.contains(&cur) {
                continue;
            }
            seen.push(cur);
            for p in self.parents_of(cur) {
                if p == ancestor {
                    return true;
                }
                stack.push(p);
            }
        }
        false
    }

    /// Total number of attributes across levels (keys included).
    pub fn attribute_count(&self) -> usize {
        self.levels.iter().map(|l| 1 + l.attributes.len()).sum()
    }
}

/// A measure of a fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measure {
    pub name: String,
    /// Derivation expression over source properties, e.g. the paper's
    /// `Lineitem_l_extendedpriceATRIBUT * Lineitem_l_discountATRIBUT`.
    pub expression: String,
    pub datatype: MdDataType,
    pub additivity: Additivity,
    /// Default aggregation function requested by the requirements.
    pub default_agg: AggFn,
    pub satisfies: ReqSet,
}

impl Measure {
    pub fn new(name: impl Into<String>, expression: impl Into<String>) -> Self {
        Measure {
            name: name.into(),
            expression: expression.into(),
            datatype: MdDataType::Decimal,
            additivity: Additivity::Flow,
            default_agg: AggFn::Sum,
            satisfies: ReqSet::new(),
        }
    }

    pub fn with_agg(mut self, agg: AggFn) -> Self {
        self.default_agg = agg;
        self
    }

    pub fn with_additivity(mut self, additivity: Additivity) -> Self {
        self.additivity = additivity;
        self
    }
}

/// A link from a fact to the atomic level of one of its dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimLink {
    pub dimension: String,
    /// Level of the dimension the fact references (normally the atomic one;
    /// pre-aggregated facts may link coarser levels).
    pub level: String,
    pub satisfies: ReqSet,
}

impl DimLink {
    pub fn new(dimension: impl Into<String>, level: impl Into<String>) -> Self {
        DimLink { dimension: dimension.into(), level: level.into(), satisfies: ReqSet::new() }
    }
}

/// A fact: measures at a grain defined by its dimension links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    pub name: String,
    /// The ontology concept the fact grain came from, when known.
    pub concept: Option<String>,
    pub measures: Vec<Measure>,
    pub dimensions: Vec<DimLink>,
    pub satisfies: ReqSet,
}

impl Fact {
    pub fn new(name: impl Into<String>) -> Self {
        Fact {
            name: name.into(),
            concept: None,
            measures: Vec::new(),
            dimensions: Vec::new(),
            satisfies: ReqSet::new(),
        }
    }

    pub fn measure(&self, name: &str) -> Option<&Measure> {
        self.measures.iter().find(|m| m.name == name)
    }

    pub fn links_dimension(&self, dimension: &str) -> bool {
        self.dimensions.iter().any(|d| d.dimension == dimension)
    }
}

/// A complete MD schema: the unit exchanged as xMD documents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MdSchema {
    pub name: String,
    pub facts: Vec<Fact>,
    pub dimensions: Vec<Dimension>,
}

impl MdSchema {
    pub fn new(name: impl Into<String>) -> Self {
        MdSchema { name: name.into(), facts: Vec::new(), dimensions: Vec::new() }
    }

    pub fn fact(&self, name: &str) -> Option<&Fact> {
        self.facts.iter().find(|f| f.name == name)
    }

    pub fn fact_mut(&mut self, name: &str) -> Option<&mut Fact> {
        self.facts.iter_mut().find(|f| f.name == name)
    }

    pub fn dimension(&self, name: &str) -> Option<&Dimension> {
        self.dimensions.iter().find(|d| d.name == name)
    }

    pub fn dimension_mut(&mut self, name: &str) -> Option<&mut Dimension> {
        self.dimensions.iter_mut().find(|d| d.name == name)
    }

    /// All requirement IDs satisfied anywhere in the schema.
    pub fn satisfied_requirements(&self) -> ReqSet {
        let mut out = ReqSet::new();
        for f in &self.facts {
            out.extend(f.satisfies.iter().cloned());
        }
        for d in &self.dimensions {
            out.extend(d.satisfies.iter().cloned());
        }
        out
    }

    /// Stamps a requirement ID onto every element of the schema — used when
    /// a partial design produced for one requirement enters integration.
    pub fn stamp_requirement(&mut self, req: &str) {
        for f in &mut self.facts {
            f.satisfies.insert(req.to_string());
            for m in &mut f.measures {
                m.satisfies.insert(req.to_string());
            }
            for d in &mut f.dimensions {
                d.satisfies.insert(req.to_string());
            }
        }
        for d in &mut self.dimensions {
            d.satisfies.insert(req.to_string());
            for l in &mut d.levels {
                l.satisfies.insert(req.to_string());
                for a in &mut l.attributes {
                    a.satisfies.insert(req.to_string());
                }
            }
        }
    }

    /// Removes a requirement ID everywhere and prunes elements whose
    /// satisfier set became empty. Dimensions no longer linked by any fact
    /// are dropped; levels are kept while any element still needs them.
    /// Returns true when anything changed.
    pub fn retract_requirement(&mut self, req: &str) -> bool {
        let mut changed = false;
        for f in &mut self.facts {
            changed |= f.satisfies.remove(req);
            for m in &mut f.measures {
                changed |= m.satisfies.remove(req);
            }
            for dl in &mut f.dimensions {
                changed |= dl.satisfies.remove(req);
            }
            f.measures.retain(|m| !m.satisfies.is_empty());
            f.dimensions.retain(|d| !d.satisfies.is_empty());
        }
        self.facts.retain(|f| !f.satisfies.is_empty());
        for d in &mut self.dimensions {
            changed |= d.satisfies.remove(req);
            for l in &mut d.levels {
                changed |= l.satisfies.remove(req);
                for a in &mut l.attributes {
                    changed |= a.satisfies.remove(req);
                }
                l.attributes.retain(|a| !a.satisfies.is_empty());
            }
        }
        self.dimensions.retain(|d| !d.satisfies.is_empty());
        // Drop levels nothing satisfies, then roll-up edges touching dropped
        // levels. The atomic level survives while the dimension does.
        for d in &mut self.dimensions {
            let atomic = d.atomic.clone();
            d.levels.retain(|l| l.name == atomic || !l.satisfies.is_empty());
            let names: Vec<String> = d.levels.iter().map(|l| l.name.clone()).collect();
            d.rollups.retain(|r| names.contains(&r.child) && names.contains(&r.parent));
        }
        changed
    }

    /// Simple size summary used in reports: (facts, dimensions, levels,
    /// attributes, measures).
    pub fn size(&self) -> (usize, usize, usize, usize, usize) {
        let levels = self.dimensions.iter().map(|d| d.levels.len()).sum();
        let attrs = self.dimensions.iter().map(Dimension::attribute_count).sum();
        let measures = self.facts.iter().map(|f| f.measures.len()).sum();
        (self.facts.len(), self.dimensions.len(), levels, attrs, measures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn part_dimension() -> Dimension {
        let atomic = Level::new("Part", "p_partkey", MdDataType::Integer)
            .with_concept("Part")
            .with_attribute(Attribute::new("p_name", MdDataType::Text));
        let mut d = Dimension::new("Part", atomic);
        d.add_level_above("Part", Level::new("Brand", "p_brand", MdDataType::Text));
        d.add_level_above("Brand", Level::new("Mfgr", "p_mfgr", MdDataType::Text));
        d
    }

    pub(crate) fn revenue_schema() -> MdSchema {
        let mut s = MdSchema::new("demo");
        s.dimensions.push(part_dimension());
        let mut f = Fact::new("fact_table_revenue");
        f.measures.push(Measure::new("revenue", "l_extendedprice * (1 - l_discount)").with_agg(AggFn::Avg));
        f.dimensions.push(DimLink::new("Part", "Part"));
        s.facts.push(f);
        s
    }

    #[test]
    fn agg_fn_parses_paper_spelling() {
        assert_eq!(AggFn::parse("AVERAGE"), Some(AggFn::Avg));
        assert_eq!(AggFn::parse("sum"), Some(AggFn::Sum));
        assert_eq!(AggFn::parse("bogus"), None);
    }

    #[test]
    fn additivity_matrix_matches_summarizability_rules() {
        assert!(Additivity::Flow.allows(AggFn::Sum, true));
        assert!(!Additivity::Stock.allows(AggFn::Sum, true), "stock must not SUM over time");
        assert!(Additivity::Stock.allows(AggFn::Sum, false));
        assert!(!Additivity::ValuePerUnit.allows(AggFn::Sum, false));
        assert!(Additivity::ValuePerUnit.allows(AggFn::Avg, true));
        assert!(Additivity::Stock.allows(AggFn::Min, true));
    }

    #[test]
    fn dimension_depth_follows_longest_chain() {
        let d = part_dimension();
        assert_eq!(d.depth(), 2);
    }

    #[test]
    fn rolls_up_to_is_transitive_and_reflexive() {
        let d = part_dimension();
        assert!(d.rolls_up_to("Part", "Mfgr"));
        assert!(d.rolls_up_to("Part", "Part"));
        assert!(!d.rolls_up_to("Mfgr", "Part"));
    }

    #[test]
    fn stamping_and_satisfied_requirements() {
        let mut s = revenue_schema();
        s.stamp_requirement("IR1");
        assert_eq!(s.satisfied_requirements().into_iter().collect::<Vec<_>>(), ["IR1"]);
        assert!(s.fact("fact_table_revenue").unwrap().measures[0].satisfies.contains("IR1"));
    }

    #[test]
    fn retracting_last_requirement_empties_schema() {
        let mut s = revenue_schema();
        s.stamp_requirement("IR1");
        assert!(s.retract_requirement("IR1"));
        assert!(s.facts.is_empty());
        assert!(s.dimensions.is_empty());
    }

    #[test]
    fn retracting_one_of_two_requirements_keeps_shared_elements() {
        let mut s = revenue_schema();
        s.stamp_requirement("IR1");
        s.stamp_requirement("IR2");
        // IR2 additionally owns a private measure.
        let f = s.fact_mut("fact_table_revenue").unwrap();
        let mut extra = Measure::new("quantity", "l_quantity");
        extra.satisfies.insert("IR2".into());
        f.measures.push(extra);

        assert!(s.retract_requirement("IR2"));
        let f = s.fact("fact_table_revenue").expect("fact still satisfies IR1");
        assert_eq!(f.measures.len(), 1, "IR2-only measure pruned");
        assert!(s.dimension("Part").is_some());
    }

    #[test]
    fn retract_prunes_levels_but_keeps_atomic() {
        let mut s = revenue_schema();
        s.stamp_requirement("IR1");
        // IR2 adds a coarser level only it needs.
        {
            let d = s.dimension_mut("Part").unwrap();
            let mut lvl = Level::new("Type", "p_type", MdDataType::Text);
            lvl.satisfies.insert("IR2".into());
            d.add_level_above("Mfgr", lvl);
            d.satisfies.insert("IR2".into());
        }
        s.retract_requirement("IR2");
        let d = s.dimension("Part").unwrap();
        assert!(d.level("Type").is_none(), "IR2-only level pruned");
        assert!(d.level("Part").is_some());
        assert_eq!(d.rollups.len(), 2, "dangling rollup to pruned level removed");
    }

    #[test]
    fn retracting_unknown_requirement_is_a_noop() {
        let mut s = revenue_schema();
        s.stamp_requirement("IR1");
        let before = s.clone();
        assert!(!s.retract_requirement("IR9"));
        assert_eq!(s, before);
    }

    #[test]
    fn size_summary() {
        let mut s = revenue_schema();
        assert_eq!(s.size(), (1, 1, 3, 4, 1));
        s.facts.clear();
        assert_eq!(s.size().0, 0);
    }
}
