//! The cross-run subflow result cache.
//!
//! Quarry's consolidation story makes shared subflows cheap *within* one run;
//! this module extends the saving *across* runs: a memory-budgeted store of
//! materialized operator outputs (`Arc<Relation>`, zero-copy to publish)
//! keyed by the recursive subflow fingerprint of
//! [`quarry_etl::cost::subflow_fingerprints`]. A fingerprint covers the
//! operator's canonical form, its inputs' fingerprints, the per-flow epoch
//! and the per-source epochs — so a hit is only possible when the same
//! computation over the same source state is requested again, and
//! invalidation is pure key rotation: epoch bumps make old entries
//! unreachable (and [`ResultCache::set_flow_epoch`] purges them for hygiene).
//!
//! Admission is cost-based: an output is cached only when the modeled time
//! of its upstream cone ([`EstimatedTime::subtree_costs`]) times the
//! observed hit-likelihood (how often this fingerprint has been requested)
//! exceeds what admitting costs — nothing for outputs the executor already
//! materialized, a modeled gather for late-materialized ones. Eviction under
//! the byte budget is cost-weighted LRU: the entry with the least modeled
//! saving per byte, discounted by staleness, goes first.

use crate::catalog::Catalog;
use crate::relation::Relation;
use quarry_etl::cost::{flow_fingerprint, subflow_fingerprints, EstimatedTime, SourceStats, TimeWeights};
use quarry_etl::{Flow, FlowError, OpId, OpKind};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Bound on the fingerprint-demand map (a hit-likelihood heuristic, not
/// correctness state); past it the counts reset wholesale.
const DEMAND_CAP: usize = 1 << 16;

/// Operator kinds whose outputs are worth keying: pipeline breakers (join
/// builds feed them, aggregations collapse them) and post-filter scans.
/// Streaming pass-throughs (projection, derivation) are never cached — their
/// upstream breaker already is, and their own cost is near zero.
pub(crate) fn cacheable(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Join { .. }
            | OpKind::Aggregation { .. }
            | OpKind::Selection { .. }
            | OpKind::Distinct
            | OpKind::Sort { .. }
            | OpKind::Union
    )
}

/// Hit-likelihood from demand: how often this fingerprint has been asked for
/// and missed. Saturates toward 1 — a subflow requested run after run is
/// near-certain to be requested again.
fn likelihood(demand: u32) -> f64 {
    1.0 - 0.5f64.powi(demand.min(30) as i32)
}

/// Misses a fingerprint must accumulate before admission will pay a
/// non-zero materialization price for it. Free offers (results the executor
/// already holds materialized) are admitted from the first miss; paying a
/// gather for a late-materialized batch on the very first run would tax
/// every cold run for a reuse that is still speculative.
const COSTLY_ADMIT_MIN_DEMAND: u32 = 2;

/// Modeled cost (in [`EstimatedTime`] units) of eagerly materializing a late
/// `rows × cols` batch for admission: one gather per column per row. Charged
/// against the modeled cross-run saving so the cold run never pays a gather
/// that the cache is unlikely to amortize.
pub fn materialize_cost(rows: usize, cols: usize) -> f64 {
    0.1 * rows as f64 * cols as f64
}

/// A content stamp for one catalog table: row count, schema, and the
/// identities of its shared columns. Folding this into the per-source epoch
/// makes a cache hit physically contingent on the very column vectors the
/// cached result was computed from — replacing a table's data rotates its
/// column `Arc`s and therefore the stamp, so stale data cannot hit (at worst
/// an unchanged table re-generated from scratch misses: false negatives
/// only).
pub fn table_stamp(catalog: &Catalog, name: &str) -> u64 {
    let mut h = DefaultHasher::new();
    match catalog.get_shared(name) {
        Some(rel) => {
            1u8.hash(&mut h);
            rel.len().hash(&mut h);
            for col in rel.schema.columns.iter() {
                col.name.hash(&mut h);
                format!("{:?}", col.ty).hash(&mut h);
            }
            for col in rel.columns() {
                (Arc::as_ptr(col) as usize).hash(&mut h);
            }
        }
        None => 0u8.hash(&mut h),
    }
    h.finish()
}

/// Everything the executor needs to consult the cache for one flow: per-op
/// fingerprints and per-op modeled cone costs, pinned to the exact flow
/// shape they were computed for.
#[derive(Debug, Clone)]
pub struct CachePlan {
    flow_fp: u64,
    /// The flow epoch the fingerprints were computed under; admitted entries
    /// are tagged with it so [`ResultCache::set_flow_epoch`] can purge.
    pub flow_epoch: u64,
    fingerprints: HashMap<OpId, u64>,
    saved: HashMap<OpId, f64>,
}

impl CachePlan {
    /// Builds the plan for `flow`: recursive fingerprints under the given
    /// epochs plus modeled upstream-cone costs (columnar weights) under
    /// `stats`.
    pub fn for_flow(
        flow: &Flow,
        stats: &SourceStats,
        flow_epoch: u64,
        source_epoch: &dyn Fn(&str) -> u64,
    ) -> Result<CachePlan, FlowError> {
        let fingerprints = subflow_fingerprints(flow, flow_epoch, source_epoch)?;
        let model = EstimatedTime { weights: TimeWeights::columnar() };
        let saved = model.subtree_costs(flow, stats)?;
        Ok(CachePlan { flow_fp: flow_fingerprint(flow), flow_epoch, fingerprints, saved })
    }

    /// A plan for engine-only callers (benchmarks, tests): source epochs are
    /// the catalog's table stamps and the flow epoch is fixed.
    pub fn for_catalog(flow: &Flow, catalog: &Catalog, flow_epoch: u64) -> Result<CachePlan, FlowError> {
        CachePlan::for_flow(flow, &catalog.statistics(), flow_epoch, &|name| table_stamp(catalog, name))
    }

    /// Whether this plan was computed for exactly `flow`'s shape.
    pub fn matches(&self, flow: &Flow) -> bool {
        self.flow_fp == flow_fingerprint(flow)
    }

    pub fn fingerprint(&self, id: OpId) -> Option<u64> {
        self.fingerprints.get(&id).copied()
    }

    /// Modeled cost of the op's upstream cone — what a hit on it saves.
    pub fn saved_cost(&self, id: OpId) -> f64 {
        self.saved.get(&id).copied().unwrap_or(0.0)
    }
}

#[derive(Debug)]
struct Entry {
    relation: Arc<Relation>,
    bytes: usize,
    saved: f64,
    last_used: u64,
    flow_epoch: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
    /// Times each fingerprint was looked up and missed — the hit-likelihood
    /// signal for admission.
    demand: HashMap<u64, u32>,
    hits: u64,
    misses: u64,
    inserts: u64,
    rejects: u64,
    evictions: u64,
}

/// Snapshot of one cache's counters and occupancy.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub enabled: bool,
    pub budget_bytes: usize,
    pub entries: usize,
    pub bytes: usize,
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    /// Lookups that missed and whose results admission then declined.
    pub rejects: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; zero before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The budgeted fingerprint-keyed store. Shareable across engines and runs
/// via `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct ResultCache {
    enabled: bool,
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    pub fn new(enabled: bool, budget_bytes: usize) -> Self {
        ResultCache { enabled, budget_bytes, inner: Mutex::new(Inner::default()) }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a fingerprint. A miss also records demand — the admission
    /// signal that this subflow keeps being asked for.
    pub fn lookup(&self, fp: u64) -> Option<Arc<Relation>> {
        if !self.enabled {
            return None;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&fp) {
            entry.last_used = tick;
            let relation = Arc::clone(&entry.relation);
            inner.hits += 1;
            return Some(relation);
        }
        inner.misses += 1;
        if inner.demand.len() >= DEMAND_CAP {
            inner.demand.clear();
        }
        *inner.demand.entry(fp).or_insert(0) += 1;
        None
    }

    /// Whether a live entry exists for `fp`, without touching the
    /// hit/miss/demand accounting — the optimizer's discount probe.
    pub fn peek(&self, fp: u64) -> bool {
        self.enabled && self.lock().entries.contains_key(&fp)
    }

    /// The admission economics without the entry itself: would an offer with
    /// this modeled saving and materialization price currently clear the
    /// `saved × hit-likelihood > cost` bar? The executor asks this *before*
    /// paying a gather for a late batch.
    pub fn would_admit(&self, fp: u64, saved: f64, materialize_cost: f64) -> bool {
        if !self.enabled {
            return false;
        }
        let inner = self.lock();
        let demand = inner.demand.get(&fp).copied().unwrap_or(1).max(1);
        if materialize_cost > 0.0 && demand < COSTLY_ADMIT_MIN_DEMAND {
            return false;
        }
        saved * likelihood(demand) > materialize_cost
    }

    /// Offers one computed result for admission. `saved` is the modeled cost
    /// of the result's upstream cone (the win per future hit),
    /// `materialize_cost` the modeled price of storing it now (zero when the
    /// executor already holds it materialized). Admitted only when
    /// `saved × hit-likelihood > materialize_cost` and the entry fits the
    /// budget; then evicts cost-weighted-LRU until under budget. Returns
    /// whether the entry is resident afterwards.
    pub fn admit(&self, fp: u64, relation: &Arc<Relation>, saved: f64, materialize_cost: f64, flow_epoch: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let bytes = relation.estimated_bytes();
        let mut inner = self.lock();
        if inner.entries.contains_key(&fp) {
            return true; // already resident (a concurrent lane admitted it)
        }
        let demand = inner.demand.get(&fp).copied().unwrap_or(1).max(1);
        if (materialize_cost > 0.0 && demand < COSTLY_ADMIT_MIN_DEMAND)
            || saved * likelihood(demand) <= materialize_cost
            || bytes > self.budget_bytes
        {
            inner.rejects += 1;
            return false;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.bytes += bytes;
        inner.inserts += 1;
        inner.entries.insert(fp, Entry { relation: Arc::clone(relation), bytes, saved, last_used: tick, flow_epoch });
        self.evict_over_budget(&mut inner);
        inner.entries.contains_key(&fp)
    }

    /// Evicts until total bytes fit the budget. The victim is the entry with
    /// the least modeled saving per byte, discounted by how long ago it was
    /// last used — cost-weighted LRU.
    fn evict_over_budget(&self, inner: &mut Inner) {
        while inner.bytes > self.budget_bytes && !inner.entries.is_empty() {
            let now = inner.tick;
            let victim = inner
                .entries
                .iter()
                .map(|(&fp, e)| {
                    let age = now.saturating_sub(e.last_used) as f64;
                    (fp, (e.saved / e.bytes.max(1) as f64) / (1.0 + age))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(fp, _)| fp);
            let Some(fp) = victim else { break };
            if let Some(entry) = inner.entries.remove(&fp) {
                inner.bytes -= entry.bytes;
                inner.evictions += 1;
                crate::events::emit(crate::events::EngineEvent::CacheEvict { bytes: entry.bytes as u64 });
            }
        }
    }

    /// Announces the current flow epoch: entries admitted under any other
    /// epoch are purged. Their fingerprints could never hit again anyway
    /// (the epoch folds into every key); purging frees their memory the
    /// moment the lifecycle commits a new design.
    pub fn set_flow_epoch(&self, epoch: u64) {
        let mut inner = self.lock();
        let stale: Vec<u64> = inner.entries.iter().filter(|(_, e)| e.flow_epoch != epoch).map(|(&fp, _)| fp).collect();
        for fp in stale {
            if let Some(entry) = inner.entries.remove(&fp) {
                inner.bytes -= entry.bytes;
                inner.evictions += 1;
            }
        }
        inner.demand.clear();
    }

    /// Drops every entry (and the demand heuristics).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.demand.clear();
        inner.bytes = 0;
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            enabled: self.enabled,
            budget_bytes: self.budget_bytes,
            entries: inner.entries.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            inserts: inner.inserts,
            rejects: inner.rejects,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::value::Value;
    use quarry_etl::{ColType, Column, Schema};

    fn rel(n: usize) -> Arc<Relation> {
        let schema = Schema::new(vec![Column::new("x", ColType::Integer)]);
        Arc::new(Relation::with_rows(schema, (0..n).map(|i| vec![Value::Int(i as i64)]).collect()))
    }

    #[test]
    fn lookup_miss_then_admit_then_hit() {
        let cache = ResultCache::new(true, 1 << 20);
        assert!(cache.lookup(7).is_none());
        assert!(cache.admit(7, &rel(10), 1000.0, 0.0, 1));
        let hit = cache.lookup(7).expect("admitted entry hits");
        assert_eq!(hit.len(), 10);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        assert!(s.bytes > 0 && s.entries == 1);
    }

    #[test]
    fn disabled_cache_never_stores_or_counts() {
        let cache = ResultCache::new(false, 1 << 20);
        assert!(cache.lookup(1).is_none());
        assert!(!cache.admit(1, &rel(4), 1e9, 0.0, 1));
        assert!(cache.lookup(1).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (0, 0, 0, 0));
    }

    #[test]
    fn admission_weighs_saving_against_materialization() {
        let cache = ResultCache::new(true, 1 << 20);
        // Demand 1 → likelihood 0.5; a saving of 10 against a
        // materialization cost of 8 does not clear the bar…
        cache.lookup(1);
        assert!(!cache.admit(1, &rel(4), 10.0, 8.0, 1));
        assert_eq!(cache.stats().rejects, 1);
        // …but after repeated demand the likelihood approaches 1 and the
        // same offer is admitted.
        cache.lookup(1);
        cache.lookup(1);
        assert!(cache.admit(1, &rel(4), 10.0, 8.0, 1));
    }

    #[test]
    fn costly_admission_requires_repeated_demand() {
        let cache = ResultCache::new(true, 1 << 20);
        // One miss is not enough history to pay a gather, no matter the
        // modeled saving…
        cache.lookup(9);
        assert!(!cache.would_admit(9, 1e9, 1.0));
        assert!(!cache.admit(9, &rel(4), 1e9, 1.0, 1));
        // …a second miss is.
        cache.lookup(9);
        assert!(cache.would_admit(9, 1e9, 1.0));
        assert!(cache.admit(9, &rel(4), 1e9, 1.0, 1));
        // Free offers clear the bar from the very first miss.
        cache.lookup(10);
        assert!(cache.would_admit(10, 1.0, 0.0));
    }

    #[test]
    fn budget_eviction_prefers_low_value_entries() {
        let budget = rel(64).estimated_bytes() * 2 + 64;
        let cache = ResultCache::new(true, budget);
        assert!(cache.admit(1, &rel(64), 10.0, 0.0, 1), "low value");
        assert!(cache.admit(2, &rel(64), 1e6, 0.0, 1), "high value");
        // A third entry forces an eviction; the low-value entry goes.
        assert!(cache.admit(3, &rel(64), 1e6, 0.0, 1));
        assert!(cache.stats().evictions >= 1);
        assert!(cache.lookup(1).is_none(), "low-value entry evicted");
        assert!(cache.lookup(2).is_some() || cache.lookup(3).is_some());
        assert!(cache.stats().bytes <= budget, "occupancy within budget");
    }

    #[test]
    fn oversized_entries_are_rejected_outright() {
        let cache = ResultCache::new(true, 16);
        assert!(!cache.admit(1, &rel(1024), 1e9, 0.0, 1));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn flow_epoch_change_purges_old_entries() {
        let cache = ResultCache::new(true, 1 << 20);
        assert!(cache.admit(1, &rel(8), 100.0, 0.0, 1));
        assert!(cache.admit(2, &rel(8), 100.0, 0.0, 1));
        cache.set_flow_epoch(2);
        let s = cache.stats();
        assert_eq!(s.entries, 0, "stale-epoch entries purged");
        assert_eq!(s.bytes, 0);
        assert!(cache.lookup(1).is_none() && cache.lookup(2).is_none());
    }

    #[test]
    fn table_stamp_tracks_data_identity() {
        let mut catalog = Catalog::new();
        let schema = Schema::new(vec![Column::new("x", ColType::Integer)]);
        catalog.put("t", Relation::with_rows(schema.clone(), vec![vec![Value::Int(1)]]));
        let a = table_stamp(&catalog, "t");
        assert_eq!(a, table_stamp(&catalog, "t"), "stamps are stable");
        let shared = catalog.clone();
        assert_eq!(a, table_stamp(&shared, "t"), "clones share columns, so stamps agree");
        // Replacing the data rotates the stamp even at equal row counts.
        catalog.put("t", Relation::with_rows(schema, vec![vec![Value::Int(2)]]));
        assert_ne!(a, table_stamp(&catalog, "t"));
        assert_ne!(a, table_stamp(&catalog, "missing"));
    }

    #[test]
    fn plans_pin_the_flow_shape() {
        let mut f = Flow::new("p");
        let schema = Schema::new(vec![Column::new("x", ColType::Integer)]);
        let d = f.add_op("DS", OpKind::Datastore { datastore: "t".into(), schema }).unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let catalog = Catalog::new();
        let plan = CachePlan::for_catalog(&f, &catalog, 1).unwrap();
        assert!(plan.matches(&f));
        assert!(plan.fingerprint(d).is_some());
        assert!(plan.saved_cost(d) >= 0.0);
        let mut other = f.clone();
        let e = other.add_op("DS2", OpKind::Datastore { datastore: "u".into(), schema: Schema::empty() }).unwrap();
        other.append(e, "LOAD2", OpKind::Loader { table: "out2".into(), key: vec![] }).unwrap();
        assert!(!plan.matches(&other), "a different shape rejects the plan");
    }
}
