//! An in-memory relational execution engine for Quarry's logical ETL flows,
//! plus the TPC-H-shaped data generator behind the paper's running example.
//!
//! The original demo deploys generated designs onto PostgreSQL (storage) and
//! Pentaho PDI (ETL execution) and shows "reduced overall execution time for
//! integrated ETL processes, executed in Pentaho PDI" (§3). Neither system
//! is assumed here; instead this crate *is* the execution platform: it runs
//! xLM flows directly over in-memory relations, which is what makes the
//! execution-time quality factor measurable end-to-end (experiment E7).
//!
//! Components:
//!
//! - [`Value`], [`Relation`], [`column`] — the runtime data model: relations
//!   hold `Arc`-shared typed columns (dictionary-encoded strings, validity
//!   bitmaps), with a row-view shim for row-oriented consumers;
//! - [`eval`] — evaluator for the `quarry-etl` expression language, and
//!   [`eval_compiled`] — its positional counterpart over pre-compiled
//!   expressions (column names bound once per operator);
//! - [`Engine`], [`Catalog`] — the morsel-parallel columnar flow executor
//!   (vectorized expression kernels, hash joins and two-phase hash
//!   aggregation over fixed-width encoded keys, surrogate-key assignment,
//!   loaders) with per-operation timing in its [`RunReport`];
//! - [`RowEngine`] — the retired row-at-a-time executor, kept as the
//!   baseline for the row-vs-columnar equivalence suite and benchmarks;
//! - [`pool`] — the shared scoped-thread worker pool both parallelism
//!   layers (inter-operator and intra-operator) draw from;
//! - [`tpch`] — a deterministic, scale-factor-parameterized generator for
//!   the eight TPC-H tables.

#![forbid(unsafe_code)]

pub mod cache;
mod catalog;
pub mod column;
mod eval;
pub mod events;
mod exec;
mod exec_row;
mod keys;
pub mod pool;
mod relation;
pub mod stats;
pub mod tpch;
mod value;
mod vector;

pub use cache::{table_stamp, CachePlan, CacheStats, ResultCache};
pub use catalog::Catalog;
pub use eval::{eval, eval_compiled, truthy, EvalError};
pub use exec::{surrogate_of, Engine, EngineError, OpTiming, RunReport, MAX_RADIX_PARTITIONS, MORSEL_ROWS};
pub use exec_row::RowEngine;
pub use relation::{assert_same_rows, Relation, RelationBuilder, Row};
pub use value::Value;
