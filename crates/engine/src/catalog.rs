//! The table catalog: named relations the engine reads from and loads into.

use crate::relation::Relation;
use quarry_etl::Schema;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A catalog of named in-memory tables. Iteration order is name order so
/// that reports and tests are deterministic.
///
/// Tables are reference-counted so the executor can hand a whole table to a
/// datastore operator without copying a single row; mutation goes through
/// [`Catalog::get_mut`], which copies-on-write only while a reader still
/// holds the table.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Relation>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table.
    pub fn put(&mut self, name: impl Into<String>, relation: Relation) {
        self.tables.insert(name.into(), Arc::new(relation));
    }

    /// Registers (or replaces) a table that is already reference-counted,
    /// sharing its rows instead of copying them.
    pub fn put_shared(&mut self, name: impl Into<String>, relation: Arc<Relation>) {
        self.tables.insert(name.into(), relation);
    }

    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name).map(|t| &**t)
    }

    /// A reference-counted handle to a table: the zero-copy read path of
    /// datastore operators.
    pub fn get_shared(&self, name: &str) -> Option<Arc<Relation>> {
        self.tables.get(name).cloned()
    }

    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.tables.get_mut(name).map(Arc::make_mut)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.tables.remove(name).map(|t| Arc::try_unwrap(t).unwrap_or_else(|t| (*t).clone()))
    }

    /// Creates an empty table with the given schema (deployment DDL effect).
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) {
        self.tables.insert(name.into(), Arc::new(Relation::new(schema)));
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Derives source statistics (row counts per table) for the ETL cost
    /// models from the actual data — what a deployed Quarry would sample
    /// from its sources instead of relying on configured estimates.
    pub fn statistics(&self) -> quarry_etl::cost::SourceStats {
        let mut stats = quarry_etl::cost::SourceStats::new();
        for (name, relation) in &self.tables {
            stats.set_table(name.clone(), relation.len() as f64);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use quarry_etl::{ColType, Column};

    #[test]
    fn put_get_remove() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::new("x", ColType::Integer)]);
        c.put("t", Relation::with_rows(schema.clone(), vec![vec![Value::Int(1)]]));
        assert!(c.contains("t"));
        assert_eq!(c.get("t").unwrap().len(), 1);
        assert_eq!(c.total_rows(), 1);
        c.create_table("t", schema); // replace with empty
        assert_eq!(c.get("t").unwrap().len(), 0);
        assert!(c.remove("t").is_some());
        assert!(c.is_empty());
    }

    #[test]
    fn statistics_reflect_row_counts() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::new("x", ColType::Integer)]);
        c.put("t", Relation::with_rows(schema, vec![vec![Value::Int(1)], vec![Value::Int(2)]]));
        let stats = c.statistics();
        assert_eq!(stats.table_rows("t"), 2.0);
    }

    #[test]
    fn names_iterate_sorted() {
        let mut c = Catalog::new();
        for n in ["zeta", "alpha", "mid"] {
            c.create_table(n, Schema::empty());
        }
        assert_eq!(c.table_names().collect::<Vec<_>>(), ["alpha", "mid", "zeta"]);
    }
}
