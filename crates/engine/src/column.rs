//! Columnar storage: typed value vectors with a validity bitmap.
//!
//! A [`Column`] stores one relation attribute as a typed vector —
//! `Int(Vec<i64>)`, `Float(Vec<f64>)`, `Date(Vec<i32>)`, `Bool(Vec<bool>)`,
//! or dictionary-encoded strings over an interned [`StringPool`] — plus an
//! optional validity bitmap marking NULL slots. Two escape hatches keep the
//! dirty-data semantics of the row engine intact:
//!
//! - a dictionary that would exceed [`DICT_MAX`] distinct strings overflows
//!   to plain `Str(Vec<String>)` storage;
//! - a column whose cells mix runtime types (a declared `Date` column
//!   carrying `Str("not-a-date")`, say) demotes to `Mixed(Vec<Value>)`,
//!   where every cell keeps its exact [`Value`] — including `Null`s, so a
//!   `Mixed` column never carries a validity bitmap.
//!
//! Columns are immutable once built and shared via `Arc`, which is what
//! makes extraction/projection a zero-copy column pick in the executor.

use crate::value::Value;
use quarry_etl::ColType;
use std::collections::HashMap;
use std::sync::Arc;

/// Distinct-string limit for dictionary encoding; one more unique string
/// overflows the column to plain `Str` storage.
pub const DICT_MAX: usize = 1 << 16;

/// Sentinel gather index meaning "emit NULL" (left-join padding).
pub const NULL_IDX: u32 = u32::MAX;

/// A packed validity bitmap: bit set = value present, clear = NULL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// An all-set bitmap of `len` bits.
    pub fn all_valid(len: usize) -> Self {
        let mut b = Bitmap { bits: vec![u64::MAX; len.div_ceil(64)], len };
        b.trim_tail();
        b
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    pub fn push(&mut self, valid: bool) {
        if self.len.is_multiple_of(64) {
            self.bits.push(0);
        }
        if valid {
            *self.bits.last_mut().expect("pushed above") |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }

    pub fn count_set(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn trim_tail(&mut self) {
        // Clear bits past `len` so popcounts stay honest.
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
    }

    /// Builds a bitmap from pre-packed words. Bits past `len` are cleared,
    /// so callers may hand over words with dirty tails.
    pub(crate) fn from_words(mut bits: Vec<u64>, len: usize) -> Self {
        bits.truncate(len.div_ceil(64));
        debug_assert_eq!(bits.len(), len.div_ceil(64));
        let mut b = Bitmap { bits, len };
        b.trim_tail();
        b
    }

    /// Word-wise AND of two optional validity maps over `len` slots (`None`
    /// = all valid). Returns `None` when the result is all-set, matching the
    /// column-level normalization.
    pub(crate) fn and_opt(a: Option<&Bitmap>, b: Option<&Bitmap>, len: usize) -> Option<Bitmap> {
        let out = match (a, b) {
            (None, None) => return None,
            (Some(x), None) | (None, Some(x)) => x.clone(),
            (Some(x), Some(y)) => {
                debug_assert_eq!(x.len, len);
                debug_assert_eq!(y.len, len);
                Bitmap { bits: x.bits.iter().zip(&y.bits).map(|(p, q)| p & q).collect(), len }
            }
        };
        if out.all_set() {
            None
        } else {
            Some(out)
        }
    }
}

/// The contiguous ascending run covered by `indices`, if they are exactly
/// `start, start+1, …` with no [`NULL_IDX`] padding entries. Gathers over
/// such runs degrade to cheap slices (or whole-column shares).
pub(crate) fn contiguous_run(indices: &[u32]) -> Option<std::ops::Range<usize>> {
    let (&first, &last) = (indices.first()?, indices.last()?);
    if last == NULL_IDX {
        return None;
    }
    let start = first as usize;
    // Equality against `start + k` rejects NULL_IDX interior entries too:
    // every index equals `last - (len-1-k) < NULL_IDX`.
    let run = indices.iter().enumerate().all(|(k, &i)| i as usize == start + k);
    run.then(|| start..start + indices.len())
}

/// An interned pool of distinct strings backing dictionary-encoded columns.
#[derive(Debug, Default)]
pub struct StringPool {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringPool {
    pub fn new() -> Self {
        StringPool::default()
    }

    /// Interns `s`, returning its code. `None` once the pool is full
    /// ([`DICT_MAX`] distinct strings) and `s` is not already present.
    pub fn intern(&mut self, s: &str) -> Option<u32> {
        if let Some(&code) = self.index.get(s) {
            return Some(code);
        }
        if self.strings.len() >= DICT_MAX {
            return None;
        }
        let code = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), code);
        Some(code)
    }

    /// Code of `s` if it is already interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    pub fn get(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Estimated heap footprint of the pool (strings plus the intern index).
    pub fn estimated_bytes(&self) -> usize {
        // Each distinct string is stored twice (vector + index key), plus
        // `String` headers and the index entry itself.
        self.strings.iter().map(|s| 2 * s.len() + 2 * 24 + 8).sum()
    }
}

/// The typed storage behind one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Date(Vec<i32>),
    /// Dictionary-encoded strings: per-row codes into a shared pool.
    Dict {
        codes: Vec<u32>,
        pool: Arc<StringPool>,
    },
    /// Plain strings — the dictionary-overflow representation.
    Str(Vec<String>),
    /// Heterogeneous cells kept as exact runtime values (dirty data).
    /// Carries its own NULLs; never paired with a validity bitmap.
    Mixed(Vec<Value>),
}

/// One column: typed data plus an optional validity bitmap (`None` = every
/// slot valid). Invalid slots hold an arbitrary placeholder datum.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<Bitmap>,
}

impl Column {
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> Self {
        let c = Column { data, validity };
        debug_assert!(c.validity.as_ref().is_none_or(|b| b.len() == c.len()));
        debug_assert!(!(matches!(c.data, ColumnData::Mixed(_)) && c.validity.is_some()));
        c
    }

    /// An empty column typed after a declared schema type.
    pub fn empty(ty: ColType) -> Self {
        let data = match ty {
            ColType::Integer => ColumnData::Int(Vec::new()),
            ColType::Decimal => ColumnData::Float(Vec::new()),
            ColType::Date => ColumnData::Date(Vec::new()),
            ColType::Boolean => ColumnData::Bool(Vec::new()),
            ColType::Text => ColumnData::Dict { codes: Vec::new(), pool: Arc::new(StringPool::new()) },
        };
        Column { data, validity: None }
    }

    /// A column of `len` NULLs, typed after `ty`.
    pub fn nulls(ty: ColType, len: usize) -> Self {
        let mut b = ColumnBuilder::new(ty);
        for _ in 0..len {
            b.push(Value::Null);
        }
        b.finish()
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated heap footprint of the column in bytes: typed vector plus
    /// dictionary pool (counted in full — pools may be `Arc`-shared across
    /// columns, so sums over relations can overcount shared storage) plus
    /// the validity bitmap. An estimate for budget accounting, not an exact
    /// allocator measurement.
    pub fn estimated_bytes(&self) -> usize {
        let data = match &self.data {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len() * 4,
            ColumnData::Dict { codes, pool } => codes.len() * 4 + pool.estimated_bytes(),
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
            ColumnData::Mixed(v) => v.iter().map(|cell| 32 + if let Value::Str(s) = cell { s.len() } else { 0 }).sum(),
        };
        data + self.validity.as_ref().map_or(0, |b| b.bits.len() * 8)
    }

    pub fn is_null(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Mixed(v) => v[i].is_null(),
            _ => self.validity.as_ref().is_some_and(|b| !b.get(i)),
        }
    }

    /// The exact runtime value of slot `i` (strings cloned).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Dict { codes, pool } => Value::Str(pool.get(codes[i]).to_string()),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// The string at slot `i` for dictionary or plain-string columns.
    pub fn str_at(&self, i: usize) -> Option<&str> {
        if self.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Dict { codes, pool } => Some(pool.get(codes[i])),
            ColumnData::Str(v) => Some(v[i].as_str()),
            ColumnData::Mixed(v) => v[i].as_str(),
            _ => None,
        }
    }

    /// Streams the display form of slot `i` into `w`, byte-identical to
    /// `Value::to_string` — the surrogate-key hash reads columns through
    /// this without materializing any value.
    pub fn write_display(&self, i: usize, w: &mut impl std::fmt::Write) -> std::fmt::Result {
        if self.is_null(i) {
            return w.write_str("NULL");
        }
        match &self.data {
            ColumnData::Int(v) => write!(w, "{}", v[i]),
            ColumnData::Float(v) => write!(w, "{}", v[i]),
            ColumnData::Bool(v) => write!(w, "{}", v[i]),
            ColumnData::Date(v) => write!(w, "{}", Value::Date(v[i])),
            ColumnData::Dict { codes, pool } => w.write_str(pool.get(codes[i])),
            ColumnData::Str(v) => w.write_str(&v[i]),
            ColumnData::Mixed(v) => write!(w, "{}", v[i]),
        }
    }

    /// Gathers `indices` into a new column. [`NULL_IDX`] entries emit NULL
    /// (left-join padding). Dictionary columns gather codes and share the
    /// pool `Arc` — no string is copied.
    pub fn gather(&self, indices: &[u32]) -> Column {
        // High-selectivity filters and morsel splits routinely gather
        // contiguous ascending runs; take the slice path instead of an
        // element-wise gather.
        if let Some(rg) = contiguous_run(indices) {
            if rg.end <= self.len() {
                return self.slice(rg);
            }
        }
        let validity = self.gathered_validity(indices);
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(gather_data(v, indices, 0)),
            ColumnData::Float(v) => ColumnData::Float(gather_data(v, indices, 0.0)),
            ColumnData::Bool(v) => ColumnData::Bool(gather_data(v, indices, false)),
            ColumnData::Date(v) => ColumnData::Date(gather_data(v, indices, 0)),
            ColumnData::Dict { codes, pool } => {
                ColumnData::Dict { codes: gather_data(codes, indices, 0), pool: Arc::clone(pool) }
            }
            ColumnData::Str(v) => ColumnData::Str(
                indices.iter().map(|&i| if i == NULL_IDX { String::new() } else { v[i as usize].clone() }).collect(),
            ),
            ColumnData::Mixed(v) => {
                return Column::new(
                    ColumnData::Mixed(
                        indices
                            .iter()
                            .map(|&i| if i == NULL_IDX { Value::Null } else { v[i as usize].clone() })
                            .collect(),
                    ),
                    None,
                );
            }
        };
        Column::new(data, validity)
    }

    /// A contiguous sub-range of the column — the morsel view. Cheaper than
    /// [`Column::gather`]: fixed-width data copies as one `memcpy`-style
    /// slice extend, and dictionary columns share their pool.
    pub fn slice(&self, rg: std::ops::Range<usize>) -> Column {
        let validity = match &self.validity {
            None => None,
            Some(bm) => {
                let mut out = Bitmap::new();
                for i in rg.clone() {
                    out.push(bm.get(i));
                }
                if out.all_set() {
                    None
                } else {
                    Some(out)
                }
            }
        };
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(v[rg].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[rg].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[rg].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[rg].to_vec()),
            ColumnData::Dict { codes, pool } => ColumnData::Dict { codes: codes[rg].to_vec(), pool: Arc::clone(pool) },
            ColumnData::Str(v) => ColumnData::Str(v[rg].to_vec()),
            ColumnData::Mixed(v) => return Column::new(ColumnData::Mixed(v[rg].to_vec()), None),
        };
        Column::new(data, validity)
    }

    fn gathered_validity(&self, indices: &[u32]) -> Option<Bitmap> {
        let has_pad = indices.contains(&NULL_IDX);
        match (&self.validity, has_pad) {
            (None, false) => None,
            (v, _) => {
                let mut b = Bitmap::new();
                for &i in indices {
                    b.push(i != NULL_IDX && v.as_ref().is_none_or(|bm| bm.get(i as usize)));
                }
                if b.all_set() {
                    None
                } else {
                    Some(b)
                }
            }
        }
    }

    /// Concatenates columns in order. Same-representation parts extend
    /// directly (dictionary parts sharing one pool extend codes verbatim);
    /// anything else re-builds through a [`ColumnBuilder`], demoting to
    /// `Mixed` only when the parts genuinely mix runtime types.
    pub fn concat(parts: &[&Column], ty: ColType) -> Column {
        // Empty parts contribute nothing and would only defeat the
        // same-representation fast path (an empty dictionary never shares
        // a pool with a populated one).
        let parts: Vec<&Column> = parts.iter().filter(|p| !p.is_empty()).copied().collect();
        if parts.is_empty() {
            return Column::empty(ty);
        }
        if parts.len() == 1 {
            return parts[0].clone();
        }
        if let Some(c) = Self::concat_fast(&parts) {
            return c;
        }
        let mut b = ColumnBuilder::new(ty);
        for p in parts {
            for i in 0..p.len() {
                b.push(p.value(i));
            }
        }
        b.finish()
    }

    fn concat_fast(parts: &[&Column]) -> Option<Column> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let any_nulls = parts.iter().any(|p| p.validity.is_some());
        let validity = if any_nulls {
            let mut b = Bitmap::new();
            for p in parts {
                for i in 0..p.len() {
                    b.push(p.validity.as_ref().is_none_or(|bm| bm.get(i)));
                }
            }
            Some(b)
        } else {
            None
        };
        macro_rules! extend_same {
            ($variant:ident, $ty:ty) => {{
                let mut out: Vec<$ty> = Vec::with_capacity(total);
                for p in parts {
                    match &p.data {
                        ColumnData::$variant(v) => out.extend_from_slice(v),
                        _ => return None,
                    }
                }
                Some(Column::new(ColumnData::$variant(out), validity))
            }};
        }
        match &parts[0].data {
            ColumnData::Int(_) => extend_same!(Int, i64),
            ColumnData::Float(_) => extend_same!(Float, f64),
            ColumnData::Bool(_) => extend_same!(Bool, bool),
            ColumnData::Date(_) => extend_same!(Date, i32),
            ColumnData::Dict { pool, .. } => {
                let mut codes: Vec<u32> = Vec::with_capacity(total);
                for p in parts {
                    match &p.data {
                        ColumnData::Dict { codes: c, pool: p2 } if Arc::ptr_eq(pool, p2) => codes.extend_from_slice(c),
                        _ => return None,
                    }
                }
                Some(Column::new(ColumnData::Dict { codes, pool: Arc::clone(pool) }, validity))
            }
            ColumnData::Str(_) | ColumnData::Mixed(_) => None,
        }
    }
}

fn gather_data<T: Copy>(src: &[T], indices: &[u32], pad: T) -> Vec<T> {
    indices.iter().map(|&i| if i == NULL_IDX { pad } else { src[i as usize] }).collect()
}

/// Incremental column construction from runtime values.
///
/// The representation is decided by the *first non-NULL value* pushed, not
/// by the declared type — so a column declared `Date` that actually carries
/// strings ends up `Mixed` (or `Dict` if every cell is a string) without
/// ever mangling a value. Leading NULLs are buffered and back-filled once
/// the representation is known; an all-NULL column types after the declared
/// `ColType` with an all-clear validity bitmap.
#[derive(Debug)]
pub struct ColumnBuilder {
    ty: ColType,
    /// NULLs seen before the first non-NULL value fixed the representation.
    leading_nulls: usize,
    state: BuilderState,
}

#[derive(Debug)]
enum BuilderState {
    /// No non-NULL value yet; representation undecided.
    Start,
    Int(Vec<i64>, Bitmap),
    Float(Vec<f64>, Bitmap),
    Bool(Vec<bool>, Bitmap),
    Date(Vec<i32>, Bitmap),
    Dict(Vec<u32>, StringPool, Bitmap),
    Str(Vec<String>, Bitmap),
    Mixed(Vec<Value>),
}

impl ColumnBuilder {
    pub fn new(ty: ColType) -> Self {
        ColumnBuilder { ty, leading_nulls: 0, state: BuilderState::Start }
    }

    pub fn push(&mut self, v: Value) {
        use BuilderState::*;
        if matches!(self.state, Start) {
            if v.is_null() {
                self.leading_nulls += 1;
                return;
            }
            self.state = self.fresh_state_for(&v);
        }
        match (&mut self.state, v) {
            (Int(data, bm), Value::Int(x)) => {
                data.push(x);
                bm.push(true);
            }
            (Int(data, bm), Value::Null) => {
                data.push(0);
                bm.push(false);
            }
            (Float(data, bm), Value::Float(x)) => {
                data.push(x);
                bm.push(true);
            }
            (Float(data, bm), Value::Null) => {
                data.push(0.0);
                bm.push(false);
            }
            (Bool(data, bm), Value::Bool(x)) => {
                data.push(x);
                bm.push(true);
            }
            (Bool(data, bm), Value::Null) => {
                data.push(false);
                bm.push(false);
            }
            (Date(data, bm), Value::Date(x)) => {
                data.push(x);
                bm.push(true);
            }
            (Date(data, bm), Value::Null) => {
                data.push(0);
                bm.push(false);
            }
            (Dict(codes, pool, bm), Value::Str(s)) => match pool.intern(&s) {
                Some(code) => {
                    codes.push(code);
                    bm.push(true);
                }
                None => {
                    // Dictionary overflow: fall back to plain strings.
                    self.overflow_dict_to_str();
                    self.push(Value::Str(s));
                }
            },
            (Dict(codes, _, bm), Value::Null) => {
                codes.push(0);
                bm.push(false);
            }
            (Str(data, bm), Value::Str(s)) => {
                data.push(s);
                bm.push(true);
            }
            (Str(data, bm), Value::Null) => {
                data.push(String::new());
                bm.push(false);
            }
            (Mixed(data), v) => data.push(v),
            // Type mismatch: demote everything built so far to Mixed and
            // keep the value exactly as it came.
            (_, v) => {
                self.demote_to_mixed();
                self.push(v);
            }
        }
    }

    fn fresh_state_for(&self, v: &Value) -> BuilderState {
        let mut bm = Bitmap::new();
        for _ in 0..self.leading_nulls {
            bm.push(false);
        }
        let n = self.leading_nulls;
        match v {
            Value::Int(_) => BuilderState::Int(vec![0; n], bm),
            Value::Float(_) => BuilderState::Float(vec![0.0; n], bm),
            Value::Bool(_) => BuilderState::Bool(vec![false; n], bm),
            Value::Date(_) => BuilderState::Date(vec![0; n], bm),
            Value::Str(_) => BuilderState::Dict(vec![0; n], StringPool::new(), bm),
            Value::Null => unreachable!("handled by the caller"),
        }
    }

    fn overflow_dict_to_str(&mut self) {
        if let BuilderState::Dict(codes, pool, bm) = std::mem::replace(&mut self.state, BuilderState::Start) {
            let data: Vec<String> = codes
                .iter()
                .enumerate()
                .map(|(i, &c)| if bm.get(i) { pool.get(c).to_string() } else { String::new() })
                .collect();
            self.state = BuilderState::Str(data, bm);
        }
    }

    fn demote_to_mixed(&mut self) {
        let col = std::mem::replace(self, ColumnBuilder::new(self.ty)).finish();
        let values: Vec<Value> = (0..col.len()).map(|i| col.value(i)).collect();
        self.state = BuilderState::Mixed(values);
    }

    pub fn finish(self) -> Column {
        use BuilderState::*;
        let finish_typed = |data: ColumnData, bm: Bitmap| {
            let validity = if bm.all_set() { None } else { Some(bm) };
            Column::new(data, validity)
        };
        match self.state {
            Start => {
                // Nothing but NULLs (or nothing at all): type after the
                // declared schema type.
                let mut c = Column::empty(self.ty);
                if self.leading_nulls > 0 {
                    c = Column::nulls_typed(&c.data, self.leading_nulls);
                }
                c
            }
            Int(d, bm) => finish_typed(ColumnData::Int(d), bm),
            Float(d, bm) => finish_typed(ColumnData::Float(d), bm),
            Bool(d, bm) => finish_typed(ColumnData::Bool(d), bm),
            Date(d, bm) => finish_typed(ColumnData::Date(d), bm),
            Dict(codes, pool, bm) => finish_typed(ColumnData::Dict { codes, pool: Arc::new(pool) }, bm),
            Str(d, bm) => finish_typed(ColumnData::Str(d), bm),
            Mixed(d) => Column::new(ColumnData::Mixed(d), None),
        }
    }
}

impl Column {
    /// A column of `len` NULL slots with the same representation as `like`.
    fn nulls_typed(like: &ColumnData, len: usize) -> Column {
        let mut bm = Bitmap::new();
        for _ in 0..len {
            bm.push(false);
        }
        let data = match like {
            ColumnData::Int(_) => ColumnData::Int(vec![0; len]),
            ColumnData::Float(_) => ColumnData::Float(vec![0.0; len]),
            ColumnData::Bool(_) => ColumnData::Bool(vec![false; len]),
            ColumnData::Date(_) => ColumnData::Date(vec![0; len]),
            ColumnData::Dict { pool, .. } => ColumnData::Dict { codes: vec![0; len], pool: Arc::clone(pool) },
            ColumnData::Str(_) => ColumnData::Str(vec![String::new(); len]),
            ColumnData::Mixed(_) => return Column::new(ColumnData::Mixed(vec![Value::Null; len]), None),
        };
        Column::new(data, Some(bm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(ty: ColType, values: Vec<Value>) -> Column {
        let mut b = ColumnBuilder::new(ty);
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    #[test]
    fn typed_roundtrip_preserves_values() {
        let vals = vec![Value::Int(3), Value::Null, Value::Int(-7)];
        let c = build(ColType::Integer, vals.clone());
        assert!(matches!(c.data(), ColumnData::Int(_)));
        assert_eq!((0..c.len()).map(|i| c.value(i)).collect::<Vec<_>>(), vals);
        assert!(c.is_null(1));
    }

    #[test]
    fn strings_dictionary_encode_and_share_pool_on_gather() {
        let c = build(
            ColType::Text,
            vec![Value::Str("Spain".into()), Value::Str("France".into()), Value::Str("Spain".into())],
        );
        let ColumnData::Dict { codes, pool } = c.data() else { panic!("expected dict") };
        assert_eq!(codes[0], codes[2], "repeated strings share a code");
        assert_eq!(pool.len(), 2);
        let g = c.gather(&[2, 0]);
        let ColumnData::Dict { pool: gpool, .. } = g.data() else { panic!("gather keeps dict") };
        assert!(Arc::ptr_eq(pool, gpool), "gather shares the pool, no string copied");
        assert_eq!(g.value(0), Value::Str("Spain".into()));
    }

    #[test]
    fn dict_overflow_falls_back_to_plain_strings() {
        let mut b = ColumnBuilder::new(ColType::Text);
        for i in 0..(DICT_MAX + 10) {
            b.push(Value::Str(format!("s{i}")));
        }
        let c = b.finish();
        assert!(matches!(c.data(), ColumnData::Str(_)), "dictionary overflow demotes to plain strings");
        assert_eq!(c.len(), DICT_MAX + 10);
        assert_eq!(c.value(DICT_MAX + 9), Value::Str(format!("s{}", DICT_MAX + 9)));
        assert_eq!(c.value(0), Value::Str("s0".into()));
    }

    #[test]
    fn mixed_types_demote_and_preserve_exact_values() {
        // A declared Date column carrying dirty text: the row engine keeps
        // the exact values, and so must the columnar one.
        let vals = vec![Value::date(1995, 6, 17), Value::Str("not-a-date".into()), Value::Null];
        let c = build(ColType::Date, vals.clone());
        assert!(matches!(c.data(), ColumnData::Mixed(_)));
        assert_eq!((0..c.len()).map(|i| c.value(i)).collect::<Vec<_>>(), vals);
    }

    #[test]
    fn all_null_column_types_after_declared_type() {
        let c = build(ColType::Decimal, vec![Value::Null, Value::Null]);
        assert!(matches!(c.data(), ColumnData::Float(_)));
        assert_eq!(c.len(), 2);
        assert!(c.is_null(0) && c.is_null(1));
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn leading_nulls_backfill_into_the_chosen_representation() {
        let c = build(ColType::Text, vec![Value::Null, Value::Null, Value::Str("x".into())]);
        assert!(matches!(c.data(), ColumnData::Dict { .. }));
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(2), Value::Str("x".into()));
    }

    #[test]
    fn gather_with_null_sentinel_pads() {
        let c = build(ColType::Integer, vec![Value::Int(10), Value::Int(20)]);
        let g = c.gather(&[1, NULL_IDX, 0]);
        assert_eq!((0..3).map(|i| g.value(i)).collect::<Vec<_>>(), vec![Value::Int(20), Value::Null, Value::Int(10)]);
    }

    #[test]
    fn concat_extends_matching_representations() {
        let a = build(ColType::Integer, vec![Value::Int(1), Value::Null]);
        let b = build(ColType::Integer, vec![Value::Int(3)]);
        let c = Column::concat(&[&a, &b], ColType::Integer);
        assert!(matches!(c.data(), ColumnData::Int(_)));
        assert_eq!((0..3).map(|i| c.value(i)).collect::<Vec<_>>(), vec![Value::Int(1), Value::Null, Value::Int(3)]);
    }

    #[test]
    fn concat_unifies_disagreeing_representations() {
        let a = build(ColType::Text, vec![Value::Str("a".into())]);
        let b = build(ColType::Text, vec![Value::Str("b".into())]); // different pool
        let c = Column::concat(&[&a, &b], ColType::Text);
        assert_eq!(c.value(0), Value::Str("a".into()));
        assert_eq!(c.value(1), Value::Str("b".into()));

        let d = build(ColType::Integer, vec![Value::Int(1)]);
        let e = build(ColType::Integer, vec![Value::Float(2.5)]);
        let f = Column::concat(&[&d, &e], ColType::Integer);
        assert!(matches!(f.data(), ColumnData::Mixed(_)), "true type mix demotes");
        assert_eq!(f.value(1), Value::Float(2.5));
    }

    #[test]
    fn write_display_matches_value_display() {
        let vals = vec![
            Value::Int(-3),
            Value::Float(2.5),
            Value::Str("Spain".into()),
            Value::Bool(true),
            Value::date(1995, 6, 17),
            Value::Null,
        ];
        for v in vals {
            let c = build(ColType::Text, vec![v.clone()]);
            let mut s = String::new();
            c.write_display(0, &mut s).unwrap();
            assert_eq!(s, v.to_string(), "display mismatch for {v:?}");
        }
    }

    #[test]
    fn bitmap_push_get_count() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.get(0) && !b.get(1) && b.get(129) && !b.get(128));
        assert_eq!(b.count_set(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(!b.all_set());
        assert!(Bitmap::all_valid(130).all_set());
    }
}
