//! Fixed-width key encoding for hash joins and grouped aggregation.
//!
//! The row engine hashed `Vec<Value>` keys — one heap-allocated clone per
//! probe row. Here every key column is encoded into one `u64` word chosen
//! per column *pair* so that word equality coincides exactly with
//! [`Value`](crate::Value) equality:
//!
//! - `Int` vs `Int` compares exactly, so the word is the raw `i64` bits;
//! - any numeric pair involving a `Float` compares through `f64` bits
//!   (`Value` equality and hashing already promote `Int` to `f64` there);
//! - `Date`/`Bool` pairs widen the payload;
//! - string pairs resolve the probe side to the build side's dictionary
//!   codes — a probe string absent from the build dictionary can never
//!   match and encodes as a [`MISS`] sentinel;
//! - a pair whose runtime types can never be equal (`Int` vs `Str`, say)
//!   makes the whole join matchless without touching a single row;
//! - a `Mixed` column (dirty data) falls back to `Value`-row keys.
//!
//! NULL key slots are tracked per row: joins never match them, while
//! aggregation groups them (NULL == NULL for grouping), which is why group
//! keys carry an extra null-mask word.

use crate::column::{Column, ColumnData, StringPool};
use std::collections::HashMap;

/// Word marking a probe-side string with no build-side dictionary code.
/// Real codes are `< DICT_MAX`, so this never collides.
const MISS: u64 = u64::MAX;

/// Encoded keys for one side of a join (or one relation's group-by):
/// `width` words per row, row-major, plus a per-row "usable" flag.
pub(crate) struct SideKeys {
    pub words: Vec<u64>,
    /// False when the row's key can never match (a NULL slot or a string
    /// missing from the build dictionary).
    pub ok: Vec<bool>,
    pub width: usize,
}

impl SideKeys {
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.width..(i + 1) * self.width]
    }
}

pub(crate) enum JoinKeyPlan {
    /// Some key column pair can never hold equal values: no row matches.
    Never,
    /// A `Mixed` column is involved: fall back to `Value`-row keys.
    Values,
    Encoded {
        left: SideKeys,
        right: SideKeys,
    },
}

/// Plans fixed-width keys for `left ⋈ right` over the picked key columns
/// (pairwise, in key order). `right` is the build side: string words are
/// its dictionary codes. Taking columns instead of whole relations lets a
/// late-materializing caller gather only the key columns.
pub(crate) fn plan_join_keys(l_cols: &[&Column], left_len: usize, r_cols: &[&Column], right_len: usize) -> JoinKeyPlan {
    let width = l_cols.len();
    let mut lw = vec![0u64; left_len * width];
    let mut rw = vec![0u64; right_len * width];
    let mut l_ok = vec![true; left_len];
    let mut r_ok = vec![true; right_len];
    for (j, (&l, &r)) in l_cols.iter().zip(r_cols).enumerate() {
        match classify(l.data(), r.data()) {
            Pair::Values => return JoinKeyPlan::Values,
            Pair::Never => return JoinKeyPlan::Never,
            Pair::Exact => {
                encode_exact(l, j, width, &mut lw, &mut l_ok);
                encode_exact(r, j, width, &mut rw, &mut r_ok);
            }
            Pair::F64 => {
                encode_f64(l, j, width, &mut lw, &mut l_ok);
                encode_f64(r, j, width, &mut rw, &mut r_ok);
            }
            Pair::Str => {
                let resolve = build_str_words(r, j, width, &mut rw, &mut r_ok);
                probe_str_words(l, &resolve, j, width, &mut lw, &mut l_ok);
            }
        }
    }
    JoinKeyPlan::Encoded {
        left: SideKeys { words: lw, ok: l_ok, width },
        right: SideKeys { words: rw, ok: r_ok, width },
    }
}

pub(crate) enum GroupKeyPlan {
    /// A `Mixed` group column: fall back to `Value`-row keys.
    Values,
    /// One word per group column, plus — only when some group column is
    /// nullable — a trailing null-mask word (bit `j` set = column `j` is
    /// NULL in that row). NULL payload words are normalized to zero so all
    /// NULLs land in one group. All-non-null inputs skip the mask word
    /// entirely, which drops common 1–2 column keys a width class.
    Encoded(SideKeys),
}

/// Plans fixed-width group keys over the picked group columns. Within a
/// single column, word equality coincides with `Value` equality: an `Int`
/// column never meets a `Float` cross-type (that would be `Mixed`), and a
/// dictionary column's equal strings always share a code.
pub(crate) fn plan_group_keys(g_cols: &[&Column], n: usize) -> GroupKeyPlan {
    let nullable = g_cols.iter().any(|c| c.validity().is_some());
    let width = g_cols.len() + usize::from(nullable);
    let mut words = vec![0u64; n * width];
    for (j, &c) in g_cols.iter().enumerate() {
        match c.data() {
            ColumnData::Mixed(_) => return GroupKeyPlan::Values,
            ColumnData::Int(v) => stride_write(v, j, width, &mut words, |x| x as u64),
            ColumnData::Float(v) => stride_write(v, j, width, &mut words, |x| x.to_bits()),
            ColumnData::Date(v) => stride_write(v, j, width, &mut words, |x| x as i64 as u64),
            ColumnData::Bool(v) => stride_write(v, j, width, &mut words, |x| x as u64),
            ColumnData::Dict { codes, .. } => stride_write(codes, j, width, &mut words, |c| c as u64),
            ColumnData::Str(v) => {
                // Dictionary-overflow column: intern on the fly so equal
                // strings share a word (id by first occurrence).
                let mut ids: HashMap<&str, u64> = HashMap::new();
                for (i, s) in v.iter().enumerate() {
                    let next = ids.len() as u64;
                    words[i * width + j] = *ids.entry(s.as_str()).or_insert(next);
                }
            }
        }
        if let Some(bm) = c.validity() {
            for i in 0..n {
                if !bm.get(i) {
                    words[i * width + j] = 0;
                    words[i * width + width - 1] |= 1 << j;
                }
            }
        }
    }
    GroupKeyPlan::Encoded(SideKeys { words, ok: Vec::new(), width })
}

enum Pair {
    /// Raw payload bits compare exactly (Int/Int, Date/Date, Bool/Bool).
    Exact,
    /// Compare through `f64` bits (a numeric pair involving Float).
    F64,
    /// String pair: build-side dictionary codes.
    Str,
    /// Runtime types that are never equal: the join is matchless.
    Never,
    /// Mixed (dirty) column: no fixed-width encoding exists.
    Values,
}

fn classify(l: &ColumnData, r: &ColumnData) -> Pair {
    use ColumnData::*;
    match (l, r) {
        (Mixed(_), _) | (_, Mixed(_)) => Pair::Values,
        (Int(_), Int(_)) => Pair::Exact,
        (Int(_) | Float(_), Int(_) | Float(_)) => Pair::F64,
        (Date(_), Date(_)) => Pair::Exact,
        (Bool(_), Bool(_)) => Pair::Exact,
        (Dict { .. } | Str(_), Dict { .. } | Str(_)) => Pair::Str,
        _ => Pair::Never,
    }
}

/// Writes `f(src[i])` to `out[i * width + j]`. Single-column keys
/// (`width == 1`) take a dense loop the compiler can vectorize; the strided
/// multi-column form defeats autovectorization because `width` is runtime.
#[inline]
fn stride_write<T: Copy>(src: &[T], j: usize, width: usize, out: &mut [u64], f: impl Fn(T) -> u64) {
    if width == 1 {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = f(x);
        }
    } else {
        for (i, &x) in src.iter().enumerate() {
            out[i * width + j] = f(x);
        }
    }
}

fn encode_exact(c: &Column, j: usize, width: usize, out: &mut [u64], ok: &mut [bool]) {
    match c.data() {
        ColumnData::Int(v) => stride_write(v, j, width, out, |x| x as u64),
        ColumnData::Date(v) => stride_write(v, j, width, out, |x| x as i64 as u64),
        ColumnData::Bool(v) => stride_write(v, j, width, out, |x| x as u64),
        _ => unreachable!("classified Exact"),
    }
    mask_nulls(c, ok);
}

fn encode_f64(c: &Column, j: usize, width: usize, out: &mut [u64], ok: &mut [bool]) {
    match c.data() {
        ColumnData::Int(v) => stride_write(v, j, width, out, |x| (x as f64).to_bits()),
        ColumnData::Float(v) => stride_write(v, j, width, out, |x| x.to_bits()),
        _ => unreachable!("classified F64"),
    }
    mask_nulls(c, ok);
}

/// Encodes the build side's string words and returns a resolver mapping a
/// probe string to the build word, if it exists on the build side.
fn build_str_words<'a>(c: &'a Column, j: usize, width: usize, out: &mut [u64], ok: &mut [bool]) -> StrResolver<'a> {
    let resolver = match c.data() {
        ColumnData::Dict { codes, pool } => {
            stride_write(codes, j, width, out, |code| code as u64);
            StrResolver::Pool(pool)
        }
        ColumnData::Str(v) => {
            let mut ids: HashMap<&str, u64> = HashMap::new();
            for (i, s) in v.iter().enumerate() {
                let next = ids.len() as u64;
                out[i * width + j] = *ids.entry(s.as_str()).or_insert(next);
            }
            StrResolver::Map(ids)
        }
        _ => unreachable!("classified Str"),
    };
    mask_nulls(c, ok);
    resolver
}

enum StrResolver<'a> {
    Pool(&'a StringPool),
    Map(HashMap<&'a str, u64>),
}

impl StrResolver<'_> {
    fn resolve(&self, s: &str) -> Option<u64> {
        match self {
            StrResolver::Pool(p) => p.code_of(s).map(u64::from),
            StrResolver::Map(m) => m.get(s).copied(),
        }
    }
}

fn probe_str_words(c: &Column, resolve: &StrResolver<'_>, j: usize, width: usize, out: &mut [u64], ok: &mut [bool]) {
    match c.data() {
        ColumnData::Dict { codes, pool } => {
            // Translate per distinct code, not per row.
            let translated: Vec<u64> =
                (0..pool.len() as u32).map(|code| resolve.resolve(pool.get(code)).unwrap_or(MISS)).collect();
            for (i, &code) in codes.iter().enumerate() {
                let w = translated[code as usize];
                out[i * width + j] = w;
                if w == MISS {
                    ok[i] = false;
                }
            }
        }
        ColumnData::Str(v) => {
            for (i, s) in v.iter().enumerate() {
                match resolve.resolve(s) {
                    Some(w) => out[i * width + j] = w,
                    None => {
                        out[i * width + j] = MISS;
                        ok[i] = false;
                    }
                }
            }
        }
        _ => unreachable!("classified Str"),
    }
    mask_nulls(c, ok);
}

fn mask_nulls(c: &Column, ok: &mut [bool]) {
    if let Some(bm) = c.validity() {
        for (i, slot) in ok.iter_mut().enumerate() {
            if !bm.get(i) {
                *slot = false;
            }
        }
    }
}

/// Packs a fixed-width word slice into the narrowest hashable key type.
/// The executor dispatches on width so one- and two-word keys (the common
/// cases) hash without heap allocation.
pub(crate) fn pack2(w: &[u64]) -> u128 {
    (w[0] as u128) << 64 | w[1] as u128
}

/// Packs a three- or four-word key into an inline array (zero-padded), so
/// mid-width group keys hash without a per-row heap allocation.
pub(crate) fn pack4(w: &[u64]) -> [u64; 4] {
    let mut k = [0u64; 4];
    k[..w.len()].copy_from_slice(w);
    k
}

/// Hasher state for the engine's internal hash tables (join builds, group
/// indexes, upsert key indexes): a multiply-rotate fold per word. The keys
/// hashed here are encoded words or engine-generated rows, so SipHash's
/// flood resistance buys nothing while costing ~20 ns per probe — on a
/// 60k-row probe side that is the join. Not for maps keyed by untrusted
/// external input.
pub(crate) struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn fold(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(26) ^ w).wrapping_mul(FIB);
    }
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // hashbrown derives the bucket index from the low bits and the
        // control byte from the top bits; the xor-fold feeds entropy to both.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(w) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FastHasher`]; plug into
/// [`FastMap`]/[`FastSet`] via `Default`.
#[derive(Default, Clone, Copy)]
pub(crate) struct FastHash;

impl std::hash::BuildHasher for FastHash {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher(0)
    }
}

pub(crate) type FastMap<K, V> = HashMap<K, V, FastHash>;
pub(crate) type FastSet<T> = std::collections::HashSet<T, FastHash>;

/// Fibonacci multiplicative constant (the golden-ratio word) spreading key
/// entropy into the high bits.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// The radix partition of a hashed key word: the top `log2(npart)` bits
/// after a Fibonacci multiply. Hashing before taking bits matters — the raw
/// low bits of common keys are degenerate (the `f64` bit pattern of an
/// integral float has an all-zero low mantissa; dictionary codes are dense
/// from zero), and the multiply redistributes them. `npart` must be a power
/// of two; a single partition short-circuits (and keeps the shift in
/// range).
pub(crate) fn radix_of(h: u64, npart: usize) -> usize {
    debug_assert!(npart.is_power_of_two());
    if npart == 1 {
        return 0;
    }
    (h.wrapping_mul(FIB) >> (64 - npart.trailing_zeros())) as usize
}

/// Folds a packed two-word key into one word for partitioning.
pub(crate) fn fold128(k: u128) -> u64 {
    (k as u64) ^ ((k >> 64) as u64).wrapping_mul(0x100_0000_01b3)
}

/// Folds an arbitrary-width key into one word for partitioning (FNV-style).
pub(crate) fn fold_words(w: &[u64]) -> u64 {
    w.iter().fold(0xcbf2_9ce4_8422_2325, |acc, &x| (acc ^ x).wrapping_mul(0x100_0000_01b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::relation::Relation;
    use crate::value::Value;
    use quarry_etl::{ColType, Column as SchemaCol, Schema};

    /// Picks every column of `r` as a key column, in order.
    fn keycols(r: &Relation) -> Vec<&Column> {
        (0..r.columns().len()).map(|i| r.column(i).as_ref()).collect()
    }

    fn rel(cols: Vec<(&str, ColType, Vec<Value>)>) -> Relation {
        let schema = Schema::new(cols.iter().map(|(n, ty, _)| SchemaCol::new(*n, *ty)).collect());
        let columns = cols
            .into_iter()
            .map(|(_, ty, vals)| {
                let mut b = ColumnBuilder::new(ty);
                for v in vals {
                    b.push(v);
                }
                std::sync::Arc::new(b.finish())
            })
            .collect();
        Relation::from_columns(schema, columns)
    }

    #[test]
    fn int_int_pairs_encode_exactly() {
        let l = rel(vec![("k", ColType::Integer, vec![Value::Int(-1), Value::Int(7), Value::Null])]);
        let r = rel(vec![("k", ColType::Integer, vec![Value::Int(7)])]);
        let JoinKeyPlan::Encoded { left, right } = plan_join_keys(&keycols(&l), l.len(), &keycols(&r), r.len()) else {
            panic!("expected encoded plan")
        };
        assert_eq!(left.row(1), right.row(0));
        assert_ne!(left.row(0), right.row(0));
        assert!(!left.ok[2], "NULL key is unmatched");
    }

    #[test]
    fn int_float_pairs_agree_with_value_equality() {
        let l = rel(vec![("k", ColType::Integer, vec![Value::Int(5), Value::Int(6)])]);
        let r = rel(vec![("k", ColType::Decimal, vec![Value::Float(5.0), Value::Float(6.5)])]);
        let JoinKeyPlan::Encoded { left, right } = plan_join_keys(&keycols(&l), l.len(), &keycols(&r), r.len()) else {
            panic!("expected encoded plan")
        };
        assert_eq!(left.row(0), right.row(0), "Int(5) == Float(5.0)");
        assert_ne!(left.row(1), right.row(1), "Int(6) != Float(6.5)");
    }

    #[test]
    fn string_probe_resolves_to_build_codes_or_misses() {
        let l = rel(vec![("s", ColType::Text, vec![Value::Str("a".into()), Value::Str("zzz".into())])]);
        let r = rel(vec![("s", ColType::Text, vec![Value::Str("b".into()), Value::Str("a".into())])]);
        let JoinKeyPlan::Encoded { left, right } = plan_join_keys(&keycols(&l), l.len(), &keycols(&r), r.len()) else {
            panic!("expected encoded plan")
        };
        assert_eq!(left.row(0), right.row(1), "same string, same word");
        assert!(!left.ok[1], "string absent from build side can never match");
    }

    #[test]
    fn incompatible_types_never_match_and_mixed_falls_back() {
        let ints = rel(vec![("k", ColType::Integer, vec![Value::Int(1)])]);
        let strs = rel(vec![("k", ColType::Text, vec![Value::Str("1".into())])]);
        assert!(matches!(plan_join_keys(&keycols(&ints), ints.len(), &keycols(&strs), strs.len()), JoinKeyPlan::Never));

        let mixed = rel(vec![("k", ColType::Integer, vec![Value::Int(1), Value::Str("x".into())])]);
        assert!(matches!(
            plan_join_keys(&keycols(&mixed), mixed.len(), &keycols(&ints), ints.len()),
            JoinKeyPlan::Values
        ));
    }

    #[test]
    fn group_keys_put_all_nulls_in_one_group() {
        let input = rel(vec![("g", ColType::Integer, vec![Value::Int(1), Value::Null, Value::Null, Value::Int(1)])]);
        let GroupKeyPlan::Encoded(keys) = plan_group_keys(&keycols(&input), input.len()) else {
            panic!("expected encoded plan")
        };
        assert_eq!(keys.width, 2);
        assert_eq!(keys.row(1), keys.row(2), "NULL groups with NULL");
        assert_eq!(keys.row(0), keys.row(3));
        assert_ne!(keys.row(0), keys.row(1));
    }

    #[test]
    fn fast_hash_is_deterministic_and_separates_strings() {
        use std::hash::{BuildHasher, Hash};
        let h = |v: &dyn Fn(&mut FastHasher)| {
            let mut hasher = FastHash.build_hasher();
            v(&mut hasher);
            std::hash::Hasher::finish(&hasher)
        };
        assert_eq!(h(&|s| 42u64.hash(s)), h(&|s| 42u64.hash(s)));
        assert_ne!(h(&|s| 42u64.hash(s)), h(&|s| 43u64.hash(s)));
        assert_ne!(h(&|s| ("ab", "c").hash(s)), h(&|s| ("a", "bc").hash(s)));
        assert_ne!(h(&|s| pack4(&[1, 2, 3]).hash(s)), h(&|s| pack4(&[1, 2, 4]).hash(s)));
        assert_eq!(h(&|s| pack4(&[1, 2, 3]).hash(s)), h(&|s| pack4(&[1, 2, 3, 0]).hash(s)));
    }

    #[test]
    fn plain_string_group_keys_intern_consistently() {
        let input = rel(vec![(
            "g",
            ColType::Text,
            vec![Value::Str("x".into()), Value::Str("y".into()), Value::Str("x".into())],
        )]);
        let GroupKeyPlan::Encoded(keys) = plan_group_keys(&keycols(&input), input.len()) else {
            panic!("expected encoded plan")
        };
        assert_eq!(keys.row(0), keys.row(2));
        assert_ne!(keys.row(0), keys.row(1));
    }
}
