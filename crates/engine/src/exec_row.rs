//! The retired row-at-a-time executor, preserved as a baseline.
//!
//! [`RowEngine`] is the engine's previous data plane: relations stored as
//! `Vec<Row>`, operators cloning `Value`s row by row, hash tables keyed on
//! `Value` rows. It exists for two reasons:
//!
//! 1. **Equivalence.** The columnar engine must be bit-identical to this one
//!    at any thread count; the row-vs-columnar equivalence suite runs both
//!    over randomized flows and compares outputs exactly.
//! 2. **Benchmarking.** The E13 row-vs-columnar series and the CI engine
//!    gate measure the columnar engine's speedup against this baseline.
//!
//! The executor here mirrors the old serial driver: operators run one after
//! another in topological order, each still morsel-parallel internally, so
//! float accumulation order matches the columnar engine's by construction.

use crate::catalog::Catalog;
use crate::eval::{eval_compiled, truthy, EvalError};
use crate::exec::{
    accumulate, compile, concat, finalize_state, merge_state, per_morsel, surrogate_of, try_concat, AggState,
    EngineError, OpTiming, RunReport,
};
use crate::relation::{Relation, Row};
use crate::value::Value;
use quarry_etl::{AggSpec, CompiledExpr, Flow, JoinKind, OpId, OpKind, Schema, UnboundColumn};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// A row-major relation: the baseline storage layout.
#[derive(Debug, Clone, Default)]
pub struct RowRel {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl RowRel {
    fn new(schema: Schema) -> Self {
        RowRel { schema, rows: Vec::new() }
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn col(&self, name: &str) -> usize {
        self.schema.index_of(name).unwrap_or_else(|| panic!("column `{name}` missing from {}", self.schema))
    }
}

/// The row-at-a-time execution engine. Owns its own row-major table store;
/// build one from a columnar [`Catalog`] with [`RowEngine::from_catalog`]
/// (the conversion happens up front, outside any timed region).
#[derive(Debug, Default)]
pub struct RowEngine {
    tables: BTreeMap<String, Arc<RowRel>>,
}

impl RowEngine {
    /// Materializes every catalog table into row-major storage.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let tables = catalog
            .table_names()
            .map(|name| {
                let t = catalog.get(name).expect("name comes from the catalog");
                (name.to_string(), Arc::new(RowRel { schema: t.schema.clone(), rows: t.to_rows() }))
            })
            .collect();
        RowEngine { tables }
    }

    /// One table, converted back to a columnar [`Relation`] for comparison
    /// against the columnar engine's output.
    pub fn table(&self, name: &str) -> Option<Relation> {
        self.tables.get(name).map(|t| Relation::with_rows(t.schema.clone(), t.rows.clone()))
    }

    /// All table names, sorted (the store is a BTreeMap).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Executes a flow serially over row-major storage, mirroring the
    /// columnar [`crate::Engine::run`] driver (same validation, same report
    /// shape, same morsel decomposition inside each operator).
    pub fn run(&mut self, flow: &Flow) -> Result<RunReport, EngineError> {
        let order = flow.topo_order()?;
        flow.schemas()?;
        let start = Instant::now();
        let mut results: HashMap<OpId, Arc<RowRel>> = HashMap::with_capacity(order.len());
        let mut report = RunReport::default();
        for id in order {
            let op = flow.op(id);
            let inputs: Vec<Arc<RowRel>> = flow.inputs_of(id).into_iter().map(|i| Arc::clone(&results[&i])).collect();
            let rows_in = inputs.iter().map(|r| r.len()).sum();
            let t0 = Instant::now();
            let out: Arc<RowRel> = match &op.kind {
                OpKind::Loader { table, key } => {
                    self.load(table, key, &inputs[0], &mut report)?;
                    Arc::clone(&inputs[0])
                }
                pure => self.execute_pure(&op.name, pure, &inputs)?,
            };
            let elapsed = t0.elapsed();
            report.rows_processed += out.len();
            report.timings.push(OpTiming {
                op: op.name.clone(),
                kind: op.kind.type_name(),
                rows_in,
                rows_out: out.len(),
                elapsed,
                worker: 0,
            });
            results.insert(id, out);
        }
        report.total = start.elapsed();
        Ok(report)
    }

    fn load(
        &mut self,
        table: &str,
        key: &[String],
        input: &Arc<RowRel>,
        report: &mut RunReport,
    ) -> Result<(), EngineError> {
        if key.is_empty() {
            match self.tables.get_mut(table) {
                Some(existing) => {
                    let existing = Arc::make_mut(existing);
                    if existing.schema.names().collect::<Vec<_>>() != input.schema.names().collect::<Vec<_>>() {
                        return Err(EngineError::LoadSchemaMismatch {
                            table: table.to_string(),
                            detail: format!("target is {}, input is {}", existing.schema, input.schema),
                        });
                    }
                    existing.rows.extend(input.rows.iter().cloned());
                }
                None => {
                    self.tables.insert(table.to_string(), Arc::clone(input));
                }
            }
        } else {
            self.upsert(table, input, key)
                .map_err(|detail| EngineError::LoadSchemaMismatch { table: table.to_string(), detail })?;
        }
        report.loaded.push((table.to_string(), input.len()));
        Ok(())
    }

    fn execute_pure(&self, name: &str, kind: &OpKind, inputs: &[Arc<RowRel>]) -> Result<Arc<RowRel>, EngineError> {
        let eval_err = |e: EvalError| EngineError::Eval { op: name.to_string(), error: e };
        match kind {
            OpKind::Datastore { datastore, schema } => {
                let table =
                    self.tables.get(datastore).cloned().ok_or_else(|| EngineError::UnknownTable(datastore.clone()))?;
                if *schema == table.schema {
                    return Ok(table);
                }
                let indices: Vec<usize> = schema
                    .columns
                    .iter()
                    .map(|c| {
                        table.schema.index_of(&c.name).ok_or_else(|| EngineError::SourceSchemaMismatch {
                            table: datastore.clone(),
                            column: c.name.clone(),
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let chunks = per_morsel(table.len(), |rg| {
                    table.rows[rg].iter().map(|r| indices.iter().map(|&i| r[i].clone()).collect()).collect()
                });
                Ok(Arc::new(RowRel { schema: schema.clone(), rows: concat(chunks) }))
            }
            OpKind::Extraction { columns } | OpKind::Projection { columns } => {
                let input = &inputs[0];
                let indices: Vec<usize> = columns.iter().map(|c| input.col(c)).collect();
                if indices.len() == input.schema.len() && indices.iter().enumerate().all(|(pos, &i)| pos == i) {
                    return Ok(Arc::clone(input));
                }
                let schema = input.schema.project(columns).expect("validated");
                let chunks = per_morsel(input.len(), |rg| {
                    input.rows[rg].iter().map(|r| indices.iter().map(|&i| r[i].clone()).collect()).collect()
                });
                Ok(Arc::new(RowRel { schema, rows: concat(chunks) }))
            }
            OpKind::Selection { predicate } => {
                let input = &inputs[0];
                let predicate = compile(predicate, &input.schema, name)?;
                let chunks = per_morsel(input.len(), |rg| {
                    let mut keep = Vec::new();
                    for r in &input.rows[rg] {
                        if truthy(&eval_compiled(&predicate, r)?) {
                            keep.push(r.clone());
                        }
                    }
                    Ok(keep)
                });
                Ok(Arc::new(RowRel { schema: input.schema.clone(), rows: try_concat(chunks).map_err(eval_err)? }))
            }
            OpKind::Derivation { column: _, expr } => {
                let input = &inputs[0];
                let schema = kind.output_schema(name, std::slice::from_ref(&input.schema))?;
                let expr = compile(expr, &input.schema, name)?;
                let chunks = per_morsel(input.len(), |rg| {
                    let mut out = Vec::with_capacity(rg.len());
                    for r in &input.rows[rg] {
                        let v = eval_compiled(&expr, r)?;
                        let mut row = Vec::with_capacity(r.len() + 1);
                        row.extend_from_slice(r);
                        row.push(v);
                        out.push(row);
                    }
                    Ok(out)
                });
                Ok(Arc::new(RowRel { schema, rows: try_concat(chunks).map_err(eval_err)? }))
            }
            OpKind::Join { kind: jk, left_on, right_on } => {
                Ok(Arc::new(row_hash_join(&inputs[0], &inputs[1], left_on, right_on, *jk)))
            }
            OpKind::Aggregation { group_by, aggregates } => {
                row_hash_aggregate(&inputs[0], group_by, aggregates, name).map(Arc::new).map_err(eval_err)
            }
            OpKind::Union => {
                let mut rows = inputs[0].rows.clone();
                let indices: Vec<usize> = inputs[0].schema.names().map(|n| inputs[1].col(n)).collect();
                if indices.iter().enumerate().all(|(pos, &i)| pos == i) {
                    rows.extend(inputs[1].rows.iter().cloned());
                } else {
                    rows.extend(inputs[1].rows.iter().map(|r| indices.iter().map(|&i| r[i].clone()).collect::<Row>()));
                }
                Ok(Arc::new(RowRel { schema: inputs[0].schema.clone(), rows }))
            }
            OpKind::Distinct => {
                let input = &inputs[0];
                let mut seen = std::collections::HashSet::with_capacity(input.len());
                let mut rows = Vec::new();
                for r in &input.rows {
                    if seen.insert(r) {
                        rows.push(r.clone());
                    }
                }
                Ok(Arc::new(RowRel { schema: input.schema.clone(), rows }))
            }
            OpKind::Sort { columns } => {
                let input = &inputs[0];
                let indices: Vec<usize> = columns.iter().map(|c| input.col(c)).collect();
                let mut order: Vec<usize> = (0..input.len()).collect();
                order.sort_by(|&a, &b| {
                    for &i in &indices {
                        let c = input.rows[a][i].total_cmp(&input.rows[b][i]);
                        if c != std::cmp::Ordering::Equal {
                            return c;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                let rows = order.into_iter().map(|i| input.rows[i].clone()).collect();
                Ok(Arc::new(RowRel { schema: input.schema.clone(), rows }))
            }
            OpKind::SurrogateKey { natural, output: _ } => {
                let input = &inputs[0];
                let schema = kind.output_schema(name, std::slice::from_ref(&input.schema))?;
                let indices: Vec<usize> = natural.iter().map(|c| input.col(c)).collect();
                let chunks = per_morsel(input.len(), |rg| {
                    input.rows[rg]
                        .iter()
                        .map(|r| {
                            let sk = surrogate_of(indices.iter().map(|&i| &r[i]));
                            let mut row = r.clone();
                            row.push(Value::Int(sk));
                            row
                        })
                        .collect()
                });
                Ok(Arc::new(RowRel { schema, rows: concat(chunks) }))
            }
            OpKind::Loader { .. } => unreachable!("loaders are executed by RowEngine::load"),
        }
    }

    /// Upsert-merge with in-place row mutation — the baseline's original
    /// formulation of what the columnar engine expresses as a merge plan.
    fn upsert(&mut self, table: &str, input: &RowRel, key: &[String]) -> Result<(), String> {
        if !self.tables.contains_key(table) {
            self.tables.insert(table.to_string(), Arc::new(RowRel::new(input.schema.clone())));
        }
        let existing = Arc::make_mut(self.tables.get_mut(table).expect("created above"));
        for c in &input.schema.columns {
            match existing.schema.column(&c.name) {
                Some(prev) if prev.ty != c.ty => {
                    return Err(format!("column `{}` is {} in the target but {} in the input", c.name, prev.ty, c.ty));
                }
                Some(_) => {}
                None => {
                    existing.schema.columns.push(c.clone());
                    for row in &mut existing.rows {
                        row.push(Value::Null);
                    }
                }
            }
        }
        let key_idx_target: Vec<usize> = key
            .iter()
            .map(|k| existing.schema.index_of(k).ok_or_else(|| format!("upsert key `{k}` missing from target")))
            .collect::<Result<_, _>>()?;
        let key_idx_input: Vec<usize> = key
            .iter()
            .map(|k| input.schema.index_of(k).ok_or_else(|| format!("upsert key `{k}` missing from input")))
            .collect::<Result<_, _>>()?;
        let mut index: HashMap<Row, usize> = existing
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| (key_idx_target.iter().map(|&c| r[c].clone()).collect::<Row>(), i))
            .collect();
        let positions: Vec<usize> =
            input.schema.columns.iter().map(|c| existing.schema.index_of(&c.name).expect("widened above")).collect();
        let width = existing.schema.len();
        for r in &input.rows {
            let k: Row = key_idx_input.iter().map(|&c| r[c].clone()).collect();
            match index.get(&k) {
                Some(&slot) => {
                    for (v, &pos) in r.iter().zip(&positions) {
                        existing.rows[slot][pos] = v.clone();
                    }
                }
                None => {
                    let mut row = vec![Value::Null; width];
                    for (v, &pos) in r.iter().zip(&positions) {
                        row[pos] = v.clone();
                    }
                    index.insert(k, existing.rows.len());
                    existing.rows.push(row);
                }
            }
        }
        Ok(())
    }
}

/// Row-at-a-time hash join: build and probe tables keyed on cloned `Value`
/// rows, morsel-partitioned exactly like the columnar join so the output
/// row order matches it bit for bit.
fn row_hash_join(left: &RowRel, right: &RowRel, left_on: &[String], right_on: &[String], kind: JoinKind) -> RowRel {
    let l_idx: Vec<usize> = left_on.iter().map(|c| left.col(c)).collect();
    let r_idx: Vec<usize> = right_on.iter().map(|c| right.col(c)).collect();
    let parts: Vec<HashMap<Row, Vec<usize>>> = per_morsel(right.len(), |rg| {
        let mut m: HashMap<Row, Vec<usize>> = HashMap::new();
        for i in rg {
            let r = &right.rows[i];
            let key: Row = r_idx.iter().map(|&c| r[c].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never match
            }
            m.entry(key).or_default().push(i);
        }
        m
    });
    let mut build: HashMap<Row, Vec<usize>> = HashMap::with_capacity(right.len());
    for part in parts {
        for (k, mut ids) in part {
            build.entry(k).or_default().append(&mut ids);
        }
    }
    let kept = quarry_etl::join_kept_right_indices(&right.schema, left_on, right_on);
    let mut schema = left.schema.clone();
    schema.columns.extend(kept.iter().map(|&i| right.schema.columns[i].clone()));
    let out_width = schema.len();
    let chunks = per_morsel(left.len(), |rg| {
        let mut out = Vec::new();
        let mut key: Row = Vec::with_capacity(l_idx.len());
        for l in &left.rows[rg] {
            key.clear();
            key.extend(l_idx.iter().map(|&c| l[c].clone()));
            let matches = if key.iter().any(Value::is_null) { None } else { build.get(key.as_slice()) };
            match matches {
                Some(ms) => {
                    for &m in ms {
                        let mut row = Vec::with_capacity(out_width);
                        row.extend_from_slice(l);
                        row.extend(kept.iter().map(|&i| right.rows[m][i].clone()));
                        out.push(row);
                    }
                }
                None => {
                    if kind == JoinKind::Left {
                        let mut row = Vec::with_capacity(out_width);
                        row.extend_from_slice(l);
                        row.extend(std::iter::repeat_n(Value::Null, kept.len()));
                        out.push(row);
                    }
                }
            }
        }
        out
    });
    RowRel { schema, rows: concat(chunks) }
}

/// One morsel's insertion-ordered aggregation table.
type LocalAggTable = Vec<(Row, Vec<AggState>)>;

/// Row-at-a-time two-phase aggregation: group keys are cloned `Value` rows,
/// measures evaluate per row; the morsel structure matches the columnar
/// engine's, so accumulation order — and therefore every float — agrees.
fn row_hash_aggregate(
    input: &RowRel,
    group_by: &[String],
    aggregates: &[AggSpec],
    op_name: &str,
) -> Result<RowRel, EvalError> {
    let schema = OpKind::Aggregation { group_by: group_by.to_vec(), aggregates: aggregates.to_vec() }
        .output_schema(op_name, std::slice::from_ref(&input.schema))
        .expect("validated before execution");
    let g_idx: Vec<usize> = group_by.iter().map(|c| input.col(c)).collect();
    let measures: Vec<CompiledExpr> = aggregates
        .iter()
        .map(|a| CompiledExpr::compile(&a.input, &input.schema).map_err(|UnboundColumn(c)| EvalError::UnknownColumn(c)))
        .collect::<Result<_, _>>()?;
    let fresh_states: Vec<AggState> = aggregates
        .iter()
        .map(|a| match a.function.to_ascii_uppercase().as_str() {
            "SUM" => AggState::Sum(0.0, false),
            "AVG" | "AVERAGE" => AggState::Avg(0.0, 0),
            "MIN" => AggState::Min(None),
            "MAX" => AggState::Max(None),
            _ => AggState::Count(0),
        })
        .collect();

    let locals: Vec<Result<LocalAggTable, EvalError>> = per_morsel(input.len(), |rg| {
        let mut index: HashMap<Row, usize> = HashMap::new();
        let mut groups: LocalAggTable = Vec::new();
        let mut key: Row = Vec::with_capacity(g_idx.len());
        for r in &input.rows[rg] {
            key.clear();
            key.extend(g_idx.iter().map(|&c| r[c].clone()));
            let slot = match index.get(key.as_slice()) {
                Some(&s) => s,
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key.clone(), fresh_states.clone()));
                    groups.len() - 1
                }
            };
            for (state, m) in groups[slot].1.iter_mut().zip(&measures) {
                accumulate(state, eval_compiled(m, r)?)?;
            }
        }
        Ok(groups)
    });

    let mut index: HashMap<Row, usize> = HashMap::new();
    let mut groups: Vec<(Row, Vec<AggState>)> = Vec::new();
    for local in locals {
        for (key, states) in local? {
            match index.get(&key) {
                Some(&slot) => {
                    for (into, from) in groups[slot].1.iter_mut().zip(states) {
                        merge_state(into, from);
                    }
                }
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, states));
                }
            }
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        groups.push((Vec::new(), fresh_states));
    }
    let rows = groups
        .into_iter()
        .map(|(mut key, states)| {
            for state in states {
                key.push(finalize_state(state));
            }
            key
        })
        .collect();
    Ok(RowRel { schema, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Engine;
    use quarry_etl::{parse_expr, ColType, Column};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.put(
            "lineitem",
            Relation::with_rows(
                Schema::new(vec![
                    Column::new("l_orderkey", ColType::Integer),
                    Column::new("l_extendedprice", ColType::Decimal),
                    Column::new("l_discount", ColType::Decimal),
                    Column::new("l_shipmode", ColType::Text),
                ]),
                (0..9000)
                    .map(|i| {
                        vec![
                            Value::Int(i % 700),
                            Value::Float(i as f64),
                            Value::Float((i % 10) as f64 / 100.0),
                            Value::Str(format!("MODE{}", i % 3)),
                        ]
                    })
                    .collect(),
            ),
        );
        c.put(
            "orders",
            Relation::with_rows(
                Schema::new(vec![Column::new("o_orderkey", ColType::Integer), Column::new("o_status", ColType::Text)]),
                (0..500).map(|i| vec![Value::Int(i), Value::Str(format!("S{}", i % 4))]).collect(),
            ),
        );
        c
    }

    fn flow() -> Flow {
        let mut f = Flow::new("t");
        let l = f
            .add_op(
                "L",
                OpKind::Datastore {
                    datastore: "lineitem".into(),
                    schema: Schema::new(vec![
                        Column::new("l_orderkey", ColType::Integer),
                        Column::new("l_extendedprice", ColType::Decimal),
                        Column::new("l_discount", ColType::Decimal),
                        Column::new("l_shipmode", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let o = f
            .add_op(
                "O",
                OpKind::Datastore {
                    datastore: "orders".into(),
                    schema: Schema::new(vec![
                        Column::new("o_orderkey", ColType::Integer),
                        Column::new("o_status", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let s = f.append(l, "SEL", OpKind::Selection { predicate: parse_expr("l_discount > 0.02").unwrap() }).unwrap();
        let j = f
            .add_op(
                "J",
                OpKind::Join {
                    kind: JoinKind::Left,
                    left_on: vec!["l_orderkey".into()],
                    right_on: vec!["o_orderkey".into()],
                },
            )
            .unwrap();
        f.connect(s, j).unwrap();
        f.connect(o, j).unwrap();
        let k = f
            .append(j, "SK", OpKind::SurrogateKey { natural: vec!["l_orderkey".into()], output: "sk".into() })
            .unwrap();
        let a = f
            .append(
                k,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec!["l_shipmode".into(), "o_status".into()],
                    aggregates: vec![
                        AggSpec::new("SUM", parse_expr("l_extendedprice * (1 - l_discount)").unwrap(), "rev"),
                        AggSpec::new("COUNT", parse_expr("1").unwrap(), "n"),
                        AggSpec::new("MIN", parse_expr("sk").unwrap(), "sk_lo"),
                    ],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        f
    }

    #[test]
    fn row_engine_is_bit_identical_to_columnar_engine() {
        let c = catalog();
        let mut row = RowEngine::from_catalog(&c);
        let mut columnar = Engine::new(c);
        let f = flow();
        let rr = row.run(&f).unwrap();
        let cr = columnar.run(&f).unwrap();
        assert_eq!(rr.rows_loaded("out"), cr.rows_loaded("out"));
        assert_eq!(rr.rows_processed, cr.rows_processed);
        let a = row.table("out").unwrap();
        let b = columnar.catalog.get("out").unwrap();
        assert_eq!(&a, b, "row and columnar engines must produce identical relations");
    }

    #[test]
    fn row_engine_upsert_matches_columnar_upsert() {
        let mut c = Catalog::new();
        c.put(
            "src",
            Relation::with_rows(
                Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Decimal)]),
                (0..200).map(|i| vec![Value::Int(i % 60), Value::Float(i as f64)]).collect(),
            ),
        );
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "src".into(),
                    schema: Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Decimal)]),
                },
            )
            .unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "dim".into(), key: vec!["k".into()] }).unwrap();
        let mut row = RowEngine::from_catalog(&c);
        let mut columnar = Engine::new(c);
        row.run(&f).unwrap();
        row.run(&f).unwrap();
        columnar.run(&f).unwrap();
        columnar.run(&f).unwrap();
        assert_eq!(&row.table("dim").unwrap(), columnar.catalog.get("dim").unwrap());
    }
}
