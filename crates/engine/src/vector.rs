//! Vectorized expression evaluation: `CompiledExpr` column-at-a-time.
//!
//! [`eval_vector`] evaluates one compiled expression over a set of rows of a
//! columnar relation and returns a [`Vek`] — either a constant or a freshly
//! materialized column aligned with the row set. Typed kernels handle the
//! hot shapes (numeric arithmetic and comparison, dictionary-string
//! equality, date-vs-literal slicers, boolean logic); everything else drops
//! to a scalar fallback that calls [`eval_compiled`] row by row, so the
//! semantics — NULL propagation, short-circuiting, exact error messages —
//! are those of the row engine by construction.
//!
//! The typed kernels are written as branch-free loops over contiguous typed
//! slices so LLVM autovectorizes them: the payload pass computes every lane
//! unconditionally (invalid slots are allowed to hold arbitrary data, see
//! [`Column`]), and NULL handling is a separate word-wise bitmap pass
//! ([`Bitmap::and_opt`]). Per-lane null checks survive only on shapes where
//! a NULL payload cannot be touched safely (plain-string comparisons over a
//! possibly-empty dictionary pool). Which path each kernel invocation took
//! is counted in [`crate::stats`] as `vectorized` vs `scalar_fallback`.
//!
//! One documented divergence: within a morsel, errors surface in
//! *operand-major* order (the whole left operand evaluates before the right
//! one), whereas the scalar path is row-major. Both are deterministic, and
//! the first-error-in-morsel-order rule across morsels is unchanged.

use crate::column::{contiguous_run, Bitmap, Column, ColumnBuilder, ColumnData};
use crate::eval::{arith, call_scalar, combine_logical, compare, eval_compiled, EvalError};
use crate::relation::Row;
use crate::stats;
use crate::value::{civil_from_days, Value};
use quarry_etl::{BinOp, ColType, CompiledExpr, UnOp};
use std::cmp::Ordering;
use std::ops::Range;
use std::sync::Arc;

/// The rows an evaluation covers: a contiguous morsel or an explicit subset
/// (absolute row indices, ascending).
#[derive(Debug, Clone)]
pub(crate) enum RowSel<'a> {
    Range(Range<usize>),
    Subset(&'a [u32]),
}

impl RowSel<'_> {
    pub(crate) fn len(&self) -> usize {
        match self {
            RowSel::Range(rg) => rg.len(),
            RowSel::Subset(s) => s.len(),
        }
    }

    /// Absolute row index of ordinal `k`.
    pub(crate) fn at(&self, k: usize) -> usize {
        match self {
            RowSel::Range(rg) => rg.start + k,
            RowSel::Subset(s) => s[k] as usize,
        }
    }
}

/// An evaluated vector: one value per selected row, or one constant for all
/// of them.
#[derive(Debug, Clone)]
pub(crate) enum Vek {
    Const(Value),
    Col(Arc<Column>),
}

impl Vek {
    /// The value at ordinal `k` (not an absolute row index).
    pub(crate) fn value(&self, k: usize) -> Value {
        match self {
            Vek::Const(v) => v.clone(),
            Vek::Col(c) => c.value(k),
        }
    }

    pub(crate) fn is_null(&self, k: usize) -> bool {
        match self {
            Vek::Const(v) => v.is_null(),
            Vek::Col(c) => c.is_null(k),
        }
    }

    /// Materializes the vector as a column of `n` rows.
    pub(crate) fn into_column(self, n: usize) -> Column {
        match self {
            Vek::Col(c) => Arc::try_unwrap(c).unwrap_or_else(|c| (*c).clone()),
            Vek::Const(v) => {
                let mut b = ColumnBuilder::new(ColType::Integer);
                for _ in 0..n {
                    b.push(v.clone());
                }
                b.finish()
            }
        }
    }
}

/// The input column restricted to the selected rows, sharing the original
/// when the selection covers it whole. A subset forming a contiguous
/// ascending run degrades to a slice (or a whole-column share) instead of an
/// element-wise gather.
pub(crate) fn gather_col(c: &Arc<Column>, rows: &RowSel) -> Arc<Column> {
    match rows {
        RowSel::Range(rg) if rg.start == 0 && rg.end == c.len() => Arc::clone(c),
        RowSel::Range(rg) => Arc::new(c.slice(rg.clone())),
        RowSel::Subset(idx) => match contiguous_run(idx) {
            Some(rg) if rg.start == 0 && rg.end == c.len() => Arc::clone(c),
            Some(rg) if rg.end <= c.len() => Arc::new(c.slice(rg)),
            _ => Arc::new(c.gather(idx)),
        },
    }
}

/// Evaluates `expr` over `rows` of `cols`, column-at-a-time.
pub(crate) fn eval_vector(expr: &CompiledExpr, cols: &[Arc<Column>], rows: &RowSel) -> Result<Vek, EvalError> {
    if rows.len() == 0 {
        // Zero rows evaluate nothing — no kernel may raise an error.
        return Ok(Vek::Const(Value::Null));
    }
    match expr {
        CompiledExpr::Col(i) => Ok(Vek::Col(gather_col(&cols[*i], rows))),
        CompiledExpr::Int(v) => Ok(Vek::Const(Value::Int(*v))),
        CompiledExpr::Float(v) => Ok(Vek::Const(Value::Float(*v))),
        CompiledExpr::Str(s) => Ok(Vek::Const(Value::Str(s.clone()))),
        CompiledExpr::Bool(b) => Ok(Vek::Const(Value::Bool(*b))),
        CompiledExpr::Null => Ok(Vek::Const(Value::Null)),
        CompiledExpr::Unary(op, e) => {
            let v = eval_vector(e, cols, rows)?;
            unary_kernel(*op, v, rows.len())
        }
        CompiledExpr::Binary(op, l, r) => {
            if matches!(op, BinOp::And | BinOp::Or) {
                return logical_kernel(*op, l, r, cols, rows);
            }
            let lv = eval_vector(l, cols, rows)?;
            let rv = eval_vector(r, cols, rows)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith_kernel(*op, &lv, &rv, rows.len()),
                _ => compare_kernel(*op, &lv, &rv, rows.len()),
            }
        }
        CompiledExpr::Call(upper, args) => {
            if matches!(upper.as_str(), "YEAR" | "MONTH" | "DAY") && args.len() == 1 {
                let v = eval_vector(&args[0], cols, rows)?;
                return date_extract_kernel(upper, v, rows.len());
            }
            scalar_fallback(expr, cols, rows)
        }
    }
}

/// Row-at-a-time fallback with exact scalar semantics: materializes only the
/// columns the expression references and calls [`eval_compiled`] per row.
fn scalar_fallback(expr: &CompiledExpr, cols: &[Arc<Column>], rows: &RowSel) -> Result<Vek, EvalError> {
    stats::count_scalar_fallback();
    let mut used = Vec::new();
    collect_used(expr, &mut used);
    let mut buf: Row = vec![Value::Null; cols.len()];
    let mut b = ColumnBuilder::new(ColType::Integer);
    for k in 0..rows.len() {
        let abs = rows.at(k);
        for &j in &used {
            buf[j] = cols[j].value(abs);
        }
        b.push(eval_compiled(expr, &buf)?);
    }
    Ok(Vek::Col(Arc::new(b.finish())))
}

pub(crate) fn collect_used(expr: &CompiledExpr, out: &mut Vec<usize>) {
    match expr {
        CompiledExpr::Col(i) if !out.contains(i) => out.push(*i),
        CompiledExpr::Col(_) => {}
        CompiledExpr::Unary(_, e) => collect_used(e, out),
        CompiledExpr::Binary(_, l, r) => {
            collect_used(l, out);
            collect_used(r, out);
        }
        CompiledExpr::Call(_, args) => {
            for a in args {
                collect_used(a, out);
            }
        }
        _ => {}
    }
}

/// Builds a column by applying exact scalar semantics per row.
fn map_unary(v: &Vek, n: usize, f: impl Fn(Value) -> Result<Value, EvalError>) -> Result<Vek, EvalError> {
    if let Vek::Const(c) = v {
        return f(c.clone()).map(Vek::Const);
    }
    stats::count_scalar_fallback();
    let mut b = ColumnBuilder::new(ColType::Integer);
    for k in 0..n {
        b.push(f(v.value(k))?);
    }
    Ok(Vek::Col(Arc::new(b.finish())))
}

fn map_binary(
    l: &Vek,
    r: &Vek,
    n: usize,
    f: impl Fn(Value, Value) -> Result<Value, EvalError>,
) -> Result<Vek, EvalError> {
    if let (Vek::Const(a), Vek::Const(b)) = (l, r) {
        return f(a.clone(), b.clone()).map(Vek::Const);
    }
    stats::count_scalar_fallback();
    let mut b = ColumnBuilder::new(ColType::Integer);
    for k in 0..n {
        b.push(f(l.value(k), r.value(k))?);
    }
    Ok(Vek::Col(Arc::new(b.finish())))
}

fn unary_kernel(op: UnOp, v: Vek, n: usize) -> Result<Vek, EvalError> {
    let scalar = |v: Value| match (op, v) {
        (_, Value::Null) => Ok(Value::Null),
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::Not, other) => Err(EvalError::Type(format!("NOT of non-boolean `{other}`"))),
        (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
        (UnOp::Neg, Value::Float(v)) => Ok(Value::Float(-v)),
        (UnOp::Neg, other) => Err(EvalError::Type(format!("negation of non-numeric `{other}`"))),
    };
    if let Vek::Col(c) = &v {
        let out = match (op, c.data()) {
            (UnOp::Not, ColumnData::Bool(bits)) => Some(ColumnData::Bool(bits.iter().map(|b| !b).collect())),
            (UnOp::Neg, ColumnData::Int(vs)) => Some(ColumnData::Int(vs.iter().map(|x| -x).collect())),
            (UnOp::Neg, ColumnData::Float(vs)) => Some(ColumnData::Float(vs.iter().map(|x| -x).collect())),
            _ => None,
        };
        if let Some(data) = out {
            stats::count_vectorized();
            return Ok(Vek::Col(Arc::new(Column::new(data, c.validity().cloned()))));
        }
    }
    map_unary(&v, n, scalar)
}

/// Numeric source view over a [`Vek`]; NULL handling stays with the caller.
#[derive(Clone, Copy)]
enum Num<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
    CI(i64),
    CF(f64),
}

impl Num<'_> {
    fn is_int(&self) -> bool {
        matches!(self, Num::I(_) | Num::CI(_))
    }
}

fn num_view(v: &Vek) -> Option<Num<'_>> {
    match v {
        Vek::Const(Value::Int(i)) => Some(Num::CI(*i)),
        Vek::Const(Value::Float(f)) => Some(Num::CF(*f)),
        Vek::Col(c) => match c.data() {
            ColumnData::Int(v) => Some(Num::I(v)),
            ColumnData::Float(v) => Some(Num::F(v)),
            _ => None,
        },
        _ => None,
    }
}

/// The validity bitmap a [`Vek`] contributes to a typed kernel's output
/// (`None` = all valid). Only meaningful for the typed views — `Mixed`
/// columns, which carry NULL inline, never reach a typed kernel.
fn vek_validity(v: &Vek) -> Option<&Bitmap> {
    match v {
        Vek::Col(c) => c.validity(),
        Vek::Const(_) => None,
    }
}

/// Integer lanes: a contiguous slice or a broadcast constant. The typed
/// kernels zip these with per-shape monomorphized closures so the four
/// slice/constant combinations each compile to a tight autovectorizable
/// loop.
#[derive(Clone, Copy)]
enum ILanes<'a> {
    S(&'a [i64]),
    C(i64),
}

/// Float lanes, same contract as [`ILanes`].
#[derive(Clone, Copy)]
enum FLanes<'a> {
    S(&'a [f64]),
    C(f64),
}

fn int_lanes<'a>(v: &Num<'a>) -> ILanes<'a> {
    match *v {
        Num::I(s) => ILanes::S(s),
        Num::CI(c) => ILanes::C(c),
        _ => unreachable!("guarded by is_int"),
    }
}

/// Float lanes of a numeric view; integer slices promote through `tmp` in
/// one separate (autovectorized) pass.
fn float_lanes<'a>(v: Num<'a>, tmp: &'a mut Vec<f64>) -> FLanes<'a> {
    match v {
        Num::F(s) => FLanes::S(s),
        Num::I(s) => {
            *tmp = s.iter().map(|&x| x as f64).collect();
            FLanes::S(&*tmp)
        }
        Num::CI(c) => FLanes::C(c as f64),
        Num::CF(c) => FLanes::C(c),
    }
}

fn zip_i64(n: usize, a: ILanes, b: ILanes, f: impl Fn(i64, i64) -> i64 + Copy) -> Vec<i64> {
    match (a, b) {
        (ILanes::S(x), ILanes::S(y)) => x.iter().zip(y).map(|(&p, &q)| f(p, q)).collect(),
        (ILanes::S(x), ILanes::C(c)) => x.iter().map(|&p| f(p, c)).collect(),
        (ILanes::C(c), ILanes::S(y)) => y.iter().map(|&q| f(c, q)).collect(),
        (ILanes::C(p), ILanes::C(q)) => vec![f(p, q); n],
    }
}

fn zip_f64(n: usize, a: FLanes, b: FLanes, f: impl Fn(f64, f64) -> f64 + Copy) -> Vec<f64> {
    match (a, b) {
        (FLanes::S(x), FLanes::S(y)) => x.iter().zip(y).map(|(&p, &q)| f(p, q)).collect(),
        (FLanes::S(x), FLanes::C(c)) => x.iter().map(|&p| f(p, c)).collect(),
        (FLanes::C(c), FLanes::S(y)) => y.iter().map(|&q| f(c, q)).collect(),
        (FLanes::C(p), FLanes::C(q)) => vec![f(p, q); n],
    }
}

fn zip_pred_i(n: usize, a: ILanes, b: ILanes, f: impl Fn(i64, i64) -> bool + Copy) -> Vec<bool> {
    match (a, b) {
        (ILanes::S(x), ILanes::S(y)) => x.iter().zip(y).map(|(&p, &q)| f(p, q)).collect(),
        (ILanes::S(x), ILanes::C(c)) => x.iter().map(|&p| f(p, c)).collect(),
        (ILanes::C(c), ILanes::S(y)) => y.iter().map(|&q| f(c, q)).collect(),
        (ILanes::C(p), ILanes::C(q)) => vec![f(p, q); n],
    }
}

/// Packs a per-lane predicate into validity words (bit set = keep valid).
fn pack_bool_words(v: &[bool]) -> Vec<u64> {
    v.chunks(64).map(|chunk| chunk.iter().enumerate().fold(0u64, |w, (b, &x)| w | ((x as u64) << b))).collect()
}

/// Packs `v[k] != 0.0` into validity words — the divisor-zero mask.
fn nonzero_mask_words(v: &[f64]) -> Vec<u64> {
    v.chunks(64).map(|chunk| chunk.iter().enumerate().fold(0u64, |w, (b, &x)| w | (((x != 0.0) as u64) << b))).collect()
}

/// A typed output assembled directly (no per-value enum round-trip). The
/// single choke point every typed kernel exits through, so it carries the
/// `vectorized` counter.
fn typed_out<T>(data: Vec<T>, nulls: Option<Bitmap>, wrap: impl Fn(Vec<T>) -> ColumnData) -> Vek {
    stats::count_vectorized();
    Vek::Col(Arc::new(Column::new(wrap(data), nulls)))
}

fn arith_kernel(op: BinOp, l: &Vek, r: &Vek, n: usize) -> Result<Vek, EvalError> {
    if matches!(l, Vek::Const(Value::Null)) || matches!(r, Vek::Const(Value::Null)) {
        return Ok(Vek::Const(Value::Null));
    }
    if let (Some(a), Some(b)) = (num_view(l), num_view(r)) {
        if let (Vek::Const(x), Vek::Const(y)) = (l, r) {
            // Constant folding; NULL operands were handled above.
            return arith(op, x, y).map(Vek::Const);
        }
        // Pass 1 computes every payload lane unconditionally (invalid slots
        // may hold arbitrary data); pass 2 ANDs the operand validity maps
        // word-wise.
        let nulls = Bitmap::and_opt(vek_validity(l), vek_validity(r), n);
        if a.is_int() && b.is_int() && !matches!(op, BinOp::Div) {
            let (ia, ib) = (int_lanes(&a), int_lanes(&b));
            let data = match op {
                BinOp::Add => zip_i64(n, ia, ib, |x, y| x.wrapping_add(y)),
                BinOp::Sub => zip_i64(n, ia, ib, |x, y| x.wrapping_sub(y)),
                BinOp::Mul => zip_i64(n, ia, ib, |x, y| x.wrapping_mul(y)),
                _ => unreachable!(),
            };
            return Ok(typed_out(data, nulls, ColumnData::Int));
        }
        // Mixed numeric (or any division): f64 lanes.
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        let fa = float_lanes(a, &mut ta);
        let fb = float_lanes(b, &mut tb);
        let data = match op {
            BinOp::Add => zip_f64(n, fa, fb, |x, y| x + y),
            BinOp::Sub => zip_f64(n, fa, fb, |x, y| x - y),
            BinOp::Mul => zip_f64(n, fa, fb, |x, y| x * y),
            BinOp::Div => zip_f64(n, fa, fb, |x, y| x / y),
            _ => unreachable!(),
        };
        let nulls = if matches!(op, BinOp::Div) {
            // Division by zero is NULL, matching the scalar path for both
            // the Int/Int and the float case: the payload lane holds the
            // IEEE ±inf/NaN, and a separate bitwise pass masks it invalid.
            let zero_mask = match fb {
                FLanes::C(c) => (c == 0.0).then(|| Bitmap::from_words(vec![0u64; n.div_ceil(64)], n)),
                FLanes::S(y) => Some(Bitmap::from_words(nonzero_mask_words(y), n)),
            };
            match zero_mask {
                Some(z) => Bitmap::and_opt(nulls.as_ref(), Some(&z), n),
                None => nulls,
            }
        } else {
            nulls
        };
        return Ok(typed_out(data, nulls, ColumnData::Float));
    }
    // Non-numeric somewhere: exact scalar semantics (NULL propagates before
    // the type check, errors keep their wording).
    map_binary(l, r, n, |a, b| {
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        arith(op, &a, &b)
    })
}

fn ord_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("comparison op"),
    }
}

/// String source view (dictionary, plain, or constant).
enum Strs<'a> {
    Dict(&'a [u32], &'a crate::column::StringPool),
    Plain(&'a [String]),
    Const(&'a str),
}

impl Strs<'_> {
    fn at(&self, k: usize) -> &str {
        match self {
            Strs::Dict(codes, pool) => pool.get(codes[k]),
            Strs::Plain(v) => &v[k],
            Strs::Const(s) => s,
        }
    }
}

fn str_view(v: &Vek) -> Option<Strs<'_>> {
    match v {
        Vek::Const(Value::Str(s)) => Some(Strs::Const(s)),
        Vek::Col(c) => match c.data() {
            ColumnData::Dict { codes, pool } => Some(Strs::Dict(codes, pool)),
            ColumnData::Str(v) => Some(Strs::Plain(v)),
            _ => None,
        },
        _ => None,
    }
}

/// Date source view (column of day counts or a constant date).
enum Dates<'a> {
    Col(&'a [i32]),
    Const(i32),
}

fn date_view(v: &Vek) -> Option<Dates<'_>> {
    match v {
        Vek::Const(Value::Date(d)) => Some(Dates::Const(*d)),
        Vek::Col(c) => match c.data() {
            ColumnData::Date(v) => Some(Dates::Col(v)),
            _ => None,
        },
        _ => None,
    }
}

/// The IEEE-754 total-order key of a float: integer comparison on keys is
/// exactly `f64::total_cmp`, which is what the scalar path uses. Turning
/// floats into keys in one pass turns float comparisons into the same
/// branch-free integer zips as the int path.
fn total_key(f: f64) -> i64 {
    let mut bits = f.to_bits() as i64;
    bits ^= (((bits >> 63) as u64) >> 1) as i64;
    bits
}

/// Comparison-key lanes: owned where a conversion pass materialized them.
enum KeyLanes {
    S(Vec<i64>),
    C(i64),
}

impl KeyLanes {
    fn lanes(&self) -> ILanes<'_> {
        match self {
            KeyLanes::S(v) => ILanes::S(v),
            KeyLanes::C(c) => ILanes::C(*c),
        }
    }
}

fn float_keys(f: FLanes) -> KeyLanes {
    match f {
        FLanes::S(v) => KeyLanes::S(v.iter().map(|&x| total_key(x)).collect()),
        FLanes::C(c) => KeyLanes::C(total_key(c)),
    }
}

fn date_keys(d: &Dates) -> KeyLanes {
    match d {
        Dates::Col(v) => KeyLanes::S(v.iter().map(|&x| x as i64).collect()),
        Dates::Const(c) => KeyLanes::C(*c as i64),
    }
}

/// Dispatches a comparison over integer lanes to a per-op monomorphized
/// branch-free zip.
fn pred_dispatch_i(op: BinOp, n: usize, a: ILanes, b: ILanes) -> Vec<bool> {
    match op {
        BinOp::Eq => zip_pred_i(n, a, b, |x, y| x == y),
        BinOp::Ne => zip_pred_i(n, a, b, |x, y| x != y),
        BinOp::Lt => zip_pred_i(n, a, b, |x, y| x < y),
        BinOp::Le => zip_pred_i(n, a, b, |x, y| x <= y),
        BinOp::Gt => zip_pred_i(n, a, b, |x, y| x > y),
        BinOp::Ge => zip_pred_i(n, a, b, |x, y| x >= y),
        _ => unreachable!("comparison op"),
    }
}

/// Per-lane comparison with NULL checks — the shape for string paths, where
/// a NULL slot's payload may index an empty dictionary pool and so cannot
/// be touched.
fn bool_compare_out(n: usize, l: &Vek, r: &Vek, ord_at: impl Fn(usize) -> Ordering, op: BinOp) -> Vek {
    let mut out = Vec::with_capacity(n);
    let mut bm = Bitmap::new();
    let mut any_null = false;
    for k in 0..n {
        if l.is_null(k) || r.is_null(k) {
            out.push(false);
            bm.push(false);
            any_null = true;
        } else {
            out.push(ord_matches(op, ord_at(k)));
            bm.push(true);
        }
    }
    typed_out(out, any_null.then_some(bm), ColumnData::Bool)
}

fn first_valid_row(l: &Vek, r: &Vek, n: usize) -> Option<usize> {
    (0..n).find(|&k| !l.is_null(k) && !r.is_null(k))
}

fn compare_kernel(op: BinOp, l: &Vek, r: &Vek, n: usize) -> Result<Vek, EvalError> {
    if matches!(l, Vek::Const(Value::Null)) || matches!(r, Vek::Const(Value::Null)) {
        return Ok(Vek::Const(Value::Null));
    }
    if let (Vek::Const(a), Vek::Const(b)) = (l, r) {
        // Constant folding; NULL operands were handled above.
        return Ok(Vek::Const(Value::Bool(ord_matches(op, compare(a, b)?))));
    }
    let nulls = Bitmap::and_opt(vek_validity(l), vek_validity(r), n);
    if let (Some(a), Some(b)) = (num_view(l), num_view(r)) {
        if a.is_int() && b.is_int() {
            let vals = pred_dispatch_i(op, n, int_lanes(&a), int_lanes(&b));
            return Ok(typed_out(vals, nulls, ColumnData::Bool));
        }
        // Mixed numeric: compare on total-order keys (see [`total_key`]).
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        let ka = float_keys(float_lanes(a, &mut ta));
        let kb = float_keys(float_lanes(b, &mut tb));
        let vals = pred_dispatch_i(op, n, ka.lanes(), kb.lanes());
        return Ok(typed_out(vals, nulls, ColumnData::Bool));
    }
    if let (Some(a), Some(b)) = (str_view(l), str_view(r)) {
        // Dictionary equality against a constant resolves to one interned
        // code and compares codes branch-free; `u32::MAX` never collides
        // with a real code (codes < DICT_MAX), so a missing constant makes
        // every lane unequal.
        if matches!(op, BinOp::Eq | BinOp::Ne) {
            if let (Strs::Dict(codes, pool), Strs::Const(s)) | (Strs::Const(s), Strs::Dict(codes, pool)) = (&a, &b) {
                let target = pool.code_of(s).unwrap_or(u32::MAX);
                let neg = matches!(op, BinOp::Ne);
                let vals: Vec<bool> = codes.iter().map(|&c| (c == target) ^ neg).collect();
                return Ok(typed_out(vals, nulls, ColumnData::Bool));
            }
        }
        // Other string shapes compare the interned strings per lane.
        return Ok(bool_compare_out(n, l, r, |k| a.at(k).cmp(b.at(k)), op));
    }
    if let (Some(a), Some(b)) = (date_view(l), date_view(r)) {
        let (ka, kb) = (date_keys(&a), date_keys(&b));
        let vals = pred_dispatch_i(op, n, ka.lanes(), kb.lanes());
        return Ok(typed_out(vals, nulls, ColumnData::Bool));
    }
    // Date column against a string literal (the xRQ slicer shape): parse
    // the literal once. An unparseable literal errors on the first row
    // where both operands are non-NULL, as the scalar path would.
    if let (Some(d), Vek::Const(Value::Str(s))) = (date_view(l), r) {
        match Value::parse_date(s) {
            Some(Value::Date(lit)) => {
                let ka = date_keys(&d);
                let vals = pred_dispatch_i(op, n, ka.lanes(), ILanes::C(lit as i64));
                return Ok(typed_out(vals, nulls, ColumnData::Bool));
            }
            _ => {
                if first_valid_row(l, r, n).is_some() {
                    return Err(EvalError::Type(format!("cannot compare date with `{s}`")));
                }
                return Ok(Vek::Const(Value::Null));
            }
        }
    }
    if let (Vek::Const(Value::Str(s)), Some(d)) = (l, date_view(r)) {
        match Value::parse_date(s) {
            Some(Value::Date(lit)) => {
                let kb = date_keys(&d);
                let vals = pred_dispatch_i(op, n, ILanes::C(lit as i64), kb.lanes());
                return Ok(typed_out(vals, nulls, ColumnData::Bool));
            }
            _ => {
                if first_valid_row(l, r, n).is_some() {
                    return Err(EvalError::Type(format!("cannot compare `{s}` with date")));
                }
                return Ok(Vek::Const(Value::Null));
            }
        }
    }
    // Mixed columns, bool comparisons, genuine type errors: exact scalar
    // semantics per row.
    map_binary(l, r, n, |a, b| {
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Bool(ord_matches(op, compare(&a, &b)?)))
    })
}

/// Three-valued boolean lanes of a [`Vek`], when it is boolean-shaped.
enum BoolLanes<'a> {
    Col(&'a [bool], Option<&'a Bitmap>),
    Const(Option<bool>),
}

impl BoolLanes<'_> {
    /// Lane `k` as `Some(value)` or `None` for NULL.
    fn at(&self, k: usize) -> Option<bool> {
        match self {
            BoolLanes::Col(bits, validity) => validity.is_none_or(|v| v.get(k)).then(|| bits[k]),
            BoolLanes::Const(c) => *c,
        }
    }
}

fn bool_lanes(v: &Vek) -> Option<BoolLanes<'_>> {
    match v {
        Vek::Const(Value::Bool(b)) => Some(BoolLanes::Const(Some(*b))),
        Vek::Const(Value::Null) => Some(BoolLanes::Const(None)),
        Vek::Col(c) => match c.data() {
            ColumnData::Bool(bits) => Some(BoolLanes::Col(bits, c.validity())),
            _ => None,
        },
        _ => None,
    }
}

/// AND/OR with short-circuit preserved: the right operand is evaluated only
/// over the rows the left operand does not decide, and skipped entirely
/// when no such row exists — `false AND MYSTERY(x)` never evaluates
/// `MYSTERY`, exactly like the scalar path. When both sides are
/// boolean-shaped, recombination is a direct lane scatter (no per-value
/// round-trip); non-boolean operands drop to the per-row path so
/// [`combine_logical`] raises the exact scalar errors.
fn logical_kernel(
    op: BinOp,
    l: &CompiledExpr,
    r: &CompiledExpr,
    cols: &[Arc<Column>],
    rows: &RowSel,
) -> Result<Vek, EvalError> {
    let n = rows.len();
    let lv = eval_vector(l, cols, rows)?;
    // The operand value that decides the operator outright.
    let short = matches!(op, BinOp::Or);
    let lb = bool_lanes(&lv);
    let decisive = |k: usize| -> bool {
        matches!((op, lv.value(k)), (BinOp::And, Value::Bool(false)) | (BinOp::Or, Value::Bool(true)))
    };
    let mut undecided: Vec<u32> = Vec::new(); // absolute rows, for re-evaluation
    let mut undecided_ord: Vec<u32> = Vec::new(); // ordinals, for recombination
    match &lb {
        Some(lanes) => {
            for k in 0..n {
                if lanes.at(k) != Some(short) {
                    undecided.push(rows.at(k) as u32);
                    undecided_ord.push(k as u32);
                }
            }
        }
        None => {
            for k in 0..n {
                if !decisive(k) {
                    undecided.push(rows.at(k) as u32);
                    undecided_ord.push(k as u32);
                }
            }
        }
    }
    if undecided.is_empty() {
        return Ok(lv);
    }
    let rv = eval_vector(r, cols, &RowSel::Subset(&undecided))?;
    if let (Some(la), Some(ra)) = (&lb, bool_lanes(&rv)) {
        // Decided lanes hold the short-circuit value and are valid by
        // construction; undecided lanes scatter the 3VL combination back.
        let mut out = vec![short; n];
        let mut valid = vec![true; n];
        let mut any_null = false;
        for (j, &ord) in undecided_ord.iter().enumerate() {
            let k = ord as usize;
            // Here `la.at(k)` ∈ {Some(!short), None}.
            let res = match (la.at(k), ra.at(j)) {
                (Some(x), Some(y)) => Some(if matches!(op, BinOp::And) { x && y } else { x || y }),
                (None, Some(v)) | (Some(v), None) => (v == short).then_some(short),
                (None, None) => None,
            };
            match res {
                Some(v) => out[k] = v,
                None => {
                    out[k] = false;
                    valid[k] = false;
                    any_null = true;
                }
            }
        }
        let nulls = any_null.then(|| Bitmap::from_words(pack_bool_words(&valid), n));
        return Ok(typed_out(out, nulls, ColumnData::Bool));
    }
    // A non-boolean operand: per-row recombination for exact scalar
    // semantics (type errors included).
    stats::count_scalar_fallback();
    let mut b = ColumnBuilder::new(ColType::Boolean);
    let mut sub = 0usize;
    for k in 0..n {
        if decisive(k) {
            b.push(lv.value(k));
        } else {
            let out = combine_logical(op, &lv.value(k), &rv.value(sub))?;
            sub += 1;
            b.push(out);
        }
    }
    Ok(Vek::Col(Arc::new(b.finish())))
}

/// YEAR/MONTH/DAY over a date column without materializing values.
fn date_extract_kernel(upper: &str, v: Vek, n: usize) -> Result<Vek, EvalError> {
    let pick = |days: i32| -> i64 {
        let (y, m, d) = civil_from_days(days);
        match upper {
            "YEAR" => y as i64,
            "MONTH" => m as i64,
            _ => d as i64,
        }
    };
    if let Vek::Col(c) = &v {
        if let ColumnData::Date(days) = c.data() {
            let out: Vec<i64> = days.iter().map(|&d| pick(d)).collect();
            stats::count_vectorized();
            return Ok(Vek::Col(Arc::new(Column::new(ColumnData::Int(out), c.validity().cloned()))));
        }
    }
    map_unary(&v, n, |val| call_scalar(upper, 1, |_| Ok(val.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use quarry_etl::{parse_expr, Column as SchemaCol, Schema};

    fn rel() -> Relation {
        Relation::with_rows(
            Schema::new(vec![
                SchemaCol::new("price", ColType::Decimal),
                SchemaCol::new("qty", ColType::Integer),
                SchemaCol::new("name", ColType::Text),
                SchemaCol::new("ship", ColType::Date),
                SchemaCol::new("maybe", ColType::Decimal),
            ]),
            vec![
                vec![
                    Value::Float(10.5),
                    Value::Int(3),
                    Value::Str("Spain".into()),
                    Value::date(1995, 6, 17),
                    Value::Null,
                ],
                vec![
                    Value::Float(2.0),
                    Value::Int(-1),
                    Value::Str("France".into()),
                    Value::date(2001, 1, 2),
                    Value::Float(7.0),
                ],
                vec![Value::Null, Value::Int(0), Value::Str("Spain".into()), Value::Null, Value::Null],
            ],
        )
    }

    /// Vectorized evaluation must agree with scalar row-at-a-time
    /// evaluation, value for value, over both a full range and a subset.
    #[test]
    fn vectorized_matches_scalar_everywhere() {
        let r = rel();
        let exprs = [
            "price * qty",
            "qty + 2",
            "qty - 1",
            "qty * qty",
            "qty / 0",
            "price / 2",
            "price / qty",
            "-qty",
            "-price",
            "price > 10",
            "price = 10.5",
            "price >= qty",
            "qty = 3",
            "qty <> 0",
            "qty <= 0",
            "name = 'Spain'",
            "name <> 'France'",
            "name = 'Mars'",
            "name <> 'Mars'",
            "name < 'T'",
            "ship >= '1995-01-01'",
            "ship < '1999-12-31'",
            "ship = ship",
            "maybe + 1",
            "maybe = maybe",
            "NOT (qty = 3)",
            "maybe > 0 OR price > 0",
            "maybe > 0 AND price > 0",
            "price > 10 AND qty <= 3",
            "maybe > 0 OR maybe < 0",
            "YEAR(ship)",
            "MONTH(ship) + DAY(ship)",
            "ABS(0 - qty)",
            "CONCAT(name, '!')",
            "COALESCE(maybe, price)",
            "1 + 2",
            "1 / 0",
            "'a' = 'b'",
        ];
        let subset: Vec<u32> = vec![2, 0];
        for src in exprs {
            let e = parse_expr(src).unwrap();
            let c = CompiledExpr::compile(&e, &r.schema).unwrap();
            for rows in [RowSel::Range(0..r.len()), RowSel::Subset(&subset)] {
                let got = eval_vector(&c, r.columns(), &rows).unwrap();
                for k in 0..rows.len() {
                    let expect = eval_compiled(&c, &r.row(rows.at(k))).unwrap();
                    assert_eq!(got.value(k), expect, "`{src}` row {k} ({rows:?})");
                }
            }
        }
    }

    #[test]
    fn vectorized_short_circuit_skips_rhs_errors() {
        let r = rel();
        let e = parse_expr("qty < -100 AND MYSTERY(qty) = 1").unwrap();
        let c = CompiledExpr::compile(&e, &r.schema).unwrap();
        let got = eval_vector(&c, r.columns(), &RowSel::Range(0..r.len())).unwrap();
        for k in 0..r.len() {
            assert_eq!(got.value(k), Value::Bool(false));
        }
    }

    #[test]
    fn vectorized_errors_match_scalar_errors() {
        let r = rel();
        for src in ["name + 1", "MYSTERY(1)", "YEAR(name)", "NOT price", "ship > 'junk'", "qty AND price"] {
            let e = parse_expr(src).unwrap();
            let c = CompiledExpr::compile(&e, &r.schema).unwrap();
            let got = eval_vector(&c, r.columns(), &RowSel::Range(0..r.len())).unwrap_err();
            let scalar = (0..r.len()).find_map(|i| eval_compiled(&c, &r.row(i)).err()).expect("scalar errs too");
            assert_eq!(got, scalar, "error mismatch on `{src}`");
        }
    }

    #[test]
    fn dirty_date_column_falls_back_without_mangling() {
        // Declared Date, carries text: the Mixed column drops to the scalar
        // fallback and reproduces the exact scalar error.
        let r = Relation::with_rows(
            Schema::new(vec![SchemaCol::new("d", ColType::Date)]),
            vec![vec![Value::date(1995, 6, 17)], vec![Value::Str("not-a-date".into())]],
        );
        let e = parse_expr("YEAR(d) >= 1995").unwrap();
        let c = CompiledExpr::compile(&e, &r.schema).unwrap();
        let err = eval_vector(&c, r.columns(), &RowSel::Range(0..2)).unwrap_err();
        assert!(matches!(&err, EvalError::Type(m) if m.contains("not-a-date")), "{err:?}");
    }

    #[test]
    fn typed_kernels_are_counted_as_vectorized() {
        let r = rel();
        let e = parse_expr("price * qty").unwrap();
        let c = CompiledExpr::compile(&e, &r.schema).unwrap();
        let before = crate::stats::kernel_stats();
        eval_vector(&c, r.columns(), &RowSel::Range(0..r.len())).unwrap();
        let after = crate::stats::kernel_stats();
        assert!(after.vectorized > before.vectorized);
        assert_eq!(after.scalar_fallback, before.scalar_fallback);

        let e = parse_expr("MYSTERY(qty)").unwrap();
        let c = CompiledExpr::compile(&e, &r.schema).unwrap();
        let before = crate::stats::kernel_stats();
        let _ = eval_vector(&c, r.columns(), &RowSel::Range(0..r.len()));
        let after = crate::stats::kernel_stats();
        assert!(after.scalar_fallback > before.scalar_fallback);
    }

    /// Tentpole check: the branch-free typed kernels must leave the
    /// row-at-a-time fallback far behind on wide inputs. Prints throughput
    /// for inspection; the speedup assertion only runs in release builds,
    /// where autovectorization is on (`cargo test --release`).
    #[test]
    fn kernel_throughput_microbench() {
        use std::time::Instant;
        let n: usize = 1 << 18;
        let mut price = ColumnBuilder::new(ColType::Decimal);
        let mut qty = ColumnBuilder::new(ColType::Integer);
        for i in 0..n {
            if i % 97 == 0 {
                price.push(Value::Null);
            } else {
                price.push(Value::Float(i as f64 * 0.5));
            }
            qty.push(Value::Int((i % 1000) as i64));
        }
        let schema =
            Schema::new(vec![SchemaCol::new("price", ColType::Decimal), SchemaCol::new("qty", ColType::Integer)]);
        let cols = vec![Arc::new(price.finish()), Arc::new(qty.finish())];
        for src in ["price * qty + price", "qty * 3 - 1", "price > 1000.0 AND qty < 500"] {
            let e = parse_expr(src).unwrap();
            let c = CompiledExpr::compile(&e, &schema).unwrap();
            let rows = RowSel::Range(0..n);
            // One warm-up plus equivalence check, then timed runs.
            let fast = eval_vector(&c, &cols, &rows).unwrap();
            let slow = scalar_fallback(&c, &cols, &rows).unwrap();
            for k in (0..n).step_by(997) {
                assert_eq!(fast.value(k), slow.value(k), "`{src}` lane {k}");
            }
            let t0 = Instant::now();
            let _ = eval_vector(&c, &cols, &rows).unwrap();
            let vec_s = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let _ = scalar_fallback(&c, &cols, &rows).unwrap();
            let scalar_s = t1.elapsed().as_secs_f64();
            println!(
                "microbench `{src}`: vectorized {:.1} Mrows/s, scalar {:.1} Mrows/s ({:.1}x)",
                n as f64 / vec_s / 1e6,
                n as f64 / scalar_s / 1e6,
                scalar_s / vec_s
            );
            #[cfg(not(debug_assertions))]
            assert!(
                vec_s * 4.0 < scalar_s,
                "vectorized kernel for `{src}` not ≥4x over scalar: {vec_s}s vs {scalar_s}s"
            );
        }
    }
}
