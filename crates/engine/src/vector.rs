//! Vectorized expression evaluation: `CompiledExpr` column-at-a-time.
//!
//! [`eval_vector`] evaluates one compiled expression over a set of rows of a
//! columnar relation and returns a [`Vek`] — either a constant or a freshly
//! materialized column aligned with the row set. Typed kernels handle the
//! hot shapes (numeric arithmetic and comparison, dictionary-string
//! equality, date-vs-literal slicers, boolean logic); everything else drops
//! to a scalar fallback that calls [`eval_compiled`] row by row, so the
//! semantics — NULL propagation, short-circuiting, exact error messages —
//! are those of the row engine by construction.
//!
//! One documented divergence: within a morsel, errors surface in
//! *operand-major* order (the whole left operand evaluates before the right
//! one), whereas the scalar path is row-major. Both are deterministic, and
//! the first-error-in-morsel-order rule across morsels is unchanged.

use crate::column::{Bitmap, Column, ColumnBuilder, ColumnData};
use crate::eval::{arith, call_scalar, combine_logical, compare, eval_compiled, EvalError};
use crate::relation::Row;
use crate::value::{civil_from_days, Value};
use quarry_etl::{BinOp, ColType, CompiledExpr, UnOp};
use std::cmp::Ordering;
use std::ops::Range;
use std::sync::Arc;

/// The rows an evaluation covers: a contiguous morsel or an explicit subset
/// (absolute row indices, ascending).
#[derive(Debug, Clone)]
pub(crate) enum RowSel<'a> {
    Range(Range<usize>),
    Subset(&'a [u32]),
}

impl RowSel<'_> {
    pub(crate) fn len(&self) -> usize {
        match self {
            RowSel::Range(rg) => rg.len(),
            RowSel::Subset(s) => s.len(),
        }
    }

    /// Absolute row index of ordinal `k`.
    pub(crate) fn at(&self, k: usize) -> usize {
        match self {
            RowSel::Range(rg) => rg.start + k,
            RowSel::Subset(s) => s[k] as usize,
        }
    }
}

/// An evaluated vector: one value per selected row, or one constant for all
/// of them.
#[derive(Debug, Clone)]
pub(crate) enum Vek {
    Const(Value),
    Col(Arc<Column>),
}

impl Vek {
    /// The value at ordinal `k` (not an absolute row index).
    pub(crate) fn value(&self, k: usize) -> Value {
        match self {
            Vek::Const(v) => v.clone(),
            Vek::Col(c) => c.value(k),
        }
    }

    pub(crate) fn is_null(&self, k: usize) -> bool {
        match self {
            Vek::Const(v) => v.is_null(),
            Vek::Col(c) => c.is_null(k),
        }
    }

    /// Materializes the vector as a column of `n` rows.
    pub(crate) fn into_column(self, n: usize) -> Column {
        match self {
            Vek::Col(c) => Arc::try_unwrap(c).unwrap_or_else(|c| (*c).clone()),
            Vek::Const(v) => {
                let mut b = ColumnBuilder::new(ColType::Integer);
                for _ in 0..n {
                    b.push(v.clone());
                }
                b.finish()
            }
        }
    }
}

/// The input column restricted to the selected rows, sharing the original
/// when the selection covers it whole.
pub(crate) fn gather_col(c: &Arc<Column>, rows: &RowSel) -> Arc<Column> {
    match rows {
        RowSel::Range(rg) if rg.start == 0 && rg.end == c.len() => Arc::clone(c),
        RowSel::Range(rg) => Arc::new(c.slice(rg.clone())),
        RowSel::Subset(idx) => Arc::new(c.gather(idx)),
    }
}

/// Evaluates `expr` over `rows` of `cols`, column-at-a-time.
pub(crate) fn eval_vector(expr: &CompiledExpr, cols: &[Arc<Column>], rows: &RowSel) -> Result<Vek, EvalError> {
    if rows.len() == 0 {
        // Zero rows evaluate nothing — no kernel may raise an error.
        return Ok(Vek::Const(Value::Null));
    }
    match expr {
        CompiledExpr::Col(i) => Ok(Vek::Col(gather_col(&cols[*i], rows))),
        CompiledExpr::Int(v) => Ok(Vek::Const(Value::Int(*v))),
        CompiledExpr::Float(v) => Ok(Vek::Const(Value::Float(*v))),
        CompiledExpr::Str(s) => Ok(Vek::Const(Value::Str(s.clone()))),
        CompiledExpr::Bool(b) => Ok(Vek::Const(Value::Bool(*b))),
        CompiledExpr::Null => Ok(Vek::Const(Value::Null)),
        CompiledExpr::Unary(op, e) => {
            let v = eval_vector(e, cols, rows)?;
            unary_kernel(*op, v, rows.len())
        }
        CompiledExpr::Binary(op, l, r) => {
            if matches!(op, BinOp::And | BinOp::Or) {
                return logical_kernel(*op, l, r, cols, rows);
            }
            let lv = eval_vector(l, cols, rows)?;
            let rv = eval_vector(r, cols, rows)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith_kernel(*op, &lv, &rv, rows.len()),
                _ => compare_kernel(*op, &lv, &rv, rows.len()),
            }
        }
        CompiledExpr::Call(upper, args) => {
            if matches!(upper.as_str(), "YEAR" | "MONTH" | "DAY") && args.len() == 1 {
                let v = eval_vector(&args[0], cols, rows)?;
                return date_extract_kernel(upper, v, rows.len());
            }
            scalar_fallback(expr, cols, rows)
        }
    }
}

/// Row-at-a-time fallback with exact scalar semantics: materializes only the
/// columns the expression references and calls [`eval_compiled`] per row.
fn scalar_fallback(expr: &CompiledExpr, cols: &[Arc<Column>], rows: &RowSel) -> Result<Vek, EvalError> {
    let mut used = Vec::new();
    collect_used(expr, &mut used);
    let mut buf: Row = vec![Value::Null; cols.len()];
    let mut b = ColumnBuilder::new(ColType::Integer);
    for k in 0..rows.len() {
        let abs = rows.at(k);
        for &j in &used {
            buf[j] = cols[j].value(abs);
        }
        b.push(eval_compiled(expr, &buf)?);
    }
    Ok(Vek::Col(Arc::new(b.finish())))
}

fn collect_used(expr: &CompiledExpr, out: &mut Vec<usize>) {
    match expr {
        CompiledExpr::Col(i) if !out.contains(i) => out.push(*i),
        CompiledExpr::Col(_) => {}
        CompiledExpr::Unary(_, e) => collect_used(e, out),
        CompiledExpr::Binary(_, l, r) => {
            collect_used(l, out);
            collect_used(r, out);
        }
        CompiledExpr::Call(_, args) => {
            for a in args {
                collect_used(a, out);
            }
        }
        _ => {}
    }
}

/// Builds a column by applying exact scalar semantics per row.
fn map_unary(v: &Vek, n: usize, f: impl Fn(Value) -> Result<Value, EvalError>) -> Result<Vek, EvalError> {
    if let Vek::Const(c) = v {
        return f(c.clone()).map(Vek::Const);
    }
    let mut b = ColumnBuilder::new(ColType::Integer);
    for k in 0..n {
        b.push(f(v.value(k))?);
    }
    Ok(Vek::Col(Arc::new(b.finish())))
}

fn map_binary(
    l: &Vek,
    r: &Vek,
    n: usize,
    f: impl Fn(Value, Value) -> Result<Value, EvalError>,
) -> Result<Vek, EvalError> {
    if let (Vek::Const(a), Vek::Const(b)) = (l, r) {
        return f(a.clone(), b.clone()).map(Vek::Const);
    }
    let mut b = ColumnBuilder::new(ColType::Integer);
    for k in 0..n {
        b.push(f(l.value(k), r.value(k))?);
    }
    Ok(Vek::Col(Arc::new(b.finish())))
}

fn unary_kernel(op: UnOp, v: Vek, n: usize) -> Result<Vek, EvalError> {
    let scalar = |v: Value| match (op, v) {
        (_, Value::Null) => Ok(Value::Null),
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::Not, other) => Err(EvalError::Type(format!("NOT of non-boolean `{other}`"))),
        (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
        (UnOp::Neg, Value::Float(v)) => Ok(Value::Float(-v)),
        (UnOp::Neg, other) => Err(EvalError::Type(format!("negation of non-numeric `{other}`"))),
    };
    if let Vek::Col(c) = &v {
        let out = match (op, c.data()) {
            (UnOp::Not, ColumnData::Bool(bits)) => Some(ColumnData::Bool(bits.iter().map(|b| !b).collect())),
            (UnOp::Neg, ColumnData::Int(vs)) => Some(ColumnData::Int(vs.iter().map(|x| -x).collect())),
            (UnOp::Neg, ColumnData::Float(vs)) => Some(ColumnData::Float(vs.iter().map(|x| -x).collect())),
            _ => None,
        };
        if let Some(data) = out {
            return Ok(Vek::Col(Arc::new(Column::new(data, c.validity().cloned()))));
        }
    }
    map_unary(&v, n, scalar)
}

/// Numeric source view over a [`Vek`]; NULL handling stays with the caller.
enum Num<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
    CI(i64),
    CF(f64),
}

impl Num<'_> {
    fn f64_at(&self, k: usize) -> f64 {
        match self {
            Num::I(v) => v[k] as f64,
            Num::F(v) => v[k],
            Num::CI(v) => *v as f64,
            Num::CF(v) => *v,
        }
    }

    fn is_int(&self) -> bool {
        matches!(self, Num::I(_) | Num::CI(_))
    }

    fn i64_at(&self, k: usize) -> i64 {
        match self {
            Num::I(v) => v[k],
            Num::CI(v) => *v,
            _ => unreachable!("guarded by is_int"),
        }
    }
}

fn num_view(v: &Vek) -> Option<Num<'_>> {
    match v {
        Vek::Const(Value::Int(i)) => Some(Num::CI(*i)),
        Vek::Const(Value::Float(f)) => Some(Num::CF(*f)),
        Vek::Col(c) => match c.data() {
            ColumnData::Int(v) => Some(Num::I(v)),
            ColumnData::Float(v) => Some(Num::F(v)),
            _ => None,
        },
        _ => None,
    }
}

/// A typed output assembled directly (no per-value enum round-trip).
fn typed_out<T>(data: Vec<T>, nulls: Bitmap, any_null: bool, wrap: impl Fn(Vec<T>) -> ColumnData) -> Vek {
    Vek::Col(Arc::new(Column::new(wrap(data), if any_null { Some(nulls) } else { None })))
}

fn arith_kernel(op: BinOp, l: &Vek, r: &Vek, n: usize) -> Result<Vek, EvalError> {
    if matches!(l, Vek::Const(Value::Null)) || matches!(r, Vek::Const(Value::Null)) {
        return Ok(Vek::Const(Value::Null));
    }
    if let (Some(a), Some(b)) = (num_view(l), num_view(r)) {
        if a.is_int() && b.is_int() && !matches!(op, BinOp::Div) {
            let mut out = Vec::with_capacity(n);
            let mut bm = Bitmap::new();
            let mut any_null = false;
            for k in 0..n {
                if l.is_null(k) || r.is_null(k) {
                    out.push(0);
                    bm.push(false);
                    any_null = true;
                    continue;
                }
                let (x, y) = (a.i64_at(k), b.i64_at(k));
                out.push(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    _ => unreachable!(),
                });
                bm.push(true);
            }
            return Ok(typed_out(out, bm, any_null, ColumnData::Int));
        }
        // Mixed numeric (or any division): f64 lane. Division by zero is
        // NULL, matching the scalar path for both the Int/Int and the
        // float case.
        let mut out = Vec::with_capacity(n);
        let mut bm = Bitmap::new();
        let mut any_null = false;
        for k in 0..n {
            if l.is_null(k) || r.is_null(k) {
                out.push(0.0);
                bm.push(false);
                any_null = true;
                continue;
            }
            let (x, y) = (a.f64_at(k), b.f64_at(k));
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        out.push(0.0);
                        bm.push(false);
                        any_null = true;
                        continue;
                    }
                    x / y
                }
                _ => unreachable!(),
            };
            out.push(v);
            bm.push(true);
        }
        return Ok(typed_out(out, bm, any_null, ColumnData::Float));
    }
    // Non-numeric somewhere: exact scalar semantics (NULL propagates before
    // the type check, errors keep their wording).
    map_binary(l, r, n, |a, b| {
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        arith(op, &a, &b)
    })
}

fn ord_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("comparison op"),
    }
}

/// String source view (dictionary, plain, or constant).
enum Strs<'a> {
    Dict(&'a [u32], &'a crate::column::StringPool),
    Plain(&'a [String]),
    Const(&'a str),
}

impl Strs<'_> {
    fn at(&self, k: usize) -> &str {
        match self {
            Strs::Dict(codes, pool) => pool.get(codes[k]),
            Strs::Plain(v) => &v[k],
            Strs::Const(s) => s,
        }
    }
}

fn str_view(v: &Vek) -> Option<Strs<'_>> {
    match v {
        Vek::Const(Value::Str(s)) => Some(Strs::Const(s)),
        Vek::Col(c) => match c.data() {
            ColumnData::Dict { codes, pool } => Some(Strs::Dict(codes, pool)),
            ColumnData::Str(v) => Some(Strs::Plain(v)),
            _ => None,
        },
        _ => None,
    }
}

/// Date source view (column of day counts or a constant date).
enum Dates<'a> {
    Col(&'a [i32]),
    Const(i32),
}

impl Dates<'_> {
    fn at(&self, k: usize) -> i32 {
        match self {
            Dates::Col(v) => v[k],
            Dates::Const(d) => *d,
        }
    }
}

fn date_view(v: &Vek) -> Option<Dates<'_>> {
    match v {
        Vek::Const(Value::Date(d)) => Some(Dates::Const(*d)),
        Vek::Col(c) => match c.data() {
            ColumnData::Date(v) => Some(Dates::Col(v)),
            _ => None,
        },
        _ => None,
    }
}

fn bool_compare_out(n: usize, l: &Vek, r: &Vek, ord_at: impl Fn(usize) -> Ordering, op: BinOp) -> Vek {
    let mut out = Vec::with_capacity(n);
    let mut bm = Bitmap::new();
    let mut any_null = false;
    for k in 0..n {
        if l.is_null(k) || r.is_null(k) {
            out.push(false);
            bm.push(false);
            any_null = true;
        } else {
            out.push(ord_matches(op, ord_at(k)));
            bm.push(true);
        }
    }
    typed_out(out, bm, any_null, ColumnData::Bool)
}

fn first_valid_row(l: &Vek, r: &Vek, n: usize) -> Option<usize> {
    (0..n).find(|&k| !l.is_null(k) && !r.is_null(k))
}

fn compare_kernel(op: BinOp, l: &Vek, r: &Vek, n: usize) -> Result<Vek, EvalError> {
    if matches!(l, Vek::Const(Value::Null)) || matches!(r, Vek::Const(Value::Null)) {
        return Ok(Vek::Const(Value::Null));
    }
    if let (Some(a), Some(b)) = (num_view(l), num_view(r)) {
        if a.is_int() && b.is_int() {
            return Ok(bool_compare_out(n, l, r, |k| a.i64_at(k).cmp(&b.i64_at(k)), op));
        }
        return Ok(bool_compare_out(n, l, r, |k| a.f64_at(k).total_cmp(&b.f64_at(k)), op));
    }
    if let (Some(a), Some(b)) = (str_view(l), str_view(r)) {
        // Dictionary equality resolves per-code when both sides share a
        // pool or one side is a constant; the general path compares the
        // interned strings without materializing them.
        if matches!(op, BinOp::Eq | BinOp::Ne) {
            if let (Strs::Dict(codes, pool), Strs::Const(s)) | (Strs::Const(s), Strs::Dict(codes, pool)) = (&a, &b) {
                let target = pool.code_of(s);
                return Ok(bool_compare_out(
                    n,
                    l,
                    r,
                    |k| {
                        if target == Some(codes[k]) {
                            Ordering::Equal
                        } else {
                            Ordering::Less // any non-Equal works for Eq/Ne
                        }
                    },
                    op,
                ));
            }
        }
        return Ok(bool_compare_out(n, l, r, |k| a.at(k).cmp(b.at(k)), op));
    }
    if let (Some(a), Some(b)) = (date_view(l), date_view(r)) {
        return Ok(bool_compare_out(n, l, r, |k| a.at(k).cmp(&b.at(k)), op));
    }
    // Date column against a string literal (the xRQ slicer shape): parse
    // the literal once. An unparseable literal errors on the first row
    // where both operands are non-NULL, as the scalar path would.
    if let (Some(d), Vek::Const(Value::Str(s))) = (date_view(l), r) {
        match Value::parse_date(s) {
            Some(Value::Date(lit)) => {
                return Ok(bool_compare_out(n, l, r, |k| d.at(k).cmp(&lit), op));
            }
            _ => {
                if first_valid_row(l, r, n).is_some() {
                    return Err(EvalError::Type(format!("cannot compare date with `{s}`")));
                }
                return Ok(Vek::Const(Value::Null));
            }
        }
    }
    if let (Vek::Const(Value::Str(s)), Some(d)) = (l, date_view(r)) {
        match Value::parse_date(s) {
            Some(Value::Date(lit)) => {
                return Ok(bool_compare_out(n, l, r, |k| lit.cmp(&d.at(k)), op));
            }
            _ => {
                if first_valid_row(l, r, n).is_some() {
                    return Err(EvalError::Type(format!("cannot compare `{s}` with date")));
                }
                return Ok(Vek::Const(Value::Null));
            }
        }
    }
    // Mixed columns, bool comparisons, genuine type errors: exact scalar
    // semantics per row.
    map_binary(l, r, n, |a, b| {
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Bool(ord_matches(op, compare(&a, &b)?)))
    })
}

/// AND/OR with short-circuit preserved: the right operand is evaluated only
/// over the rows the left operand does not decide, and skipped entirely
/// when no such row exists — `false AND MYSTERY(x)` never evaluates
/// `MYSTERY`, exactly like the scalar path.
fn logical_kernel(
    op: BinOp,
    l: &CompiledExpr,
    r: &CompiledExpr,
    cols: &[Arc<Column>],
    rows: &RowSel,
) -> Result<Vek, EvalError> {
    let n = rows.len();
    let lv = eval_vector(l, cols, rows)?;
    let decisive = |k: usize| -> bool {
        matches!((op, lv.value(k)), (BinOp::And, Value::Bool(false)) | (BinOp::Or, Value::Bool(true)))
    };
    let mut undecided: Vec<u32> = Vec::new();
    for k in 0..n {
        if !decisive(k) {
            undecided.push(rows.at(k) as u32);
        }
    }
    if undecided.is_empty() {
        return Ok(lv);
    }
    let rv = eval_vector(r, cols, &RowSel::Subset(&undecided))?;
    let mut b = ColumnBuilder::new(ColType::Boolean);
    let mut sub = 0usize;
    for k in 0..n {
        if decisive(k) {
            b.push(lv.value(k));
        } else {
            let out = combine_logical(op, &lv.value(k), &rv.value(sub))?;
            sub += 1;
            b.push(out);
        }
    }
    Ok(Vek::Col(Arc::new(b.finish())))
}

/// YEAR/MONTH/DAY over a date column without materializing values.
fn date_extract_kernel(upper: &str, v: Vek, n: usize) -> Result<Vek, EvalError> {
    let pick = |days: i32| -> i64 {
        let (y, m, d) = civil_from_days(days);
        match upper {
            "YEAR" => y as i64,
            "MONTH" => m as i64,
            _ => d as i64,
        }
    };
    if let Vek::Col(c) = &v {
        if let ColumnData::Date(days) = c.data() {
            let out: Vec<i64> = days.iter().map(|&d| pick(d)).collect();
            return Ok(Vek::Col(Arc::new(Column::new(ColumnData::Int(out), c.validity().cloned()))));
        }
    }
    map_unary(&v, n, |val| call_scalar(upper, 1, |_| Ok(val.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use quarry_etl::{parse_expr, Column as SchemaCol, Schema};

    fn rel() -> Relation {
        Relation::with_rows(
            Schema::new(vec![
                SchemaCol::new("price", ColType::Decimal),
                SchemaCol::new("qty", ColType::Integer),
                SchemaCol::new("name", ColType::Text),
                SchemaCol::new("ship", ColType::Date),
                SchemaCol::new("maybe", ColType::Decimal),
            ]),
            vec![
                vec![
                    Value::Float(10.5),
                    Value::Int(3),
                    Value::Str("Spain".into()),
                    Value::date(1995, 6, 17),
                    Value::Null,
                ],
                vec![
                    Value::Float(2.0),
                    Value::Int(-1),
                    Value::Str("France".into()),
                    Value::date(2001, 1, 2),
                    Value::Float(7.0),
                ],
                vec![Value::Null, Value::Int(0), Value::Str("Spain".into()), Value::Null, Value::Null],
            ],
        )
    }

    /// Vectorized evaluation must agree with scalar row-at-a-time
    /// evaluation, value for value, over both a full range and a subset.
    #[test]
    fn vectorized_matches_scalar_everywhere() {
        let r = rel();
        let exprs = [
            "price * qty",
            "qty + 2",
            "qty - 1",
            "qty * qty",
            "qty / 0",
            "price / 2",
            "-qty",
            "-price",
            "price > 10",
            "qty = 3",
            "qty <> 0",
            "qty <= 0",
            "name = 'Spain'",
            "name <> 'France'",
            "name < 'T'",
            "ship >= '1995-01-01'",
            "ship < '1999-12-31'",
            "maybe + 1",
            "maybe = maybe",
            "NOT (qty = 3)",
            "maybe > 0 OR price > 0",
            "maybe > 0 AND price > 0",
            "price > 10 AND qty <= 3",
            "YEAR(ship)",
            "MONTH(ship) + DAY(ship)",
            "ABS(0 - qty)",
            "CONCAT(name, '!')",
            "COALESCE(maybe, price)",
            "1 + 2",
            "'a' = 'b'",
        ];
        let subset: Vec<u32> = vec![2, 0];
        for src in exprs {
            let e = parse_expr(src).unwrap();
            let c = CompiledExpr::compile(&e, &r.schema).unwrap();
            for rows in [RowSel::Range(0..r.len()), RowSel::Subset(&subset)] {
                let got = eval_vector(&c, r.columns(), &rows).unwrap();
                for k in 0..rows.len() {
                    let expect = eval_compiled(&c, &r.row(rows.at(k))).unwrap();
                    assert_eq!(got.value(k), expect, "`{src}` row {k} ({rows:?})");
                }
            }
        }
    }

    #[test]
    fn vectorized_short_circuit_skips_rhs_errors() {
        let r = rel();
        let e = parse_expr("qty < -100 AND MYSTERY(qty) = 1").unwrap();
        let c = CompiledExpr::compile(&e, &r.schema).unwrap();
        let got = eval_vector(&c, r.columns(), &RowSel::Range(0..r.len())).unwrap();
        for k in 0..r.len() {
            assert_eq!(got.value(k), Value::Bool(false));
        }
    }

    #[test]
    fn vectorized_errors_match_scalar_errors() {
        let r = rel();
        for src in ["name + 1", "MYSTERY(1)", "YEAR(name)", "NOT price", "ship > 'junk'"] {
            let e = parse_expr(src).unwrap();
            let c = CompiledExpr::compile(&e, &r.schema).unwrap();
            let got = eval_vector(&c, r.columns(), &RowSel::Range(0..r.len())).unwrap_err();
            let scalar = (0..r.len()).find_map(|i| eval_compiled(&c, &r.row(i)).err()).expect("scalar errs too");
            assert_eq!(got, scalar, "error mismatch on `{src}`");
        }
    }

    #[test]
    fn dirty_date_column_falls_back_without_mangling() {
        // Declared Date, carries text: the Mixed column drops to the scalar
        // fallback and reproduces the exact scalar error.
        let r = Relation::with_rows(
            Schema::new(vec![SchemaCol::new("d", ColType::Date)]),
            vec![vec![Value::date(1995, 6, 17)], vec![Value::Str("not-a-date".into())]],
        );
        let e = parse_expr("YEAR(d) >= 1995").unwrap();
        let c = CompiledExpr::compile(&e, &r.schema).unwrap();
        let err = eval_vector(&c, r.columns(), &RowSel::Range(0..2)).unwrap_err();
        assert!(matches!(&err, EvalError::Type(m) if m.contains("not-a-date")), "{err:?}");
    }
}
