//! Runtime values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A runtime value. Dates are days since 1970-01-01 (proleptic Gregorian).
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Date(i32),
    Null,
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int promotes to f64); None for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Builds a date value from a calendar date.
    pub fn date(year: i32, month: u32, day: u32) -> Value {
        Value::Date(days_from_civil(year, month, day))
    }

    /// Parses `YYYY-MM-DD`, rejecting impossible calendar dates: the day
    /// must exist in that month of that year (leap years included), so
    /// `2021-02-31` is an error rather than a silent roll-over.
    pub fn parse_date(s: &str) -> Option<Value> {
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next()?.parse().ok()?;
        let m: u32 = parts.next()?.parse().ok()?;
        let d: u32 = parts.next()?.parse().ok()?;
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return None;
        }
        Some(Value::date(y, m, d))
    }

    /// Calendar (year, month, day) of a date value.
    pub fn date_parts(&self) -> Option<(i32, u32, u32)> {
        match self {
            Value::Date(days) => Some(civil_from_days(*days)),
            _ => None,
        }
    }

    /// Total order used for sorting and comparisons: Null sorts first,
    /// numerics compare across Int/Float, then by type.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Cross-type comparisons order by type tag for determinism.
            (a, b) => type_tag(a).cmp(&type_tag(b)),
        }
    }
}

fn type_tag(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2, // same family as Int for comparison purposes
        Value::Date(_) => 3,
        Value::Str(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64).to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash identically when they compare equal.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(_) => {
                let (y, m, d) = self.date_parts().expect("Date variant");
                write!(f, "{y:04}-{m:02}-{d:02}")
            }
            Value::Null => write!(f, "NULL"),
        }
    }
}

fn is_leap_year(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(y) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
pub(crate) fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Civil date from days since 1970-01-01.
pub(crate) fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn date_roundtrip_known_values() {
        assert_eq!(Value::date(1970, 1, 1), Value::Date(0));
        assert_eq!(Value::date(1970, 1, 2), Value::Date(1));
        assert_eq!(Value::date(1995, 6, 17).date_parts(), Some((1995, 6, 17)));
        assert_eq!(Value::date(2000, 2, 29).date_parts(), Some((2000, 2, 29)), "leap day");
        assert_eq!(Value::date(1900, 3, 1).date_parts(), Some((1900, 3, 1)));
    }

    #[test]
    fn date_parse_and_display() {
        let d = Value::parse_date("1995-06-17").unwrap();
        assert_eq!(d.to_string(), "1995-06-17");
        assert!(Value::parse_date("1995-13-01").is_none());
        assert!(Value::parse_date("junk").is_none());
    }

    #[test]
    fn parse_date_rejects_impossible_calendar_dates() {
        assert!(Value::parse_date("2021-02-31").is_none(), "February has no 31st");
        assert!(Value::parse_date("2021-02-29").is_none(), "2021 is not a leap year");
        assert!(Value::parse_date("2021-04-31").is_none(), "April has 30 days");
        assert!(Value::parse_date("2021-06-00").is_none(), "day zero");
        assert!(Value::parse_date("2000-02-29").is_some(), "2000 is a leap year (divisible by 400)");
        assert!(Value::parse_date("1900-02-29").is_none(), "1900 is not a leap year (century rule)");
        assert!(Value::parse_date("2024-02-29").is_some(), "plain leap year");
        assert!(Value::parse_date("2021-12-31").is_some());
    }

    #[test]
    fn parse_format_roundtrip_over_every_day_of_leap_and_common_years() {
        for (y, last) in [(2020, 366), (2021, 365)] {
            let start = days_from_civil(y, 1, 1);
            for day in 0..last {
                let v = Value::Date(start + day);
                let text = v.to_string();
                let parsed =
                    Value::parse_date(&text).unwrap_or_else(|| panic!("formatted date `{text}` failed to re-parse"));
                assert_eq!(parsed, v, "roundtrip of {text}");
            }
        }
    }

    #[test]
    fn date_roundtrip_sweep() {
        for days in (-30000..60000).step_by(97) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "roundtrip for {y}-{m}-{d}");
        }
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        assert_eq!(Value::Int(5), Value::Float(5.0));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Float(5.0)));
        assert_ne!(Value::Int(5), Value::Float(5.5));
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::Int(-3)];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Int(-3));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert_eq!(Value::Str("Spain".into()).total_cmp(&Value::Str("France".into())), Ordering::Greater);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
