//! Engine → observability event bridge.
//!
//! The engine keeps zero dependency on `quarry-obs` (see [`crate::stats`]),
//! but the flight recorder wants *events*, not just counters: which operator
//! finished on which lane, when the pool's queue depth jumped, when a kernel
//! fell back to the scalar path. The bridge is a process-wide hook that
//! `quarry-core` installs once at lifecycle construction; until then every
//! emission is a single relaxed load of an unset [`OnceLock`] and costs
//! nothing.
//!
//! Emission sites are deliberately coarse — per region, per operator, per
//! fallback — never per row or per morsel, so the hook stays off the data
//! path's inner loops.

use std::sync::OnceLock;

/// A structured engine event, borrowed so emission never allocates. The
/// installed hook copies what it keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent<'a> {
    /// An operator finished executing (either executor, any lane).
    OpFinish {
        /// Operator name from the flow.
        op: &'a str,
        rows_in: u64,
        rows_out: u64,
        /// Pool lane that ran it (0 = calling/serial thread).
        lane: u32,
    },
    /// A pool region opened or closed; `depth` is the queue depth right
    /// after the transition, `jobs` the region's job count (0 on close).
    QueueDepth { depth: i64, jobs: u64 },
    /// An expression kernel dropped to the row-at-a-time scalar path;
    /// `total` is the process-lifetime fallback count after this one.
    KernelFallback { total: u64 },
    /// The result cache served one operator's output without executing its
    /// upstream cone.
    CacheHit { op: &'a str, rows: u64 },
    /// The result cache was consulted for an operator and had nothing.
    CacheMiss { op: &'a str },
    /// The result cache admitted one operator output.
    CacheInsert { op: &'a str, bytes: u64 },
    /// The result cache evicted one entry under budget pressure.
    CacheEvict { bytes: u64 },
}

type Hook = Box<dyn Fn(EngineEvent<'_>) + Send + Sync>;

static HOOK: OnceLock<Hook> = OnceLock::new();

/// Installs the process-wide event hook. The first caller wins; returns
/// whether this call installed its hook. Typically called once by
/// `quarry-core` to forward events into the flight recorder.
pub fn set_event_hook(hook: impl Fn(EngineEvent<'_>) + Send + Sync + 'static) -> bool {
    HOOK.set(Box::new(hook)).is_ok()
}

/// True once a hook is installed (diagnostics/tests).
pub fn event_hook_installed() -> bool {
    HOOK.get().is_some()
}

/// Forwards one event to the installed hook, if any.
pub(crate) fn emit(event: EngineEvent<'_>) {
    if let Some(hook) = HOOK.get() {
        hook(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_without_a_hook_is_a_no_op() {
        // Must not panic or allocate observably; the hook may or may not be
        // installed by a sibling test, so just exercise the path.
        emit(EngineEvent::QueueDepth { depth: 0, jobs: 0 });
        emit(EngineEvent::KernelFallback { total: 1 });
        emit(EngineEvent::OpFinish { op: "noop", rows_in: 0, rows_out: 0, lane: 0 });
    }
}
