//! Relations: schemas plus `Arc`-shared typed columns.
//!
//! Storage is columnar — one [`Column`] per schema attribute, shared via
//! `Arc` so projections and zero-copy operators are pointer bumps — but the
//! row view survives as a shim: [`Relation::row`], [`Relation::iter_rows`],
//! and [`Relation::to_rows`] materialize `Vec<Value>` rows on demand, which
//! keeps the deployer, repository, and cost model blissfully row-oriented.

use crate::column::{Column as Col, ColumnBuilder};
use crate::value::Value;
use quarry_etl::{ColType, Schema};
use std::fmt;
use std::sync::Arc;

/// A row of values, positionally aligned with a schema.
pub type Row = Vec<Value>;

/// An in-memory columnar relation.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub schema: Schema,
    pub(crate) columns: Vec<Arc<Col>>,
    pub(crate) nrows: usize,
}

impl Relation {
    pub fn new(schema: Schema) -> Self {
        let columns = schema.columns.iter().map(|c| Arc::new(Col::empty(c.ty))).collect();
        Relation { schema, columns, nrows: 0 }
    }

    /// Builds a relation from row-major data — every row is transposed into
    /// the typed column builders.
    pub fn with_rows(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        let mut b = RelationBuilder::new(schema);
        for row in rows {
            b.push_row(row);
        }
        b.finish()
    }

    /// Assembles a relation directly from columns (all the same length).
    pub fn from_columns(schema: Schema, columns: Vec<Arc<Col>>) -> Self {
        debug_assert_eq!(schema.len(), columns.len());
        let nrows = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == nrows));
        Relation { schema, columns, nrows }
    }

    pub fn len(&self) -> usize {
        self.nrows
    }

    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Index of a column by name; panics if missing (executor-internal,
    /// schemas were validated by the flow before execution).
    pub fn col(&self, name: &str) -> usize {
        self.schema.index_of(name).unwrap_or_else(|| panic!("column `{name}` missing from {}", self.schema))
    }

    /// The shared columns, in schema order.
    pub fn columns(&self) -> &[Arc<Col>] {
        &self.columns
    }

    /// One shared column by position.
    pub fn column(&self, i: usize) -> &Arc<Col> {
        &self.columns[i]
    }

    /// All values of one column (materialized).
    pub fn column_values(&self, name: &str) -> Vec<Value> {
        let c = &self.columns[self.col(name)];
        (0..c.len()).map(|i| c.value(i)).collect()
    }

    /// Row `i`, materialized — the row-view shim.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Iterator over materialized rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.nrows).map(|i| self.row(i))
    }

    /// Every row, materialized.
    pub fn to_rows(&self) -> Vec<Row> {
        self.iter_rows().collect()
    }

    /// Drops all rows, keeping the schema (columns reset to empty).
    pub fn clear(&mut self) {
        let tys: Vec<ColType> = self.schema.columns.iter().map(|c| c.ty).collect();
        self.columns = tys.into_iter().map(|ty| Arc::new(Col::empty(ty))).collect();
        self.nrows = 0;
    }

    /// Rows sorted by the full row, for order-insensitive comparisons.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.to_rows();
        rows.sort_by(row_cmp);
        rows
    }

    /// Estimated heap footprint of the relation: the sum of its columns'
    /// estimates (see [`Col::estimated_bytes`]) plus a small fixed overhead
    /// per column. Columns are `Arc`-shared, so this counts shared storage
    /// in full — a deliberate overestimate for cache-budget accounting.
    pub fn estimated_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.estimated_bytes() + 64).sum()
    }
}

/// Cell-wise logical equality: representations may differ (a dictionary
/// column equals a plain-string column holding the same strings), values
/// may not. Order-sensitive, like the row engine's `Vec<Row>` equality.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.nrows != other.nrows {
            return false;
        }
        self.columns
            .iter()
            .zip(&other.columns)
            .all(|(a, b)| Arc::ptr_eq(a, b) || (0..self.nrows).all(|i| a.value(i) == b.value(i)))
    }
}

pub(crate) fn row_cmp(a: &Row, b: &Row) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let c = x.total_cmp(y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in self.iter_rows().take(20) {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.nrows > 20 {
            writeln!(f, "  … {} more rows", self.nrows - 20)?;
        }
        Ok(())
    }
}

/// Asserts two relations hold the same bag of rows (order-insensitive) over
/// the same column names. Panics with a readable diff otherwise — the
/// backbone of the equivalence-rule correctness property tests.
pub fn assert_same_rows(a: &Relation, b: &Relation) {
    assert_eq!(a.schema.names().collect::<Vec<_>>(), b.schema.names().collect::<Vec<_>>(), "schemas differ");
    if a.sorted_rows() != b.sorted_rows() {
        panic!("relations differ:\nleft ({} rows):\n{a}\nright ({} rows):\n{b}", a.len(), b.len());
    }
}

/// Row-at-a-time construction of a columnar relation — the generator-facing
/// counterpart of [`Relation::with_rows`] that avoids buffering row vectors.
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    nrows: usize,
}

impl RelationBuilder {
    pub fn new(schema: Schema) -> Self {
        let builders = schema.columns.iter().map(|c| ColumnBuilder::new(c.ty)).collect();
        RelationBuilder { schema, builders, nrows: 0 }
    }

    pub fn push_row(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.builders.len());
        for (b, v) in self.builders.iter_mut().zip(row) {
            b.push(v);
        }
        self.nrows += 1;
    }

    pub fn finish(self) -> Relation {
        let columns: Vec<Arc<Col>> = self.builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        Relation { schema: self.schema, columns, nrows: self.nrows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_etl::{ColType, Column};

    fn rel() -> Relation {
        Relation::with_rows(
            Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Text)]),
            vec![vec![Value::Int(2), Value::Str("b".into())], vec![Value::Int(1), Value::Str("a".into())]],
        )
    }

    #[test]
    fn column_access() {
        let r = rel();
        assert_eq!(r.col("v"), 1);
        assert_eq!(r.column_values("k"), [Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn row_shim_materializes_rows() {
        let r = rel();
        assert_eq!(r.row(1), vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(r.to_rows().len(), 2);
        assert_eq!(r.iter_rows().next().unwrap()[0], Value::Int(2));
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn missing_column_panics() {
        rel().col("zzz");
    }

    #[test]
    fn sorted_rows_orders_by_full_row() {
        let rows = rel().sorted_rows();
        assert_eq!(rows[0][0], Value::Int(1));
    }

    #[test]
    fn same_rows_ignores_order() {
        let a = rel();
        let mut rows = rel().to_rows();
        rows.reverse();
        let b = Relation::with_rows(a.schema.clone(), rows);
        assert_same_rows(&a, &b);
    }

    #[test]
    #[should_panic(expected = "relations differ")]
    fn different_bags_panic() {
        let a = rel();
        let mut rows = rel().to_rows();
        rows.pop();
        let b = Relation::with_rows(a.schema.clone(), rows);
        assert_same_rows(&a, &b);
    }

    #[test]
    #[should_panic(expected = "schemas differ")]
    fn different_schemas_panic() {
        let a = rel();
        let b = Relation::new(Schema::new(vec![Column::new("x", ColType::Integer)]));
        assert_same_rows(&a, &b);
    }

    #[test]
    fn equality_is_order_sensitive_and_representation_blind() {
        let a = rel();
        let b = rel();
        assert_eq!(a, b);
        let mut rows = a.to_rows();
        rows.reverse();
        let c = Relation::with_rows(a.schema.clone(), rows);
        assert_ne!(a, c, "same bag, different order");
    }

    #[test]
    fn clear_keeps_schema_drops_rows() {
        let mut r = rel();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.schema.len(), 2);
    }

    #[test]
    fn builder_matches_with_rows() {
        let schema = rel().schema.clone();
        let mut b = RelationBuilder::new(schema.clone());
        b.push_row(vec![Value::Int(2), Value::Str("b".into())]);
        b.push_row(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(b.finish(), rel());
    }

    #[test]
    fn display_truncates() {
        let mut rows = rel().to_rows();
        for i in 0..30 {
            rows.push(vec![Value::Int(i), Value::Str("x".into())]);
        }
        let text = Relation::with_rows(rel().schema.clone(), rows).to_string();
        assert!(text.contains("more rows"));
    }
}
