//! Relations: schemas plus row vectors.

use crate::value::Value;
use quarry_etl::Schema;
use std::fmt;

/// A row of values, positionally aligned with a schema.
pub type Row = Vec<Value>;

/// An in-memory relation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl Relation {
    pub fn new(schema: Schema) -> Self {
        Relation { schema, rows: Vec::new() }
    }

    pub fn with_rows(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Relation { schema, rows }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name; panics if missing (executor-internal,
    /// schemas were validated by the flow before execution).
    pub fn col(&self, name: &str) -> usize {
        self.schema.index_of(name).unwrap_or_else(|| panic!("column `{name}` missing from {}", self.schema))
    }

    /// All values of one column (cloned).
    pub fn column_values(&self, name: &str) -> Vec<Value> {
        let i = self.col(name);
        self.rows.iter().map(|r| r[i].clone()).collect()
    }

    /// References to the rows, sorted by the full row — the allocation-free
    /// backbone of order-insensitive comparisons.
    pub fn sorted_row_refs(&self) -> Vec<&Row> {
        let mut refs: Vec<&Row> = self.rows.iter().collect();
        refs.sort_by(|a, b| row_cmp(a, b));
        refs
    }

    /// Rows sorted by the full row, for order-insensitive comparisons.
    /// Prefer [`Relation::sorted_row_refs`] when owned rows aren't needed.
    pub fn sorted_rows(&self) -> Vec<Row> {
        self.sorted_row_refs().into_iter().cloned().collect()
    }
}

fn row_cmp(a: &Row, b: &Row) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let c = x.total_cmp(y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in self.rows.iter().take(20) {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  … {} more rows", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

/// Asserts two relations hold the same bag of rows (order-insensitive) over
/// the same column names. Panics with a readable diff otherwise — the
/// backbone of the equivalence-rule correctness property tests.
pub fn assert_same_rows(a: &Relation, b: &Relation) {
    assert_eq!(a.schema.names().collect::<Vec<_>>(), b.schema.names().collect::<Vec<_>>(), "schemas differ");
    // Compare through sorted references: no row is cloned however large
    // the relations are.
    let (sa, sb) = (a.sorted_row_refs(), b.sorted_row_refs());
    if sa != sb {
        panic!("relations differ:\nleft ({} rows):\n{a}\nright ({} rows):\n{b}", a.len(), b.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_etl::{ColType, Column};

    fn rel() -> Relation {
        Relation::with_rows(
            Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Text)]),
            vec![vec![Value::Int(2), Value::Str("b".into())], vec![Value::Int(1), Value::Str("a".into())]],
        )
    }

    #[test]
    fn column_access() {
        let r = rel();
        assert_eq!(r.col("v"), 1);
        assert_eq!(r.column_values("k"), [Value::Int(2), Value::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn missing_column_panics() {
        rel().col("zzz");
    }

    #[test]
    fn sorted_rows_orders_by_full_row() {
        let rows = rel().sorted_rows();
        assert_eq!(rows[0][0], Value::Int(1));
    }

    #[test]
    fn same_rows_ignores_order() {
        let a = rel();
        let mut b = rel();
        b.rows.reverse();
        assert_same_rows(&a, &b);
    }

    #[test]
    #[should_panic(expected = "relations differ")]
    fn different_bags_panic() {
        let a = rel();
        let mut b = rel();
        b.rows.pop();
        assert_same_rows(&a, &b);
    }

    #[test]
    #[should_panic(expected = "schemas differ")]
    fn different_schemas_panic() {
        let a = rel();
        let b = Relation::new(Schema::new(vec![Column::new("x", ColType::Integer)]));
        assert_same_rows(&a, &b);
    }

    #[test]
    fn display_truncates() {
        let mut r = rel();
        for i in 0..30 {
            r.rows.push(vec![Value::Int(i), Value::Str("x".into())]);
        }
        let text = r.to_string();
        assert!(text.contains("more rows"));
    }
}
