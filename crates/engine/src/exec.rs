//! The flow executor: runs a validated logical flow against a catalog.
//!
//! The executor is morsel-driven: every row-at-a-time operator splits its
//! input into fixed-size morsels ([`MORSEL_ROWS`]) and processes them on the
//! shared worker pool ([`crate::pool`]), concatenating per-morsel results in
//! morsel order. Because the morsel structure is a function of input length
//! alone — never of the thread count — serial and parallel runs produce
//! bit-identical output, including the floating-point accumulation order of
//! aggregates and the insertion order of group keys.
//!
//! Expressions are compiled once per operator ([`CompiledExpr`]) before any
//! row is touched, so the per-row hot loops do positional column access
//! instead of name hashing.

use crate::catalog::Catalog;
use crate::eval::{eval_compiled, truthy, EvalError};
use crate::pool;
use crate::relation::{Relation, Row};
use crate::value::Value;
use quarry_etl::{AggSpec, CompiledExpr, Expr, Flow, FlowError, JoinKind, OpId, OpKind, Schema, UnboundColumn};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows per morsel. Fixed (not derived from the thread count) so that the
/// same input always decomposes identically and results are reproducible
/// under any parallelism.
pub const MORSEL_ROWS: usize = 4096;

/// Errors raised during execution.
#[derive(Debug)]
pub enum EngineError {
    Flow(FlowError),
    Eval {
        op: String,
        error: EvalError,
    },
    UnknownTable(String),
    /// A datastore asks for a column the catalog table does not have.
    SourceSchemaMismatch {
        table: String,
        column: String,
    },
    LoadSchemaMismatch {
        table: String,
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Flow(e) => write!(f, "{e}"),
            EngineError::Eval { op, error } => write!(f, "evaluating `{op}`: {error}"),
            EngineError::UnknownTable(t) => write!(f, "unknown source table `{t}`"),
            EngineError::SourceSchemaMismatch { table, column } => {
                write!(f, "source table `{table}` has no column `{column}`")
            }
            EngineError::LoadSchemaMismatch { table, detail } => {
                write!(f, "loading into `{table}`: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<FlowError> for EngineError {
    fn from(e: FlowError) -> Self {
        EngineError::Flow(e)
    }
}

/// Wall-clock timing and row counts of one executed operation.
///
/// `elapsed` is measured inside the operation's job, from the instant it
/// starts executing on a worker — it covers the operation's own work only,
/// never time spent queued behind other operations or waiting at a level
/// barrier.
#[derive(Debug, Clone)]
pub struct OpTiming {
    pub op: String,
    pub kind: &'static str,
    /// Total rows across the operation's inputs (0 for datastores).
    pub rows_in: usize,
    pub rows_out: usize,
    pub elapsed: Duration,
    /// Pool lane the operation ran on (see [`pool::worker_slot`]): 0 for the
    /// calling/serial thread, `h` for helper lane `h`.
    pub worker: usize,
}

/// The result of executing a flow.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Rows loaded per target table, in load order.
    pub loaded: Vec<(String, usize)>,
    /// Per-operation timings in execution order.
    pub timings: Vec<OpTiming>,
    /// Total wall-clock time of the run.
    pub total: Duration,
    /// Total rows emitted across all operations (work proxy).
    pub rows_processed: usize,
}

impl RunReport {
    pub fn rows_loaded(&self, table: &str) -> usize {
        self.loaded.iter().filter(|(t, _)| t == table).map(|(_, n)| n).sum()
    }
}

/// The execution engine: owns a catalog and runs flows against it.
#[derive(Debug, Default)]
pub struct Engine {
    pub catalog: Catalog,
}

impl Engine {
    pub fn new(catalog: Catalog) -> Self {
        Engine { catalog }
    }

    /// Executes a flow: sources read from the catalog, loaders append to
    /// (auto-creating) target tables. Returns the run report.
    ///
    /// Operations run one after another in topological order; each operation
    /// may still parallelise internally over its morsels. Results are
    /// identical to [`Engine::run_parallel`] by construction.
    pub fn run(&mut self, flow: &Flow) -> Result<RunReport, EngineError> {
        let order = flow.topo_order()?;
        flow.schemas()?; // full static validation before touching data
        let start = Instant::now();
        let mut results: HashMap<OpId, Arc<Relation>> = HashMap::with_capacity(order.len());
        let mut report = RunReport::default();
        for id in order {
            let op = flow.op(id);
            let inputs: Vec<Arc<Relation>> = flow.inputs_of(id).into_iter().map(|i| Arc::clone(&results[&i])).collect();
            let rows_in = inputs.iter().map(|r| r.len()).sum();
            let t0 = Instant::now();
            let out: Arc<Relation> = match &op.kind {
                OpKind::Loader { table, key } => {
                    self.load(table, key, &inputs[0], &mut report)?;
                    Arc::clone(&inputs[0])
                }
                pure => execute_pure(&self.catalog, &op.name, pure, &inputs)?,
            };
            let elapsed = t0.elapsed();
            report.rows_processed += out.len();
            report.timings.push(OpTiming {
                op: op.name.clone(),
                kind: op.kind.type_name(),
                rows_in,
                rows_out: out.len(),
                elapsed,
                worker: 0,
            });
            results.insert(id, out);
        }
        report.total = start.elapsed();
        Ok(report)
    }

    /// Executes a flow with inter-operator parallelism layered on top of the
    /// per-operator morsel parallelism: operations whose inputs are all
    /// available run concurrently on the shared worker pool. Both layers
    /// draw threads from one budget, so nesting never oversubscribes the
    /// machine. Loaders execute at level boundaries with exclusive catalog
    /// access, so results are identical to [`Engine::run`].
    pub fn run_parallel(&mut self, flow: &Flow) -> Result<RunReport, EngineError> {
        flow.schemas()?;
        let order = flow.topo_order()?;
        // Level assignment: level(op) = 1 + max(level(inputs)).
        let mut level_of: HashMap<OpId, usize> = HashMap::with_capacity(order.len());
        let mut levels: Vec<Vec<OpId>> = Vec::new();
        for &id in &order {
            let level = flow.inputs_of(id).iter().map(|i| level_of[i] + 1).max().unwrap_or(0);
            level_of.insert(id, level);
            if levels.len() <= level {
                levels.resize_with(level + 1, Vec::new);
            }
            levels[level].push(id);
        }

        let start = Instant::now();
        let mut results: HashMap<OpId, Arc<Relation>> = HashMap::with_capacity(order.len());
        let mut report = RunReport::default();
        for level in levels {
            let (pure_ops, sinks): (Vec<OpId>, Vec<OpId>) =
                level.into_iter().partition(|&id| !flow.op(id).kind.is_sink());
            // Pure operations of one level run concurrently on the pool.
            // Each job starts its clock when it begins executing, so the
            // recorded elapsed time is the operation's own work, not the
            // time it spent queued or waiting for siblings to finish.
            let catalog = &self.catalog;
            let jobs: Vec<(OpId, Vec<Arc<Relation>>)> = pure_ops
                .into_iter()
                .map(|id| (id, flow.inputs_of(id).into_iter().map(|i| Arc::clone(&results[&i])).collect()))
                .collect();
            // Output relation, measured elapsed time, and the pool lane that ran it.
            type PureOutcome = (Arc<Relation>, Duration, usize);
            let outcomes: Vec<Result<PureOutcome, EngineError>> = pool::run_indexed(jobs.len(), |i| {
                let (id, inputs) = &jobs[i];
                let op = flow.op(*id);
                let worker = pool::worker_slot();
                let t0 = Instant::now();
                let out = execute_pure(catalog, &op.name, &op.kind, inputs)?;
                Ok((out, t0.elapsed(), worker))
            });
            for ((id, inputs), outcome) in jobs.iter().zip(outcomes) {
                let (out, elapsed, worker) = outcome?;
                let op = flow.op(*id);
                report.rows_processed += out.len();
                report.timings.push(OpTiming {
                    op: op.name.clone(),
                    kind: op.kind.type_name(),
                    rows_in: inputs.iter().map(|r| r.len()).sum(),
                    rows_out: out.len(),
                    elapsed,
                    worker,
                });
                results.insert(*id, out);
            }
            // Sinks take exclusive catalog access, in deterministic order.
            for id in sinks {
                let op = flow.op(id);
                let inputs: Vec<Arc<Relation>> =
                    flow.inputs_of(id).into_iter().map(|i| Arc::clone(&results[&i])).collect();
                let rows_in = inputs.iter().map(|r| r.len()).sum();
                let t0 = Instant::now();
                let out: Arc<Relation> = match &op.kind {
                    OpKind::Loader { table, key } => {
                        self.load(table, key, &inputs[0], &mut report)?;
                        Arc::clone(&inputs[0])
                    }
                    pure => execute_pure(&self.catalog, &op.name, pure, &inputs)?,
                };
                report.rows_processed += out.len();
                report.timings.push(OpTiming {
                    op: op.name.clone(),
                    kind: op.kind.type_name(),
                    rows_in,
                    rows_out: out.len(),
                    elapsed: t0.elapsed(),
                    worker: 0,
                });
                results.insert(id, out);
            }
        }
        report.total = start.elapsed();
        Ok(report)
    }

    /// Loader execution: append (empty key, strict schema) or upsert.
    fn load(
        &mut self,
        table: &str,
        key: &[String],
        input: &Arc<Relation>,
        report: &mut RunReport,
    ) -> Result<(), EngineError> {
        if key.is_empty() {
            match self.catalog.get_mut(table) {
                Some(existing) => {
                    if existing.schema.names().collect::<Vec<_>>() != input.schema.names().collect::<Vec<_>>() {
                        return Err(EngineError::LoadSchemaMismatch {
                            table: table.to_string(),
                            detail: format!("target is {}, input is {}", existing.schema, input.schema),
                        });
                    }
                    existing.rows.extend(input.rows.iter().cloned());
                }
                None => {
                    // First load into a fresh table: share the rows. A later
                    // append copies-on-write only if the flow result is
                    // still alive.
                    self.catalog.put_shared(table.to_string(), Arc::clone(input));
                }
            }
        } else {
            upsert(&mut self.catalog, table, input, key)
                .map_err(|detail| EngineError::LoadSchemaMismatch { table: table.to_string(), detail })?;
        }
        report.loaded.push((table.to_string(), input.len()));
        Ok(())
    }
}

/// The morsel decomposition of `len` rows: contiguous ranges of at most
/// [`MORSEL_ROWS`] rows, in order. Empty input has no morsels.
fn morsel_ranges(len: usize) -> Vec<Range<usize>> {
    (0..len).step_by(MORSEL_ROWS).map(|start| start..len.min(start + MORSEL_ROWS)).collect()
}

/// Applies `f` to every morsel of `0..len` on the worker pool and returns
/// the per-morsel results in morsel order.
fn per_morsel<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = morsel_ranges(len);
    pool::run_indexed(ranges.len(), |i| f(ranges[i].clone()))
}

/// Concatenates per-morsel row chunks in morsel order.
fn concat(chunks: Vec<Vec<Row>>) -> Vec<Row> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut rows = Vec::with_capacity(total);
    for mut c in chunks {
        rows.append(&mut c);
    }
    rows
}

/// Concatenates fallible per-morsel chunks in morsel order; the first error
/// in morsel order wins, which is deterministic for any thread count.
fn try_concat(chunks: Vec<Result<Vec<Row>, EvalError>>) -> Result<Vec<Row>, EvalError> {
    let mut rows = Vec::new();
    for c in chunks {
        let mut c = c?;
        rows.append(&mut c);
    }
    Ok(rows)
}

/// Binds an operator's expression against its input schema, once, before
/// any row is processed. Unknown columns surface here instead of on the
/// first evaluated row.
fn compile(expr: &Expr, schema: &Schema, op: &str) -> Result<CompiledExpr, EngineError> {
    CompiledExpr::compile(expr, schema)
        .map_err(|UnboundColumn(c)| EngineError::Eval { op: op.to_string(), error: EvalError::UnknownColumn(c) })
}

/// Executes one catalog-read-only operation (everything but loaders).
///
/// Returns a reference-counted relation so that pass-through operations —
/// a datastore whose declared schema matches the catalog table, an
/// extraction or projection that keeps every column in place — can share
/// their input instead of copying every row.
fn execute_pure(
    catalog: &Catalog,
    name: &str,
    kind: &OpKind,
    inputs: &[Arc<Relation>],
) -> Result<Arc<Relation>, EngineError> {
    let eval_err = |e: EvalError| EngineError::Eval { op: name.to_string(), error: e };
    match kind {
        OpKind::Datastore { datastore, schema } => {
            let table = catalog.get_shared(datastore).ok_or_else(|| EngineError::UnknownTable(datastore.clone()))?;
            if *schema == table.schema {
                // The declared extraction schema is the table's own layout:
                // hand out the table itself, zero rows copied.
                return Ok(table);
            }
            // Project the catalog table onto the declared extraction
            // schema (catalog tables may carry more columns, e.g. FKs).
            let indices: Vec<usize> = schema
                .columns
                .iter()
                .map(|c| {
                    table.schema.index_of(&c.name).ok_or_else(|| EngineError::SourceSchemaMismatch {
                        table: datastore.clone(),
                        column: c.name.clone(),
                    })
                })
                .collect::<Result<_, _>>()?;
            let chunks = per_morsel(table.len(), |rg| {
                table.rows[rg].iter().map(|r| indices.iter().map(|&i| r[i].clone()).collect()).collect()
            });
            Ok(Arc::new(Relation::with_rows(schema.clone(), concat(chunks))))
        }
        OpKind::Extraction { columns } | OpKind::Projection { columns } => {
            let input = &inputs[0];
            let indices: Vec<usize> = columns.iter().map(|c| input.col(c)).collect();
            if indices.len() == input.schema.len() && indices.iter().enumerate().all(|(pos, &i)| pos == i) {
                // Keeps every column in place: the output IS the input.
                return Ok(Arc::clone(input));
            }
            let schema = input.schema.project(columns).expect("validated");
            let chunks = per_morsel(input.len(), |rg| {
                input.rows[rg].iter().map(|r| indices.iter().map(|&i| r[i].clone()).collect()).collect()
            });
            Ok(Arc::new(Relation::with_rows(schema, concat(chunks))))
        }
        OpKind::Selection { predicate } => {
            let input = &inputs[0];
            let predicate = compile(predicate, &input.schema, name)?;
            let chunks = per_morsel(input.len(), |rg| {
                let mut keep = Vec::new();
                for r in &input.rows[rg] {
                    if truthy(&eval_compiled(&predicate, r)?) {
                        keep.push(r.clone());
                    }
                }
                Ok(keep)
            });
            Ok(Arc::new(Relation::with_rows(input.schema.clone(), try_concat(chunks).map_err(eval_err)?)))
        }
        OpKind::Derivation { column: _, expr } => {
            let input = &inputs[0];
            let schema = kind.output_schema(name, std::slice::from_ref(&input.schema))?;
            let expr = compile(expr, &input.schema, name)?;
            let chunks = per_morsel(input.len(), |rg| {
                let mut out = Vec::with_capacity(rg.len());
                for r in &input.rows[rg] {
                    let v = eval_compiled(&expr, r)?;
                    // One allocation at the widened size, instead of a
                    // clone at the old size plus a reallocating push.
                    let mut row = Vec::with_capacity(r.len() + 1);
                    row.extend_from_slice(r);
                    row.push(v);
                    out.push(row);
                }
                Ok(out)
            });
            Ok(Arc::new(Relation::with_rows(schema, try_concat(chunks).map_err(eval_err)?)))
        }
        OpKind::Join { kind: jk, left_on, right_on } => {
            Ok(Arc::new(hash_join(&inputs[0], &inputs[1], left_on, right_on, *jk)))
        }
        OpKind::Aggregation { group_by, aggregates } => {
            hash_aggregate(&inputs[0], group_by, aggregates, name).map(Arc::new).map_err(eval_err)
        }
        OpKind::Union => {
            let mut rows = inputs[0].rows.clone();
            // Align the right input positionally by column name; when the
            // layouts already agree (the common case), rows copy verbatim
            // instead of value-by-value re-collection.
            let indices: Vec<usize> = inputs[0].schema.names().map(|n| inputs[1].col(n)).collect();
            if indices.iter().enumerate().all(|(pos, &i)| pos == i) {
                rows.extend(inputs[1].rows.iter().cloned());
            } else {
                rows.extend(inputs[1].rows.iter().map(|r| indices.iter().map(|&i| r[i].clone()).collect::<Row>()));
            }
            Ok(Arc::new(Relation::with_rows(inputs[0].schema.clone(), rows)))
        }
        OpKind::Distinct => {
            let input = &inputs[0];
            // Track seen rows by reference: one clone per emitted row
            // instead of two per input row.
            let mut seen = std::collections::HashSet::with_capacity(input.len());
            let mut rows = Vec::new();
            for r in &input.rows {
                if seen.insert(r) {
                    rows.push(r.clone());
                }
            }
            Ok(Arc::new(Relation::with_rows(input.schema.clone(), rows)))
        }
        OpKind::Sort { columns } => {
            let input = &inputs[0];
            let indices: Vec<usize> = columns.iter().map(|c| input.col(c)).collect();
            // Sort a permutation, then clone rows once in output order:
            // the (stable) sort itself moves 8-byte indices, not rows.
            let mut order: Vec<usize> = (0..input.len()).collect();
            order.sort_by(|&a, &b| {
                for &i in &indices {
                    let c = input.rows[a][i].total_cmp(&input.rows[b][i]);
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let rows = order.into_iter().map(|i| input.rows[i].clone()).collect();
            Ok(Arc::new(Relation::with_rows(input.schema.clone(), rows)))
        }
        OpKind::SurrogateKey { natural, output: _ } => {
            let input = &inputs[0];
            let schema = kind.output_schema(name, std::slice::from_ref(&input.schema))?;
            let indices: Vec<usize> = natural.iter().map(|c| input.col(c)).collect();
            let chunks = per_morsel(input.len(), |rg| {
                input.rows[rg]
                    .iter()
                    .map(|r| {
                        // Content-addressed surrogate (FNV-1a over the
                        // natural key): the same natural key yields the same
                        // surrogate in *any* flow, so fact FKs computed in
                        // the fact pipeline match dimension keys computed in
                        // dimension pipelines.
                        let sk = surrogate_of(indices.iter().map(|&i| &r[i]));
                        let mut row = r.clone();
                        row.push(Value::Int(sk));
                        row
                    })
                    .collect()
            });
            Ok(Arc::new(Relation::with_rows(schema, concat(chunks))))
        }
        OpKind::Loader { .. } => unreachable!("loaders are executed by Engine::load"),
    }
}

/// Upsert-merges `input` into the catalog table `table` keyed on `key`:
/// the target schema takes the union of columns (old rows padded with NULL),
/// and input rows overwrite/fill the columns they carry for matching keys.
fn upsert(catalog: &mut Catalog, table: &str, input: &Relation, key: &[String]) -> Result<(), String> {
    if !catalog.contains(table) {
        // Create empty, then run the merge below: the input itself may
        // carry several rows per key (e.g. a fact-grain recomputation), and
        // the table must end up deduplicated by key either way.
        catalog.put(table.to_string(), Relation::new(input.schema.clone()));
    }
    let existing = catalog.get_mut(table).expect("created above");
    // Widen the schema to the union; check types of shared columns.
    for c in &input.schema.columns {
        match existing.schema.column(&c.name) {
            Some(prev) if prev.ty != c.ty => {
                return Err(format!("column `{}` is {} in the target but {} in the input", c.name, prev.ty, c.ty));
            }
            Some(_) => {}
            None => {
                existing.schema.columns.push(c.clone());
                for row in &mut existing.rows {
                    row.push(Value::Null);
                }
            }
        }
    }
    let key_idx_target: Vec<usize> = key
        .iter()
        .map(|k| existing.schema.index_of(k).ok_or_else(|| format!("upsert key `{k}` missing from target")))
        .collect::<Result<_, _>>()?;
    let key_idx_input: Vec<usize> = key
        .iter()
        .map(|k| input.schema.index_of(k).ok_or_else(|| format!("upsert key `{k}` missing from input")))
        .collect::<Result<_, _>>()?;
    let mut index: HashMap<Row, usize> = existing
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| (key_idx_target.iter().map(|&c| r[c].clone()).collect::<Row>(), i))
        .collect();
    // Input column → target position.
    let positions: Vec<usize> =
        input.schema.columns.iter().map(|c| existing.schema.index_of(&c.name).expect("widened above")).collect();
    let width = existing.schema.len();
    for r in &input.rows {
        let k: Row = key_idx_input.iter().map(|&c| r[c].clone()).collect();
        match index.get(&k) {
            Some(&slot) => {
                for (v, &pos) in r.iter().zip(&positions) {
                    existing.rows[slot][pos] = v.clone();
                }
            }
            None => {
                let mut row = vec![Value::Null; width];
                for (v, &pos) in r.iter().zip(&positions) {
                    row[pos] = v.clone();
                }
                index.insert(k, existing.rows.len());
                existing.rows.push(row);
            }
        }
    }
    Ok(())
}

/// Deterministic surrogate key: FNV-1a over the display forms of the natural
/// key values, masked positive. Stable across flows and runs.
///
/// The display bytes stream straight into the hash through a [`fmt::Write`]
/// adapter — no value is ever rendered to an intermediate string.
pub fn surrogate_of<'a>(values: impl Iterator<Item = &'a Value>) -> i64 {
    struct Fnv(u64);
    impl std::fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
            Ok(())
        }
    }
    let mut fnv = Fnv(0xcbf29ce484222325);
    for v in values {
        use std::fmt::Write;
        write!(fnv, "{v}").expect("hash writer never fails");
        // Separator between key parts so ("ab","c") != ("a","bc").
        fnv.0 ^= 0x1f;
        fnv.0 = fnv.0.wrapping_mul(0x100000001b3);
    }
    (fnv.0 & 0x7fff_ffff_ffff_ffff) as i64
}

fn hash_join(left: &Relation, right: &Relation, left_on: &[String], right_on: &[String], kind: JoinKind) -> Relation {
    let l_idx: Vec<usize> = left_on.iter().map(|c| left.col(c)).collect();
    let r_idx: Vec<usize> = right_on.iter().map(|c| right.col(c)).collect();
    // Build on the right side, probe with the left (FK joins probe the big
    // side in DW flows). The build is partitioned: each morsel hashes its
    // rows into a local table, and the locals merge in morsel order, so
    // every key's match list is in ascending row order — exactly what a
    // serial build produces.
    let parts: Vec<HashMap<Row, Vec<usize>>> = per_morsel(right.len(), |rg| {
        let mut m: HashMap<Row, Vec<usize>> = HashMap::new();
        for i in rg {
            let r = &right.rows[i];
            let key: Row = r_idx.iter().map(|&c| r[c].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never match
            }
            m.entry(key).or_default().push(i);
        }
        m
    });
    let mut build: HashMap<Row, Vec<usize>> = HashMap::with_capacity(right.len());
    for part in parts {
        for (k, mut ids) in part {
            build.entry(k).or_default().append(&mut ids);
        }
    }
    // Same-name equi-joined key columns are kept once (left copy), matching
    // the logical schema propagation.
    let kept = quarry_etl::join_kept_right_indices(&right.schema, left_on, right_on);
    let mut schema = left.schema.clone();
    schema.columns.extend(kept.iter().map(|&i| right.schema.columns[i].clone()));
    // Probe morsel-parallel over the left side; chunks concatenate in
    // morsel order, preserving the serial output order. The probe key lives
    // in a per-morsel scratch buffer (`Vec<Value>: Borrow<[Value]>` lets the
    // map look it up without an owned key), and output rows are allocated
    // at their final width, so the inner loop performs exactly one
    // allocation per emitted row.
    let out_width = schema.len();
    let chunks = per_morsel(left.len(), |rg| {
        let mut out = Vec::new();
        let mut key: Row = Vec::with_capacity(l_idx.len());
        for l in &left.rows[rg] {
            key.clear();
            key.extend(l_idx.iter().map(|&c| l[c].clone()));
            let matches = if key.iter().any(Value::is_null) { None } else { build.get(key.as_slice()) };
            let emit = |m: &[usize], out: &mut Vec<Row>| {
                for &m in m {
                    let mut row = Vec::with_capacity(out_width);
                    row.extend_from_slice(l);
                    row.extend(kept.iter().map(|&i| right.rows[m][i].clone()));
                    out.push(row);
                }
            };
            match matches {
                Some(ms) => emit(ms, &mut out),
                None => {
                    if kind == JoinKind::Left {
                        let mut row = Vec::with_capacity(out_width);
                        row.extend_from_slice(l);
                        row.extend(std::iter::repeat_n(Value::Null, kept.len()));
                        out.push(row);
                    }
                }
            }
        }
        out
    });
    Relation::with_rows(schema, concat(chunks))
}

/// One morsel's insertion-ordered aggregation table: group keys in first-seen
/// order, each with its accumulator per measure.
type LocalAggTable = Vec<(Row, Vec<AggState>)>;

#[derive(Debug, Clone)]
enum AggState {
    Sum(f64, bool),
    Avg(f64, u64),
    Min(Option<Value>),
    Max(Option<Value>),
    Count(u64),
}

/// Folds one evaluated measure value into an accumulator.
fn accumulate(state: &mut AggState, v: Value) -> Result<(), EvalError> {
    match state {
        AggState::Count(n) => *n += 1,
        _ if v.is_null() => {}
        AggState::Sum(acc, any) => {
            *acc += v.as_f64().ok_or_else(|| EvalError::Type(format!("SUM of `{v}`")))?;
            *any = true;
        }
        AggState::Avg(acc, n) => {
            *acc += v.as_f64().ok_or_else(|| EvalError::Type(format!("AVERAGE of `{v}`")))?;
            *n += 1;
        }
        AggState::Min(cur) => {
            if cur.as_ref().is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less) {
                *cur = Some(v);
            }
        }
        AggState::Max(cur) => {
            if cur.as_ref().is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater) {
                *cur = Some(v);
            }
        }
    }
    Ok(())
}

/// Merges a later morsel's accumulator into an earlier one. Ties keep the
/// earlier value, matching the row-order semantics of a serial fold.
fn merge_state(into: &mut AggState, from: AggState) {
    match (into, from) {
        (AggState::Sum(acc, any), AggState::Sum(acc2, any2)) => {
            *acc += acc2;
            *any |= any2;
        }
        (AggState::Avg(acc, n), AggState::Avg(acc2, n2)) => {
            *acc += acc2;
            *n += n2;
        }
        (AggState::Min(cur), AggState::Min(other)) => {
            if let Some(v) = other {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less) {
                    *cur = Some(v);
                }
            }
        }
        (AggState::Max(cur), AggState::Max(other)) => {
            if let Some(v) = other {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater) {
                    *cur = Some(v);
                }
            }
        }
        (AggState::Count(n), AggState::Count(m)) => *n += m,
        _ => unreachable!("morsel accumulators always align by aggregate spec"),
    }
}

/// Two-phase parallel aggregation. Phase 1 folds each morsel into a local
/// insertion-ordered table; phase 2 merges the locals in morsel order, so
/// group keys come out in global first-occurrence order and the combined
/// accumulators are a pure function of the morsel structure — identical for
/// serial and parallel runs at any thread count.
fn hash_aggregate(
    input: &Relation,
    group_by: &[String],
    aggregates: &[AggSpec],
    op_name: &str,
) -> Result<Relation, EvalError> {
    let schema = OpKind::Aggregation { group_by: group_by.to_vec(), aggregates: aggregates.to_vec() }
        .output_schema(op_name, std::slice::from_ref(&input.schema))
        .expect("validated before execution");
    let g_idx: Vec<usize> = group_by.iter().map(|c| input.col(c)).collect();
    // Bind measure expressions and aggregate functions once, up front.
    let measures: Vec<CompiledExpr> = aggregates
        .iter()
        .map(|a| CompiledExpr::compile(&a.input, &input.schema).map_err(|UnboundColumn(c)| EvalError::UnknownColumn(c)))
        .collect::<Result<_, _>>()?;
    let fresh_states: Vec<AggState> = aggregates
        .iter()
        .map(|a| match a.function.to_ascii_uppercase().as_str() {
            "SUM" => AggState::Sum(0.0, false),
            "AVG" | "AVERAGE" => AggState::Avg(0.0, 0),
            "MIN" => AggState::Min(None),
            "MAX" => AggState::Max(None),
            _ => AggState::Count(0),
        })
        .collect();

    // Phase 1: one insertion-ordered local table per morsel.
    let locals: Vec<Result<LocalAggTable, EvalError>> = per_morsel(input.len(), |rg| {
        let mut index: HashMap<Row, usize> = HashMap::new();
        let mut groups: LocalAggTable = Vec::new();
        // Scratch key buffer: the usual case is a repeated group, where the
        // lookup-by-slice finds the slot without allocating a key.
        let mut key: Row = Vec::with_capacity(g_idx.len());
        for r in &input.rows[rg] {
            key.clear();
            key.extend(g_idx.iter().map(|&c| r[c].clone()));
            let slot = match index.get(key.as_slice()) {
                Some(&s) => s,
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key.clone(), fresh_states.clone()));
                    groups.len() - 1
                }
            };
            for (state, m) in groups[slot].1.iter_mut().zip(&measures) {
                accumulate(state, eval_compiled(m, r)?)?;
            }
        }
        Ok(groups)
    });

    // Phase 2: merge locals in morsel order.
    let mut index: HashMap<Row, usize> = HashMap::new();
    let mut groups: Vec<(Row, Vec<AggState>)> = Vec::new();
    for local in locals {
        for (key, states) in local? {
            match index.get(&key) {
                Some(&slot) => {
                    for (into, from) in groups[slot].1.iter_mut().zip(states) {
                        merge_state(into, from);
                    }
                }
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, states));
                }
            }
        }
    }
    // A global aggregation over zero rows still yields one row of neutral
    // values, matching SQL semantics.
    if groups.is_empty() && group_by.is_empty() {
        groups.push((Vec::new(), fresh_states));
    }
    let rows = groups
        .into_iter()
        .map(|(mut key, states)| {
            for state in states {
                key.push(match state {
                    AggState::Sum(acc, any) => {
                        if any {
                            Value::Float(acc)
                        } else {
                            Value::Null
                        }
                    }
                    AggState::Avg(acc, n) => {
                        if n > 0 {
                            Value::Float(acc / n as f64)
                        } else {
                            Value::Null
                        }
                    }
                    AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
                    AggState::Count(n) => Value::Int(n as i64),
                });
            }
            key
        })
        .collect();
    Ok(Relation::with_rows(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_etl::{parse_expr, ColType, Column, Schema};

    fn li_schema() -> Schema {
        Schema::new(vec![
            Column::new("l_orderkey", ColType::Integer),
            Column::new("l_extendedprice", ColType::Decimal),
            Column::new("l_discount", ColType::Decimal),
        ])
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.put(
            "lineitem",
            Relation::with_rows(
                li_schema(),
                vec![
                    vec![Value::Int(1), Value::Float(100.0), Value::Float(0.05)],
                    vec![Value::Int(1), Value::Float(200.0), Value::Float(0.00)],
                    vec![Value::Int(2), Value::Float(50.0), Value::Float(0.10)],
                ],
            ),
        );
        c.put(
            "orders",
            Relation::with_rows(
                Schema::new(vec![Column::new("o_orderkey", ColType::Integer), Column::new("o_status", ColType::Text)]),
                vec![vec![Value::Int(1), Value::Str("O".into())], vec![Value::Int(3), Value::Str("F".into())]],
            ),
        );
        c
    }

    fn ds_lineitem() -> OpKind {
        OpKind::Datastore { datastore: "lineitem".into(), schema: li_schema() }
    }

    #[test]
    fn scan_filter_aggregate_load() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let s = f.append(d, "SEL", OpKind::Selection { predicate: parse_expr("l_discount > 0.01").unwrap() }).unwrap();
        let a = f
            .append(
                s,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec!["l_orderkey".into()],
                    aggregates: vec![AggSpec::new(
                        "SUM",
                        parse_expr("l_extendedprice * (1 - l_discount)").unwrap(),
                        "rev",
                    )],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "fact".into(), key: vec![] }).unwrap();

        let mut engine = Engine::new(catalog());
        let report = engine.run(&f).unwrap();
        assert_eq!(report.rows_loaded("fact"), 2);
        let fact = engine.catalog.get("fact").unwrap();
        assert_eq!(fact.len(), 2);
        let rev = fact.column_values("rev");
        assert_eq!(rev[0], Value::Float(95.0));
        assert_eq!(rev[1], Value::Float(45.0));
        assert!(report.total >= Duration::ZERO);
        assert_eq!(report.timings.len(), 4);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let s1 =
            f.append(d, "SEL1", OpKind::Selection { predicate: parse_expr("l_discount > 0.01").unwrap() }).unwrap();
        let s2 =
            f.append(d, "SEL2", OpKind::Selection { predicate: parse_expr("l_extendedprice > 60").unwrap() }).unwrap();
        let a1 = f
            .append(
                s1,
                "AGG1",
                OpKind::Aggregation {
                    group_by: vec!["l_orderkey".into()],
                    aggregates: vec![AggSpec::new("SUM", parse_expr("l_extendedprice").unwrap(), "rev")],
                },
            )
            .unwrap();
        let a2 = f
            .append(
                s2,
                "AGG2",
                OpKind::Aggregation {
                    group_by: vec!["l_orderkey".into()],
                    aggregates: vec![AggSpec::new("COUNT", parse_expr("1").unwrap(), "n")],
                },
            )
            .unwrap();
        f.append(a1, "L1", OpKind::Loader { table: "out1".into(), key: vec![] }).unwrap();
        f.append(a2, "L2", OpKind::Loader { table: "out2".into(), key: vec![] }).unwrap();

        let mut seq = Engine::new(catalog());
        seq.run(&f).unwrap();
        let mut par = Engine::new(catalog());
        let report = par.run_parallel(&f).unwrap();
        for t in ["out1", "out2"] {
            crate::relation::assert_same_rows(seq.catalog.get(t).unwrap(), par.catalog.get(t).unwrap());
        }
        assert_eq!(report.timings.len(), f.op_count());
        assert_eq!(report.loaded.len(), 2);
    }

    #[test]
    fn parallel_run_surfaces_errors() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", OpKind::Datastore { datastore: "ghost".into(), schema: li_schema() }).unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        assert!(matches!(engine.run_parallel(&f), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn datastore_projects_catalog_columns() {
        // Extraction schema narrower than the stored table works.
        let mut f = Flow::new("t");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "lineitem".into(),
                    schema: Schema::new(vec![Column::new("l_discount", ColType::Decimal)]),
                },
            )
            .unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        assert_eq!(engine.catalog.get("out").unwrap().schema.len(), 1);
    }

    #[test]
    fn missing_table_and_column_errors() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", OpKind::Datastore { datastore: "ghost".into(), schema: li_schema() }).unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        assert!(matches!(engine.run(&f), Err(EngineError::UnknownTable(t)) if t == "ghost"));

        let mut f2 = Flow::new("t2");
        let d2 = f2
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "lineitem".into(),
                    schema: Schema::new(vec![Column::new("nope", ColType::Integer)]),
                },
            )
            .unwrap();
        f2.append(d2, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine2 = Engine::new(catalog());
        assert!(matches!(engine2.run(&f2), Err(EngineError::SourceSchemaMismatch { .. })));
    }

    #[test]
    fn inner_and_left_join() {
        for (kind, expected) in [(JoinKind::Inner, 2usize), (JoinKind::Left, 3usize)] {
            let mut f = Flow::new("t");
            let l = f.add_op("L", ds_lineitem()).unwrap();
            let o = f
                .add_op(
                    "O",
                    OpKind::Datastore {
                        datastore: "orders".into(),
                        schema: Schema::new(vec![
                            Column::new("o_orderkey", ColType::Integer),
                            Column::new("o_status", ColType::Text),
                        ]),
                    },
                )
                .unwrap();
            let j = f
                .add_op(
                    "J",
                    OpKind::Join { kind, left_on: vec!["l_orderkey".into()], right_on: vec!["o_orderkey".into()] },
                )
                .unwrap();
            f.connect(l, j).unwrap();
            f.connect(o, j).unwrap();
            f.append(j, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
            let mut engine = Engine::new(catalog());
            engine.run(&f).unwrap();
            assert_eq!(engine.catalog.get("out").unwrap().len(), expected, "{kind:?}");
        }
    }

    #[test]
    fn left_join_pads_with_nulls() {
        let mut f = Flow::new("t");
        let l = f.add_op("L", ds_lineitem()).unwrap();
        let o = f
            .add_op(
                "O",
                OpKind::Datastore {
                    datastore: "orders".into(),
                    schema: Schema::new(vec![
                        Column::new("o_orderkey", ColType::Integer),
                        Column::new("o_status", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let j = f
            .add_op(
                "J",
                OpKind::Join {
                    kind: JoinKind::Left,
                    left_on: vec!["l_orderkey".into()],
                    right_on: vec!["o_orderkey".into()],
                },
            )
            .unwrap();
        f.connect(l, j).unwrap();
        f.connect(o, j).unwrap();
        f.append(j, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        let unmatched: Vec<_> = out.rows.iter().filter(|r| r[0] == Value::Int(2)).collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0][3].is_null() && unmatched[0][4].is_null());
    }

    #[test]
    fn aggregation_functions() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let a = f
            .append(
                d,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec![],
                    aggregates: vec![
                        AggSpec::new("SUM", parse_expr("l_extendedprice").unwrap(), "s"),
                        AggSpec::new("AVERAGE", parse_expr("l_extendedprice").unwrap(), "a"),
                        AggSpec::new("MIN", parse_expr("l_extendedprice").unwrap(), "lo"),
                        AggSpec::new("MAX", parse_expr("l_extendedprice").unwrap(), "hi"),
                        AggSpec::new("COUNT", parse_expr("1").unwrap(), "n"),
                    ],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.len(), 1);
        let r = &out.rows[0];
        assert_eq!(r[0], Value::Float(350.0));
        assert_eq!(r[1], Value::Float(350.0 / 3.0));
        assert_eq!(r[2], Value::Float(50.0));
        assert_eq!(r[3], Value::Float(200.0));
        assert_eq!(r[4], Value::Int(3));
    }

    #[test]
    fn global_aggregate_of_empty_input_yields_neutral_row() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let s = f.append(d, "SEL", OpKind::Selection { predicate: parse_expr("l_discount > 9").unwrap() }).unwrap();
        let a = f
            .append(
                s,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec![],
                    aggregates: vec![
                        AggSpec::new("COUNT", parse_expr("1").unwrap(), "n"),
                        AggSpec::new("SUM", parse_expr("l_extendedprice").unwrap(), "s"),
                    ],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn surrogate_keys_are_deterministic_per_natural_key() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let k = f
            .append(d, "SK", OpKind::SurrogateKey { natural: vec!["l_orderkey".into()], output: "sk".into() })
            .unwrap();
        f.append(k, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        let sk = out.column_values("sk");
        assert_eq!(sk[0], sk[1], "same natural key, same surrogate");
        assert_ne!(sk[0], sk[2], "different natural key, different surrogate");
        // Cross-flow stability: the same key hashed anywhere matches.
        assert_eq!(sk[0], Value::Int(surrogate_of([Value::Int(1)].iter())));
    }

    #[test]
    fn surrogate_hash_separates_key_parts() {
        let a = surrogate_of([Value::Str("ab".into()), Value::Str("c".into())].iter());
        let b = surrogate_of([Value::Str("a".into()), Value::Str("bc".into())].iter());
        assert_ne!(a, b);
        assert!(a >= 0 && b >= 0);
    }

    #[test]
    fn union_aligns_columns_by_name() {
        let mut f = Flow::new("t");
        let a = f.add_op("A", ds_lineitem()).unwrap();
        let b = f.add_op("B", ds_lineitem()).unwrap();
        let u = f.add_op("U", OpKind::Union).unwrap();
        f.connect(a, u).unwrap();
        f.connect(b, u).unwrap();
        f.append(u, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        assert_eq!(engine.catalog.get("out").unwrap().len(), 6);
    }

    #[test]
    fn union_rejects_permuted_columns_statically() {
        // Static validation requires union inputs to share one column
        // layout, which is what makes the executor's verbatim-copy fast
        // path safe: a permuted right input never reaches execution.
        let ab = Schema::new(vec![Column::new("a", ColType::Integer), Column::new("b", ColType::Text)]);
        let ba = Schema::new(vec![Column::new("b", ColType::Text), Column::new("a", ColType::Integer)]);
        let mut f = Flow::new("t");
        let l = f.add_op("L", OpKind::Datastore { datastore: "left".into(), schema: ab }).unwrap();
        let r = f.add_op("R", OpKind::Datastore { datastore: "right".into(), schema: ba }).unwrap();
        let u = f.add_op("U", OpKind::Union).unwrap();
        f.connect(l, u).unwrap();
        f.connect(r, u).unwrap();
        assert!(matches!(f.schemas(), Err(FlowError::InvalidOp { .. })));
    }

    #[test]
    fn sort_and_distinct() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let p = f.append(d, "P", OpKind::Projection { columns: vec!["l_orderkey".into()] }).unwrap();
        let dd = f.append(p, "D", OpKind::Distinct).unwrap();
        let s = f.append(dd, "S", OpKind::Sort { columns: vec!["l_orderkey".into()] }).unwrap();
        f.append(s, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        // Rows with equal sort keys keep their input order (the sort
        // permutes indices but must stay stable).
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::new("k", ColType::Integer), Column::new("tag", ColType::Text)]);
        c.put(
            "t",
            Relation::with_rows(
                schema.clone(),
                vec![
                    vec![Value::Int(2), Value::Str("first-2".into())],
                    vec![Value::Int(1), Value::Str("first-1".into())],
                    vec![Value::Int(2), Value::Str("second-2".into())],
                    vec![Value::Int(1), Value::Str("second-1".into())],
                ],
            ),
        );
        let mut f = Flow::new("x");
        let d = f.add_op("DS", OpKind::Datastore { datastore: "t".into(), schema }).unwrap();
        let s = f.append(d, "S", OpKind::Sort { columns: vec!["k".into()] }).unwrap();
        f.append(s, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        engine.run(&f).unwrap();
        let tags = engine.catalog.get("out").unwrap().column_values("tag");
        assert_eq!(
            tags,
            [
                Value::Str("first-1".into()),
                Value::Str("second-1".into()),
                Value::Str("first-2".into()),
                Value::Str("second-2".into()),
            ]
        );
    }

    #[test]
    fn loader_appends_to_existing_table_and_checks_schema() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "sink".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        engine.run(&f).unwrap();
        assert_eq!(engine.catalog.get("sink").unwrap().len(), 6, "two runs append");

        // Pre-created with a different schema → load error.
        let mut engine2 = Engine::new(catalog());
        engine2.catalog.create_table("sink", Schema::new(vec![Column::new("x", ColType::Integer)]));
        assert!(matches!(engine2.run(&f), Err(EngineError::LoadSchemaMismatch { .. })));
    }

    #[test]
    fn join_with_empty_build_side() {
        let mut c = catalog();
        c.put("orders", Relation::new(c.get("orders").unwrap().schema.clone()));
        let mut f = Flow::new("t");
        let l = f.add_op("L", ds_lineitem()).unwrap();
        let o = f
            .add_op(
                "O",
                OpKind::Datastore {
                    datastore: "orders".into(),
                    schema: Schema::new(vec![
                        Column::new("o_orderkey", ColType::Integer),
                        Column::new("o_status", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let j = f
            .add_op(
                "J",
                OpKind::Join {
                    kind: JoinKind::Inner,
                    left_on: vec!["l_orderkey".into()],
                    right_on: vec!["o_orderkey".into()],
                },
            )
            .unwrap();
        f.connect(l, j).unwrap();
        f.connect(o, j).unwrap();
        f.append(j, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        engine.run(&f).unwrap();
        assert_eq!(engine.catalog.get("out").unwrap().len(), 0, "inner join with empty build side is empty");
    }

    #[test]
    fn null_group_keys_form_their_own_group() {
        let mut c = Catalog::new();
        c.put(
            "t",
            Relation::with_rows(
                Schema::new(vec![Column::new("g", ColType::Integer), Column::new("v", ColType::Decimal)]),
                vec![
                    vec![Value::Null, Value::Float(1.0)],
                    vec![Value::Null, Value::Float(2.0)],
                    vec![Value::Int(1), Value::Float(3.0)],
                ],
            ),
        );
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "t".into(),
                    schema: Schema::new(vec![Column::new("g", ColType::Integer), Column::new("v", ColType::Decimal)]),
                },
            )
            .unwrap();
        let a = f
            .append(
                d,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec!["g".into()],
                    aggregates: vec![AggSpec::new("SUM", parse_expr("v").unwrap(), "s")],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.len(), 2, "NULL keys group together");
        let null_group = out.rows.iter().find(|r| r[0].is_null()).expect("null group exists");
        assert_eq!(null_group[1], Value::Float(3.0));
    }

    #[test]
    fn upsert_first_load_dedupes_by_key() {
        let mut c = Catalog::new();
        c.put(
            "t",
            Relation::with_rows(
                Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Decimal)]),
                vec![
                    vec![Value::Int(1), Value::Float(1.0)],
                    vec![Value::Int(1), Value::Float(2.0)],
                    vec![Value::Int(2), Value::Float(3.0)],
                ],
            ),
        );
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "t".into(),
                    schema: Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Decimal)]),
                },
            )
            .unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec!["k".into()] }).unwrap();
        let mut engine = Engine::new(c);
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.len(), 2, "duplicate keys in the very first load collapse");
        // Last write wins within the batch.
        let k1 = out.rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(k1[1], Value::Float(2.0));
    }

    #[test]
    fn upsert_widens_schema_and_pads_old_rows() {
        let schema_a = Schema::new(vec![Column::new("k", ColType::Integer), Column::new("a", ColType::Decimal)]);
        let schema_b = Schema::new(vec![Column::new("k", ColType::Integer), Column::new("b", ColType::Text)]);
        let mut c = Catalog::new();
        c.put("src_a", Relation::with_rows(schema_a.clone(), vec![vec![Value::Int(1), Value::Float(9.0)]]));
        c.put(
            "src_b",
            Relation::with_rows(
                schema_b.clone(),
                vec![vec![Value::Int(1), Value::Str("x".into())], vec![Value::Int(2), Value::Str("y".into())]],
            ),
        );
        let mut engine = Engine::new(c);
        for (src, schema) in [("src_a", schema_a), ("src_b", schema_b)] {
            let mut f = Flow::new("x");
            let d = f.add_op("DS", OpKind::Datastore { datastore: src.into(), schema }).unwrap();
            f.append(d, "LOAD", OpKind::Loader { table: "dim".into(), key: vec!["k".into()] }).unwrap();
            engine.run(&f).unwrap();
        }
        let dim = engine.catalog.get("dim").unwrap();
        assert_eq!(dim.schema.names().collect::<Vec<_>>(), ["k", "a", "b"]);
        assert_eq!(dim.len(), 2);
        let k1 = dim.rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(k1[1], Value::Float(9.0), "existing column kept");
        assert_eq!(k1[2], Value::Str("x".into()), "new column filled");
        let k2 = dim.rows.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert!(k2[1].is_null(), "missing column padded with NULL");
    }

    #[test]
    fn upsert_rejects_type_conflicts() {
        let mut c = Catalog::new();
        c.put(
            "src",
            Relation::with_rows(Schema::new(vec![Column::new("k", ColType::Integer)]), vec![vec![Value::Int(1)]]),
        );
        let mut engine = Engine::new(c);
        engine.catalog.put("dim", Relation::new(Schema::new(vec![Column::new("k", ColType::Text)])));
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "src".into(),
                    schema: Schema::new(vec![Column::new("k", ColType::Integer)]),
                },
            )
            .unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "dim".into(), key: vec!["k".into()] }).unwrap();
        assert!(matches!(engine.run(&f), Err(EngineError::LoadSchemaMismatch { .. })));
    }

    #[test]
    fn runtime_eval_errors_carry_op_name() {
        // Dirty data: the column is declared Date but a row carries text.
        // Static validation passes; YEAR() fails at runtime on that row.
        let mut c = Catalog::new();
        c.put(
            "t",
            Relation::with_rows(
                Schema::new(vec![Column::new("d", ColType::Date)]),
                vec![vec![Value::Str("not-a-date".into())]], // dirty data
            ),
        );
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore { datastore: "t".into(), schema: Schema::new(vec![Column::new("d", ColType::Date)]) },
            )
            .unwrap();
        let s = f.append(d, "SEL", OpKind::Selection { predicate: parse_expr("YEAR(d) >= 1995").unwrap() }).unwrap();
        f.append(s, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        match engine.run(&f) {
            Err(EngineError::Eval { op, .. }) => assert_eq!(op, "SEL"),
            other => panic!("expected eval error, got {other:?}"),
        }
    }

    /// A catalog with one `big` table spanning several morsels and a small
    /// `orders`-like side table for joins.
    fn multi_morsel_catalog(rows: usize) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("k", ColType::Integer),
            Column::new("grp", ColType::Integer),
            Column::new("v", ColType::Decimal),
        ]);
        let data: Vec<Row> =
            (0..rows).map(|i| vec![Value::Int(i as i64), Value::Int((i % 7) as i64), Value::Float(i as f64)]).collect();
        c.put("big", Relation::with_rows(schema, data));
        c.put(
            "side",
            Relation::with_rows(
                Schema::new(vec![Column::new("s_grp", ColType::Integer), Column::new("s_name", ColType::Text)]),
                (0..5).map(|g| vec![Value::Int(g), Value::Str(format!("g{g}"))]).collect(),
            ),
        );
        c
    }

    fn multi_morsel_flow() -> Flow {
        let mut f = Flow::new("mm");
        let big = f
            .add_op(
                "BIG",
                OpKind::Datastore {
                    datastore: "big".into(),
                    schema: Schema::new(vec![
                        Column::new("k", ColType::Integer),
                        Column::new("grp", ColType::Integer),
                        Column::new("v", ColType::Decimal),
                    ]),
                },
            )
            .unwrap();
        let side = f
            .add_op(
                "SIDE",
                OpKind::Datastore {
                    datastore: "side".into(),
                    schema: Schema::new(vec![
                        Column::new("s_grp", ColType::Integer),
                        Column::new("s_name", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let sel = f
            .append(big, "SEL", OpKind::Selection { predicate: parse_expr("v >= 10 AND k <> 4999").unwrap() })
            .unwrap();
        let j = f
            .add_op(
                "J",
                OpKind::Join { kind: JoinKind::Left, left_on: vec!["grp".into()], right_on: vec!["s_grp".into()] },
            )
            .unwrap();
        f.connect(sel, j).unwrap();
        f.connect(side, j).unwrap();
        let a = f
            .append(
                j,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec!["grp".into()],
                    aggregates: vec![
                        AggSpec::new("SUM", parse_expr("v").unwrap(), "s"),
                        AggSpec::new("COUNT", parse_expr("1").unwrap(), "n"),
                        AggSpec::new("MIN", parse_expr("v").unwrap(), "lo"),
                        AggSpec::new("MAX", parse_expr("v").unwrap(), "hi"),
                    ],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        f
    }

    #[test]
    fn multi_morsel_runs_are_bit_identical_to_serial() {
        // An input spanning several morsels (MORSEL_ROWS + change) through
        // selection, join, and grouped aggregation: serial and parallel
        // executors must agree *exactly* — same row order, same floats.
        let rows = MORSEL_ROWS * 2 + 137;
        let f = multi_morsel_flow();
        let mut seq = Engine::new(multi_morsel_catalog(rows));
        seq.run(&f).unwrap();
        let mut par = Engine::new(multi_morsel_catalog(rows));
        par.run_parallel(&f).unwrap();
        let (a, b) = (seq.catalog.get("out").unwrap(), par.catalog.get("out").unwrap());
        assert_eq!(a.rows, b.rows, "serial and parallel outputs must be bit-identical, in order");
        // Group keys surface in first-occurrence order: the selection keeps
        // k >= 10 first, so groups start at 10 % 7 = 3 and wrap around.
        let keys: Vec<Value> = a.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(keys, [3, 4, 5, 6, 0, 1, 2].map(Value::Int).to_vec());
    }

    #[test]
    fn empty_input_through_every_operator() {
        let f = multi_morsel_flow();
        let mut seq = Engine::new(multi_morsel_catalog(0));
        seq.run(&f).unwrap();
        let mut par = Engine::new(multi_morsel_catalog(0));
        par.run_parallel(&f).unwrap();
        assert_eq!(seq.catalog.get("out").unwrap().rows, par.catalog.get("out").unwrap().rows);
        assert!(seq.catalog.get("out").unwrap().is_empty(), "grouped aggregate of nothing is empty");
    }

    #[test]
    fn timings_measure_op_work_not_barrier_wait() {
        // Two independent ops at the same level: a trivial projection over 3
        // rows and an expression-heavy selection over many rows. If per-op
        // elapsed included the level barrier, both would report roughly the
        // level's wall time; measured per-job, the cheap op must come out
        // far below the expensive one.
        let mut c = multi_morsel_catalog(MORSEL_ROWS * 4);
        c.put(
            "tiny",
            Relation::with_rows(
                Schema::new(vec![Column::new("x", ColType::Integer)]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]],
            ),
        );
        let mut f = Flow::new("t");
        let tiny = f
            .add_op(
                "TINY",
                OpKind::Datastore {
                    datastore: "tiny".into(),
                    schema: Schema::new(vec![Column::new("x", ColType::Integer)]),
                },
            )
            .unwrap();
        let big = f
            .add_op(
                "BIG",
                OpKind::Datastore {
                    datastore: "big".into(),
                    schema: Schema::new(vec![
                        Column::new("k", ColType::Integer),
                        Column::new("grp", ColType::Integer),
                        Column::new("v", ColType::Decimal),
                    ]),
                },
            )
            .unwrap();
        // Level 1: CHEAP and EXPENSIVE are siblings.
        let cheap = f.append(tiny, "CHEAP", OpKind::Projection { columns: vec!["x".into()] }).unwrap();
        let expensive = f
            .append(
                big,
                "EXPENSIVE",
                OpKind::Selection {
                    predicate: parse_expr(
                        "ABS(v * 3 - k) + v * v - v * v + ABS(v) - ABS(v) >= 0 AND CONCAT(grp, '-', k) <> 'x'",
                    )
                    .unwrap(),
                },
            )
            .unwrap();
        f.append(cheap, "L1", OpKind::Loader { table: "o1".into(), key: vec![] }).unwrap();
        f.append(expensive, "L2", OpKind::Loader { table: "o2".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        let report = engine.run_parallel(&f).unwrap();
        let elapsed = |name: &str| report.timings.iter().find(|t| t.op == name).unwrap().elapsed;
        let (cheap_t, expensive_t) = (elapsed("CHEAP"), elapsed("EXPENSIVE"));
        assert!(
            cheap_t < expensive_t,
            "3-row projection ({cheap_t:?}) must report less own-work time than a {}-row selection ({expensive_t:?})",
            MORSEL_ROWS * 4
        );
        assert!(
            cheap_t.as_micros() < expensive_t.as_micros().max(1) / 2,
            "cheap op's elapsed ({cheap_t:?}) looks barrier-padded against {expensive_t:?}"
        );
    }

    #[test]
    fn selection_errors_pick_the_first_morsel_deterministically() {
        // Dirty rows in morsels 0 and 2: whichever thread finishes first,
        // the reported error must come from the earliest morsel.
        let rows = MORSEL_ROWS * 3;
        let schema = Schema::new(vec![Column::new("d", ColType::Date)]);
        let dirty_catalog = || {
            let mut c = Catalog::new();
            let mut data: Vec<Row> = (0..rows).map(|_| vec![Value::date(1995, 6, 17)]).collect();
            data[10] = vec![Value::Str("bad-early".into())];
            data[MORSEL_ROWS * 2 + 5] = vec![Value::Str("bad-late".into())];
            c.put("t", Relation::with_rows(schema.clone(), data));
            c
        };
        let mut f = Flow::new("x");
        let d = f.add_op("DS", OpKind::Datastore { datastore: "t".into(), schema: schema.clone() }).unwrap();
        let s = f.append(d, "SEL", OpKind::Selection { predicate: parse_expr("YEAR(d) >= 1995").unwrap() }).unwrap();
        f.append(s, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        for _ in 0..4 {
            let mut engine = Engine::new(dirty_catalog());
            match engine.run(&f) {
                Err(EngineError::Eval { error: EvalError::Type(m), .. }) => {
                    assert!(m.contains("bad-early"), "expected earliest morsel's error, got `{m}`")
                }
                other => panic!("expected type error, got {other:?}"),
            }
        }
    }
}
