//! The flow executor: runs a validated logical flow against a catalog.
//!
//! The executor is morsel-driven: every operator splits its input into
//! fixed-size morsels ([`MORSEL_ROWS`]) and processes them on the shared
//! worker pool ([`crate::pool`]), concatenating per-morsel results in morsel
//! order. Because the morsel structure is a function of input length alone —
//! never of the thread count — serial and parallel runs produce bit-identical
//! output, including the floating-point accumulation order of aggregates and
//! the insertion order of group keys.
//!
//! The data plane is columnar: relations hold `Arc`-shared typed columns
//! ([`crate::column::Column`]), so projections and pass-through operators are
//! pointer bumps, selections produce selection vectors that gather once, and
//! expressions evaluate column-at-a-time per morsel
//! ([`crate::vector::eval_vector`]). Join and group-by keys are encoded to
//! fixed-width words ([`crate::keys`]) whenever the key types allow, so the
//! hash tables hash machine words instead of cloning `Value` rows.
//!
//! Expressions are compiled once per operator ([`CompiledExpr`]) before any
//! row is touched, so the hot loops do positional column access instead of
//! name hashing.
//!
//! Operators exchange [`Batch`]es, not relations: a batch is either a
//! materialized relation or a *late* relation — shared source columns plus a
//! deferred selection vector per column ([`LateCol`]). Selections, joins,
//! projections, and derivations stay late, composing their selection vectors
//! instead of gathering, so a filter→project→join chain gathers each payload
//! column exactly once, at the operator that actually consumes it (or at the
//! loader). Each `LateCol` memoizes its gather, so a column consumed twice
//! still gathers once.
//!
//! Joins and grouped aggregations radix-partition their keys on a Fibonacci
//! hash ([`crate::keys::radix_of`]): every morsel scatters its rows into
//! [`radix_partition_count`] buckets, and the per-partition tables build and
//! merge in parallel with no synchronization, since a key lives in exactly
//! one partition. The partition count is a pure function of the build-side
//! length — never the thread count — so output order stays bit-identical to
//! a serial run.

use crate::catalog::Catalog;
use crate::column::Bitmap;
use crate::column::{contiguous_run, Column as Col, ColumnBuilder, ColumnData, NULL_IDX};
use crate::eval::{truthy, EvalError};
use crate::keys::{
    fold128, fold_words, pack2, pack4, plan_group_keys, plan_join_keys, radix_of, FastMap, FastSet, GroupKeyPlan,
    JoinKeyPlan, SideKeys,
};
use crate::pool;
use crate::relation::{Relation, Row};
use crate::stats;
use crate::value::Value;
use crate::vector::{collect_used, eval_vector, RowSel, Vek};
use quarry_etl::{
    AggSpec, CompiledExpr, Expr, Flow, FlowError, JoinKind, OpId, OpKind, Operation, Schema, UnboundColumn,
};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Rows per morsel. Fixed (not derived from the thread count) so that the
/// same input always decomposes identically and results are reproducible
/// under any parallelism.
pub const MORSEL_ROWS: usize = 4096;

/// Hard cap on radix partitions per join/aggregation build. Partition tables
/// build in parallel, so more partitions than the machine has cores mostly
/// buys scatter overhead.
pub const MAX_RADIX_PARTITIONS: usize = 64;

/// The radix partition count for a build side of `build_len` rows: one
/// partition per morsel of build data, a power of two, capped at
/// [`MAX_RADIX_PARTITIONS`]. Small builds (under two morsels) keep a single
/// table — the scatter would cost more than it saves. A pure function of the
/// input length, never the thread count, so partitioned runs stay
/// bit-identical to serial ones.
pub(crate) fn radix_partition_count(build_len: usize) -> usize {
    if build_len < 2 * MORSEL_ROWS {
        1
    } else {
        (build_len / MORSEL_ROWS).next_power_of_two().min(MAX_RADIX_PARTITIONS)
    }
}

/// Errors raised during execution.
#[derive(Debug)]
pub enum EngineError {
    Flow(FlowError),
    Eval {
        op: String,
        error: EvalError,
    },
    UnknownTable(String),
    /// A datastore asks for a column the catalog table does not have.
    SourceSchemaMismatch {
        table: String,
        column: String,
    },
    LoadSchemaMismatch {
        table: String,
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Flow(e) => write!(f, "{e}"),
            EngineError::Eval { op, error } => write!(f, "evaluating `{op}`: {error}"),
            EngineError::UnknownTable(t) => write!(f, "unknown source table `{t}`"),
            EngineError::SourceSchemaMismatch { table, column } => {
                write!(f, "source table `{table}` has no column `{column}`")
            }
            EngineError::LoadSchemaMismatch { table, detail } => {
                write!(f, "loading into `{table}`: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<FlowError> for EngineError {
    fn from(e: FlowError) -> Self {
        EngineError::Flow(e)
    }
}

/// Wall-clock timing and row counts of one executed operation.
///
/// `elapsed` is measured inside the operation's job, from the instant it
/// starts executing on a worker — it covers the operation's own work only,
/// never time spent queued behind other operations or waiting at a level
/// barrier.
#[derive(Debug, Clone)]
pub struct OpTiming {
    pub op: String,
    pub kind: &'static str,
    /// Total rows across the operation's inputs (0 for datastores).
    pub rows_in: usize,
    pub rows_out: usize,
    pub elapsed: Duration,
    /// Pool lane the operation ran on (see [`pool::worker_slot`]): 0 for the
    /// calling/serial thread, `h` for helper lane `h`.
    pub worker: usize,
}

/// The result of executing a flow.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Rows loaded per target table, in load order.
    pub loaded: Vec<(String, usize)>,
    /// Per-operation timings in execution order.
    pub timings: Vec<OpTiming>,
    /// Total wall-clock time of the run.
    pub total: Duration,
    /// Total rows emitted across all operations (work proxy).
    pub rows_processed: usize,
}

impl RunReport {
    pub fn rows_loaded(&self, table: &str) -> usize {
        self.loaded.iter().filter(|(t, _)| t == table).map(|(_, n)| n).sum()
    }

    /// Feeds the run's per-operation output cardinalities back into a cost
    /// model's [`SourceStats`](quarry_etl::cost::SourceStats): future
    /// integration decisions then estimate with what this run actually
    /// measured instead of static selectivity guesses.
    pub fn observe_into(&self, stats: &mut quarry_etl::cost::SourceStats) {
        for t in &self.timings {
            if t.rows_in > 0 {
                // Input/output pairs additionally carry an observed
                // selectivity, which generalizes across flow rewrites.
                stats.observe_op_io(&t.op, t.rows_in as f64, t.rows_out as f64);
            } else {
                stats.observe_op(&t.op, t.rows_out as f64);
            }
        }
    }
}

/// A column whose gather is deferred: the source column plus an optional
/// selection vector ([`NULL_IDX`] entries become NULL). The gather runs at
/// most once — `done` memoizes it — so a column consumed by two downstream
/// operators still materializes a single time.
pub(crate) struct LateCol {
    col: Arc<Col>,
    sel: Option<Arc<Vec<u32>>>,
    done: OnceLock<Arc<Col>>,
}

impl LateCol {
    fn direct(col: Arc<Col>) -> Arc<LateCol> {
        Arc::new(LateCol { col, sel: None, done: OnceLock::new() })
    }

    fn deferred(col: Arc<Col>, sel: Arc<Vec<u32>>) -> Arc<LateCol> {
        Arc::new(LateCol { col, sel: Some(sel), done: OnceLock::new() })
    }

    /// Materializes (memoized). A selection that covers the whole source in
    /// order is a pointer bump.
    fn get(&self) -> Arc<Col> {
        self.done
            .get_or_init(|| match &self.sel {
                None => Arc::clone(&self.col),
                Some(sel) => match contiguous_run(sel) {
                    Some(rg) if rg.start == 0 && rg.end == self.col.len() => Arc::clone(&self.col),
                    _ => Arc::new(self.col.gather(sel)),
                },
            })
            .clone()
    }
}

/// A relation whose columns are [`LateCol`]s: the schema and row count are
/// known, but per-column gathers wait for a consumer.
pub(crate) struct LazyRel {
    schema: Schema,
    len: usize,
    cols: Vec<Arc<LateCol>>,
}

/// What operators exchange: either a materialized relation or a late one.
/// Cloning is a pointer bump either way.
#[derive(Clone)]
pub(crate) enum Batch {
    Rel(Arc<Relation>),
    Lazy(Arc<LazyRel>),
}

impl Batch {
    fn lazy(schema: Schema, len: usize, cols: Vec<Arc<LateCol>>) -> Batch {
        Batch::Lazy(Arc::new(LazyRel { schema, len, cols }))
    }

    fn len(&self) -> usize {
        match self {
            Batch::Rel(r) => r.len(),
            Batch::Lazy(lz) => lz.len,
        }
    }

    fn schema(&self) -> &Schema {
        match self {
            Batch::Rel(r) => &r.schema,
            Batch::Lazy(lz) => &lz.schema,
        }
    }

    fn col(&self, name: &str) -> usize {
        self.schema().index_of(name).expect("validated before execution")
    }

    /// Every column as a [`LateCol`], aligned with the schema. For a
    /// materialized relation these are fresh no-op wrappers; for a lazy one
    /// they are the shared columns themselves (preserving memoized gathers).
    fn late_cols(&self) -> Vec<Arc<LateCol>> {
        match self {
            Batch::Rel(r) => r.columns().iter().map(|c| LateCol::direct(Arc::clone(c))).collect(),
            Batch::Lazy(lz) => lz.cols.clone(),
        }
    }

    /// Materializes exactly the columns an operator reads, in parallel,
    /// leaving the rest untouched. The returned vector is schema-aligned;
    /// slots outside `used` hold an empty placeholder that the caller's
    /// compiled expressions never index.
    fn cols_for(&self, used: &[usize]) -> Vec<Arc<Col>> {
        match self {
            Batch::Rel(r) => r.columns().to_vec(),
            Batch::Lazy(lz) => {
                let got = pool::run_indexed(used.len(), |k| lz.cols[used[k]].get());
                let mut out = vec![placeholder_col(); lz.cols.len()];
                for (c, &idx) in got.into_iter().zip(used) {
                    out[idx] = c;
                }
                out
            }
        }
    }

    /// Materializes every column (in parallel) into a relation.
    fn materialize(&self) -> Arc<Relation> {
        match self {
            Batch::Rel(r) => Arc::clone(r),
            Batch::Lazy(lz) => {
                let cols = pool::run_indexed(lz.cols.len(), |i| lz.cols[i].get());
                Arc::new(Relation::from_columns(lz.schema.clone(), cols))
            }
        }
    }

    /// Applies a selection vector *lazily*: no column gathers, only
    /// selection-vector composition. This is what fuses filter→project
    /// chains — the rows survive as indices until something consumes them.
    fn select(&self, kept: Vec<u32>) -> Batch {
        let kept = Arc::new(kept);
        match self {
            Batch::Rel(r) => {
                let cols = r.columns().iter().map(|c| LateCol::deferred(Arc::clone(c), Arc::clone(&kept))).collect();
                Batch::lazy(r.schema.clone(), kept.len(), cols)
            }
            Batch::Lazy(lz) => Batch::lazy(lz.schema.clone(), kept.len(), compose_cols(&lz.cols, &kept)),
        }
    }
}

/// Shared zero-length stand-in for unread column slots (see
/// [`Batch::cols_for`]).
fn placeholder_col() -> Arc<Col> {
    static EMPTY: OnceLock<Arc<Col>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Col::new(ColumnData::Int(Vec::new()), None))))
}

/// `outer ∘ inner`: row `k` of the result is `inner[outer[k]]`. A
/// [`NULL_IDX`] in `outer` (a left join's unmatched pad) stays NULL.
fn compose_sel(inner: &[u32], outer: &[u32]) -> Vec<u32> {
    outer.iter().map(|&k| if k == NULL_IDX { NULL_IDX } else { inner[k as usize] }).collect()
}

/// Pushes a new selection under existing late columns. Columns sharing one
/// inner selection vector (the common case: all survivors of one filter)
/// share the composed vector too, computed once. A column whose gather
/// already ran composes from the materialized column instead — never redo
/// work the memo already paid for.
fn compose_cols(cols: &[Arc<LateCol>], outer: &Arc<Vec<u32>>) -> Vec<Arc<LateCol>> {
    let mut composed: HashMap<usize, Arc<Vec<u32>>> = HashMap::new();
    cols.iter()
        .map(|lc| {
            if let Some(done) = lc.done.get() {
                return LateCol::deferred(Arc::clone(done), Arc::clone(outer));
            }
            match &lc.sel {
                None => LateCol::deferred(Arc::clone(&lc.col), Arc::clone(outer)),
                Some(inner) => {
                    let sel = Arc::clone(
                        composed
                            .entry(Arc::as_ptr(inner) as usize)
                            .or_insert_with(|| Arc::new(compose_sel(inner, outer))),
                    );
                    LateCol::deferred(Arc::clone(&lc.col), sel)
                }
            }
        })
        .collect()
}

/// The column indices an operator reads: `extra` (key/group columns) plus
/// every column referenced by `exprs`, sorted and deduplicated.
fn used_columns(exprs: &[&CompiledExpr], extra: &[usize]) -> Vec<usize> {
    let mut used: Vec<usize> = extra.to_vec();
    for e in exprs {
        collect_used(e, &mut used);
    }
    used.sort_unstable();
    used.dedup();
    used
}

/// The execution engine: owns a catalog and runs flows against it.
#[derive(Debug, Default)]
pub struct Engine {
    pub catalog: Catalog,
    /// The cross-run result cache plus the plan (fingerprints, cone costs)
    /// for the flow about to run; consulted at pipeline-breaker boundaries.
    cache: Option<(Arc<crate::cache::ResultCache>, crate::cache::CachePlan)>,
}

/// The executor-facing outcome of one pre-run cache consultation: which ops
/// the cache already answers and which ops still have to execute.
struct CachePass {
    /// Cache-served results, published without executing the op.
    hits: HashMap<OpId, Arc<Relation>>,
    /// Ops whose results must be *available*: sinks, plus — transitively —
    /// the inputs of every available op the cache did not answer. Everything
    /// else is skipped: it only feeds subflows the cache already holds.
    needed: std::collections::HashSet<OpId>,
}

impl CachePass {
    /// Whether `id` executes this run (a cache hit is published, not run).
    fn executes(&self, id: OpId) -> bool {
        self.needed.contains(&id) && !self.hits.contains_key(&id)
    }
}

impl Engine {
    pub fn new(catalog: Catalog) -> Self {
        Engine { catalog, cache: None }
    }

    /// Installs the cross-run result cache together with the [`CachePlan`]
    /// computed for the flow this engine is about to run. A plan whose shape
    /// does not match the executed flow is ignored for that run (the cache
    /// is then bypassed entirely), so a stale plan can never mis-key.
    ///
    /// [`CachePlan`]: crate::cache::CachePlan
    pub fn set_result_cache(&mut self, cache: Arc<crate::cache::ResultCache>, plan: crate::cache::CachePlan) {
        self.cache = Some((cache, plan));
    }

    /// Uninstalls the result cache.
    pub fn clear_result_cache(&mut self) {
        self.cache = None;
    }

    /// Consults the cache for `flow` before execution: walks the ops in
    /// reverse topological order, looks up every *reachable* cacheable
    /// operator (one not already covered by a downstream hit) and derives
    /// the set of ops that still execute. Returns `None` when no cache is
    /// installed, it is disabled, or the plan does not match the flow.
    fn cache_prepass(&self, flow: &Flow, order: &[OpId]) -> Option<CachePass> {
        let (cache, plan) = self.cache.as_ref()?;
        if !cache.enabled() || !plan.matches(flow) {
            return None;
        }
        let mut pass = CachePass { hits: HashMap::new(), needed: std::collections::HashSet::new() };
        for &id in order.iter().rev() {
            let op = flow.op(id);
            if op.kind.is_sink() {
                pass.needed.insert(id);
            }
            if !pass.needed.contains(&id) {
                continue; // feeds only cache-served subflows: never runs
            }
            if crate::cache::cacheable(&op.kind) {
                if let Some(fp) = plan.fingerprint(id) {
                    if let Some(rel) = cache.lookup(fp) {
                        crate::events::emit(crate::events::EngineEvent::CacheHit {
                            op: &op.name,
                            rows: rel.len() as u64,
                        });
                        pass.hits.insert(id, rel);
                        continue; // inputs stay un-needed unless used elsewhere
                    }
                    crate::events::emit(crate::events::EngineEvent::CacheMiss { op: &op.name });
                }
            }
            for input in flow.inputs_of(id) {
                pass.needed.insert(input);
            }
        }
        Some(pass)
    }

    /// Publishes one cache-served result exactly as if the op had executed:
    /// into `results`, the report, and the event stream (zero rows in, the
    /// cached relation out, no measurable elapsed work).
    fn publish_hit(results: &mut HashMap<OpId, Batch>, report: &mut RunReport, op: &Operation, rel: Arc<Relation>) {
        report.rows_processed += rel.len();
        crate::events::emit(crate::events::EngineEvent::OpFinish {
            op: &op.name,
            rows_in: 0,
            rows_out: rel.len() as u64,
            lane: 0,
        });
        report.timings.push(OpTiming {
            op: op.name.clone(),
            kind: op.kind.type_name(),
            rows_in: 0,
            rows_out: rel.len(),
            elapsed: Duration::ZERO,
            worker: 0,
        });
        results.insert(op.id, Batch::Rel(rel));
    }

    /// Offers one freshly computed batch for admission. Materialized batches
    /// admit for free (storing is an `Arc` clone); late batches are charged
    /// a modeled gather, so caching never forces an eager materialization
    /// unless the modeled cross-run saving clearly pays for it.
    fn cache_offer(&self, flow: &Flow, id: OpId, out: &Batch) -> Option<Batch> {
        let (cache, plan) = self.cache.as_ref()?;
        let op = flow.op(id);
        if !cache.enabled() || !crate::cache::cacheable(&op.kind) {
            return None;
        }
        let fp = plan.fingerprint(id)?;
        let mat_cost = match out {
            Batch::Rel(_) => 0.0,
            Batch::Lazy(_) => crate::cache::materialize_cost(out.len(), out.schema().len()),
        };
        if mat_cost > 0.0 && !cache.would_admit(fp, plan.saved_cost(id), mat_cost) {
            return None; // the gather itself would not pay — stay late
        }
        let rel = out.materialize();
        let admitted = cache.admit(fp, &rel, plan.saved_cost(id), mat_cost, plan.flow_epoch);
        if admitted {
            crate::events::emit(crate::events::EngineEvent::CacheInsert {
                op: &op.name,
                bytes: rel.estimated_bytes() as u64,
            });
        }
        // Hand the materialized form back so the run itself also reuses the
        // gather the admission just paid for.
        Some(Batch::Rel(rel))
    }

    /// Executes a flow: sources read from the catalog, loaders append to
    /// (auto-creating) target tables. Returns the run report.
    ///
    /// Operations run one after another in topological order; each operation
    /// may still parallelise internally over its morsels. Results are
    /// identical to [`Engine::run_parallel`] by construction.
    pub fn run(&mut self, flow: &Flow) -> Result<RunReport, EngineError> {
        let order = flow.topo_order()?;
        flow.schemas()?; // full static validation before touching data
        let cache_pass = self.cache_prepass(flow, &order);
        let start = Instant::now();
        let mut results: HashMap<OpId, Batch> = HashMap::with_capacity(order.len());
        let mut report = RunReport::default();
        for id in order {
            let op = flow.op(id);
            if let Some(pass) = &cache_pass {
                if !pass.needed.contains(&id) {
                    continue; // feeds only cache-served subflows
                }
                if let Some(rel) = pass.hits.get(&id) {
                    Engine::publish_hit(&mut results, &mut report, op, Arc::clone(rel));
                    continue;
                }
            }
            let inputs: Vec<Batch> = flow.inputs_of(id).into_iter().map(|i| results[&i].clone()).collect();
            let rows_in = inputs.iter().map(Batch::len).sum();
            let t0 = Instant::now();
            let mut out: Batch = match &op.kind {
                OpKind::Loader { table, key } => {
                    let mat = inputs[0].materialize();
                    self.load(table, key, &mat, &mut report)?;
                    Batch::Rel(mat)
                }
                pure => execute_pure(&self.catalog, &op.name, pure, &inputs)?,
            };
            if cache_pass.is_some() {
                if let Some(cached) = self.cache_offer(flow, id, &out) {
                    out = cached;
                }
            }
            let elapsed = t0.elapsed();
            report.rows_processed += out.len();
            crate::events::emit(crate::events::EngineEvent::OpFinish {
                op: &op.name,
                rows_in: rows_in as u64,
                rows_out: out.len() as u64,
                lane: 0,
            });
            report.timings.push(OpTiming {
                op: op.name.clone(),
                kind: op.kind.type_name(),
                rows_in,
                rows_out: out.len(),
                elapsed,
                worker: 0,
            });
            results.insert(id, out);
        }
        report.total = start.elapsed();
        Ok(report)
    }

    /// Executes a flow with inter-operator parallelism layered on top of the
    /// per-operator morsel parallelism: operations whose inputs are all
    /// available run concurrently on the shared worker pool. Both layers
    /// draw threads from one budget, so nesting never oversubscribes the
    /// machine. Loaders execute at level boundaries with exclusive catalog
    /// access, so results are identical to [`Engine::run`].
    pub fn run_parallel(&mut self, flow: &Flow) -> Result<RunReport, EngineError> {
        flow.schemas()?;
        let order = flow.topo_order()?;
        // Level assignment: level(op) = 1 + max(level(inputs)).
        let mut level_of: HashMap<OpId, usize> = HashMap::with_capacity(order.len());
        let mut levels: Vec<Vec<OpId>> = Vec::new();
        for &id in &order {
            let level = flow.inputs_of(id).iter().map(|i| level_of[i] + 1).max().unwrap_or(0);
            level_of.insert(id, level);
            if levels.len() <= level {
                levels.resize_with(level + 1, Vec::new);
            }
            levels[level].push(id);
        }

        let cache_pass = self.cache_prepass(flow, &order);
        let start = Instant::now();
        let mut results: HashMap<OpId, Batch> = HashMap::with_capacity(order.len());
        let mut report = RunReport::default();
        if let Some(pass) = &cache_pass {
            // Cache-served results publish up front; the level loop then
            // schedules only the ops that actually execute.
            for &id in &order {
                if let Some(rel) = pass.hits.get(&id) {
                    Engine::publish_hit(&mut results, &mut report, flow.op(id), Arc::clone(rel));
                }
            }
        }
        for mut level in levels {
            if let Some(pass) = &cache_pass {
                level.retain(|&id| pass.executes(id));
            }
            let (pure_ops, sinks): (Vec<OpId>, Vec<OpId>) =
                level.into_iter().partition(|&id| !flow.op(id).kind.is_sink());
            // Pure operations of one level run concurrently on the pool.
            // Each job starts its clock when it begins executing, so the
            // recorded elapsed time is the operation's own work, not the
            // time it spent queued or waiting for siblings to finish.
            let catalog = &self.catalog;
            let jobs: Vec<(OpId, Vec<Batch>)> = pure_ops
                .into_iter()
                .map(|id| (id, flow.inputs_of(id).into_iter().map(|i| results[&i].clone()).collect()))
                .collect();
            // Output batch, measured elapsed time, and the pool lane that ran it.
            type PureOutcome = (Batch, Duration, usize);
            let outcomes: Vec<Result<PureOutcome, EngineError>> = pool::run_indexed(jobs.len(), |i| {
                let (id, inputs) = &jobs[i];
                let op = flow.op(*id);
                let worker = pool::worker_slot();
                let t0 = Instant::now();
                let out = execute_pure(catalog, &op.name, &op.kind, inputs)?;
                Ok((out, t0.elapsed(), worker))
            });
            for ((id, inputs), outcome) in jobs.iter().zip(outcomes) {
                let (mut out, elapsed, worker) = outcome?;
                if cache_pass.is_some() {
                    if let Some(cached) = self.cache_offer(flow, *id, &out) {
                        out = cached;
                    }
                }
                let op = flow.op(*id);
                report.rows_processed += out.len();
                crate::events::emit(crate::events::EngineEvent::OpFinish {
                    op: &op.name,
                    rows_in: inputs.iter().map(Batch::len).sum::<usize>() as u64,
                    rows_out: out.len() as u64,
                    lane: worker as u32,
                });
                report.timings.push(OpTiming {
                    op: op.name.clone(),
                    kind: op.kind.type_name(),
                    rows_in: inputs.iter().map(Batch::len).sum(),
                    rows_out: out.len(),
                    elapsed,
                    worker,
                });
                results.insert(*id, out);
            }
            // Sinks take exclusive catalog access, in deterministic order.
            for id in sinks {
                let op = flow.op(id);
                let inputs: Vec<Batch> = flow.inputs_of(id).into_iter().map(|i| results[&i].clone()).collect();
                let rows_in = inputs.iter().map(Batch::len).sum();
                let t0 = Instant::now();
                let out: Batch = match &op.kind {
                    OpKind::Loader { table, key } => {
                        let mat = inputs[0].materialize();
                        self.load(table, key, &mat, &mut report)?;
                        Batch::Rel(mat)
                    }
                    pure => execute_pure(&self.catalog, &op.name, pure, &inputs)?,
                };
                report.rows_processed += out.len();
                crate::events::emit(crate::events::EngineEvent::OpFinish {
                    op: &op.name,
                    rows_in: rows_in as u64,
                    rows_out: out.len() as u64,
                    lane: 0,
                });
                report.timings.push(OpTiming {
                    op: op.name.clone(),
                    kind: op.kind.type_name(),
                    rows_in,
                    rows_out: out.len(),
                    elapsed: t0.elapsed(),
                    worker: 0,
                });
                results.insert(id, out);
            }
        }
        report.total = start.elapsed();
        Ok(report)
    }

    /// Loader execution: append (empty key, strict schema) or upsert.
    fn load(
        &mut self,
        table: &str,
        key: &[String],
        input: &Arc<Relation>,
        report: &mut RunReport,
    ) -> Result<(), EngineError> {
        if key.is_empty() {
            match self.catalog.get_mut(table) {
                Some(existing) => {
                    if existing.schema.names().collect::<Vec<_>>() != input.schema.names().collect::<Vec<_>>() {
                        return Err(EngineError::LoadSchemaMismatch {
                            table: table.to_string(),
                            detail: format!("target is {}, input is {}", existing.schema, input.schema),
                        });
                    }
                    if existing.is_empty() {
                        // Appending to an empty table adopts the input's
                        // columns: zero values copied.
                        existing.columns = input.columns().to_vec();
                        existing.nrows = input.len();
                    } else {
                        let columns: Vec<Arc<Col>> = existing
                            .columns
                            .iter()
                            .zip(input.columns())
                            .zip(&existing.schema.columns)
                            .map(|((a, b), sc)| Arc::new(Col::concat(&[a.as_ref(), b.as_ref()], sc.ty)))
                            .collect();
                        existing.columns = columns;
                        existing.nrows += input.len();
                    }
                }
                None => {
                    // First load into a fresh table: share the relation. A
                    // later append copies-on-write only if the flow result is
                    // still alive.
                    self.catalog.put_shared(table.to_string(), Arc::clone(input));
                }
            }
        } else {
            upsert(&mut self.catalog, table, input, key)
                .map_err(|detail| EngineError::LoadSchemaMismatch { table: table.to_string(), detail })?;
        }
        report.loaded.push((table.to_string(), input.len()));
        Ok(())
    }
}

/// The morsel decomposition of `len` rows: contiguous ranges of at most
/// [`MORSEL_ROWS`] rows, in order. Empty input has no morsels.
pub(crate) fn morsel_ranges(len: usize) -> Vec<Range<usize>> {
    (0..len).step_by(MORSEL_ROWS).map(|start| start..len.min(start + MORSEL_ROWS)).collect()
}

/// Applies `f` to every morsel of `0..len` on the worker pool and returns
/// the per-morsel results in morsel order.
pub(crate) fn per_morsel<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = morsel_ranges(len);
    pool::run_indexed(ranges.len(), |i| f(ranges[i].clone()))
}

/// Concatenates per-morsel chunks in morsel order.
pub(crate) fn concat<T>(chunks: Vec<Vec<T>>) -> Vec<T> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

/// Concatenates fallible per-morsel chunks in morsel order; the first error
/// in morsel order wins, which is deterministic for any thread count.
pub(crate) fn try_concat<T>(chunks: Vec<Result<Vec<T>, EvalError>>) -> Result<Vec<T>, EvalError> {
    let mut out = Vec::new();
    for c in chunks {
        let mut c = c?;
        out.append(&mut c);
    }
    Ok(out)
}

/// Binds an operator's expression against its input schema, once, before
/// any row is processed. Unknown columns surface here instead of on the
/// first evaluated row.
pub(crate) fn compile(expr: &Expr, schema: &Schema, op: &str) -> Result<CompiledExpr, EngineError> {
    CompiledExpr::compile(expr, schema)
        .map_err(|UnboundColumn(c)| EngineError::Eval { op: op.to_string(), error: EvalError::UnknownColumn(c) })
}

/// Gathers every column at the same selection vector, in parallel over
/// columns. [`NULL_IDX`] entries become NULL in every column.
fn gather_all(cols: &[Arc<Col>], indices: &[u32]) -> Vec<Arc<Col>> {
    pool::run_indexed(cols.len(), |i| Arc::new(cols[i].gather(indices)))
}

/// Row positions are carried as `u32` selection vectors; relations beyond
/// that are out of scope for an in-memory engine.
fn check_row_capacity(len: usize) {
    assert!(len < u32::MAX as usize, "relation exceeds u32 row-index capacity");
}

/// Executes one catalog-read-only operation (everything but loaders).
///
/// Returns a [`Batch`] so that pass-through operations — a datastore whose
/// declared schema matches the catalog table, an extraction or projection
/// that keeps every column in place, a selection that keeps every row — can
/// share their input instead of copying, and so that row-dropping operators
/// can stay late instead of gathering.
fn execute_pure(catalog: &Catalog, name: &str, kind: &OpKind, inputs: &[Batch]) -> Result<Batch, EngineError> {
    let eval_err = |e: EvalError| EngineError::Eval { op: name.to_string(), error: e };
    match kind {
        OpKind::Datastore { datastore, schema } => {
            let table = catalog.get_shared(datastore).ok_or_else(|| EngineError::UnknownTable(datastore.clone()))?;
            if *schema == table.schema {
                // The declared extraction schema is the table's own layout:
                // hand out the table itself, zero rows copied.
                return Ok(Batch::Rel(table));
            }
            // Project the catalog table onto the declared extraction schema
            // (catalog tables may carry more columns, e.g. FKs). Columns are
            // shared, not copied.
            let columns: Vec<Arc<Col>> = schema
                .columns
                .iter()
                .map(|c| {
                    table.schema.index_of(&c.name).map(|i| Arc::clone(table.column(i))).ok_or_else(|| {
                        EngineError::SourceSchemaMismatch { table: datastore.clone(), column: c.name.clone() }
                    })
                })
                .collect::<Result<_, _>>()?;
            Ok(Batch::Rel(Arc::new(Relation::from_columns(schema.clone(), columns))))
        }
        OpKind::Extraction { columns } | OpKind::Projection { columns } => {
            let input = &inputs[0];
            let indices: Vec<usize> = columns.iter().map(|c| input.col(c)).collect();
            if indices.len() == input.schema().len() && indices.iter().enumerate().all(|(pos, &i)| pos == i) {
                // Keeps every column in place: the output IS the input.
                return Ok(input.clone());
            }
            let schema = input.schema().project(columns).expect("validated");
            match input {
                Batch::Rel(r) => {
                    let picked = indices.iter().map(|&i| Arc::clone(r.column(i))).collect();
                    Ok(Batch::Rel(Arc::new(Relation::from_columns(schema, picked))))
                }
                // A late input stays late: dropped columns simply never
                // gather. Shared `LateCol`s keep their memoized gathers.
                Batch::Lazy(lz) => {
                    let picked = indices.iter().map(|&i| Arc::clone(&lz.cols[i])).collect();
                    Ok(Batch::lazy(schema, lz.len, picked))
                }
            }
        }
        OpKind::Selection { predicate } => {
            let input = &inputs[0];
            check_row_capacity(input.len());
            let predicate = compile(predicate, input.schema(), name)?;
            // Materialize only the columns the predicate reads; payload
            // columns wait behind the (composed) selection vector.
            let cols = input.cols_for(&used_columns(&[&predicate], &[]));
            let cols = cols.as_slice();
            // Each morsel evaluates the predicate column-at-a-time and
            // produces a selection vector of absolute row indices.
            let chunks: Vec<Result<Vec<u32>, EvalError>> = per_morsel(input.len(), |rg| {
                let start = rg.start;
                let n = rg.len();
                let vek = eval_vector(&predicate, cols, &RowSel::Range(rg))?;
                let mut keep = Vec::new();
                match &vek {
                    Vek::Const(v) => {
                        if truthy(v) {
                            keep.extend((start..start + n).map(|i| i as u32));
                        }
                    }
                    Vek::Col(c) => match (c.data(), c.validity()) {
                        (ColumnData::Bool(bits), None) => {
                            for (k, &b) in bits.iter().enumerate() {
                                if b {
                                    keep.push((start + k) as u32);
                                }
                            }
                        }
                        (ColumnData::Bool(bits), Some(bm)) => {
                            for (k, &b) in bits.iter().enumerate() {
                                if b && bm.get(k) {
                                    keep.push((start + k) as u32);
                                }
                            }
                        }
                        _ => {
                            for k in 0..n {
                                if truthy(&c.value(k)) {
                                    keep.push((start + k) as u32);
                                }
                            }
                        }
                    },
                }
                Ok(keep)
            });
            let kept = try_concat(chunks).map_err(eval_err)?;
            if kept.len() == input.len() {
                // Every row survives: the output IS the input.
                return Ok(input.clone());
            }
            // No gather: survivors ride along as a selection vector. A
            // following filter/projection composes with it, so chains touch
            // each payload column exactly once.
            Ok(input.select(kept))
        }
        OpKind::Derivation { column: _, expr } => {
            let input = &inputs[0];
            let schema = kind.output_schema(name, std::slice::from_ref(input.schema()))?;
            let expr = compile(expr, input.schema(), name)?;
            let cols = input.cols_for(&used_columns(&[&expr], &[]));
            let cols = cols.as_slice();
            let parts: Vec<Result<Col, EvalError>> = per_morsel(input.len(), |rg| {
                let n = rg.len();
                Ok(eval_vector(&expr, cols, &RowSel::Range(rg))?.into_column(n))
            });
            let mut evaluated = Vec::with_capacity(parts.len());
            for p in parts {
                evaluated.push(p.map_err(eval_err)?);
            }
            let ty = schema.columns.last().expect("derivation appends a column").ty;
            let derived = Col::concat(&evaluated.iter().collect::<Vec<_>>(), ty);
            // Output = all input columns (still late) + the one new column.
            let mut columns = input.late_cols();
            columns.push(LateCol::direct(Arc::new(derived)));
            Ok(Batch::lazy(schema, input.len(), columns))
        }
        OpKind::Join { kind: jk, left_on, right_on } => Ok(hash_join(&inputs[0], &inputs[1], left_on, right_on, *jk)),
        OpKind::Aggregation { group_by, aggregates } => {
            hash_aggregate(&inputs[0], group_by, aggregates, name).map(|r| Batch::Rel(Arc::new(r))).map_err(eval_err)
        }
        OpKind::Union => {
            let (l, r) = (&inputs[0].materialize(), &inputs[1].materialize());
            // Align the right input positionally by column name; same-layout
            // inputs (the common case) concatenate representation-to-
            // representation without value round-trips.
            let indices: Vec<usize> = l.schema.names().map(|n| r.col(n)).collect();
            let columns: Vec<Arc<Col>> = l
                .schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, sc)| Arc::new(Col::concat(&[l.column(i).as_ref(), r.column(indices[i]).as_ref()], sc.ty)))
                .collect();
            Ok(Batch::Rel(Arc::new(Relation::from_columns(l.schema.clone(), columns))))
        }
        OpKind::Distinct => {
            // Row-wise dedup reads every column: materialize up front.
            let input = inputs[0].materialize();
            check_row_capacity(input.len());
            let mut seen = FastSet::with_capacity_and_hasher(input.len(), Default::default());
            let mut kept: Vec<u32> = Vec::new();
            for i in 0..input.len() {
                if seen.insert(input.row(i)) {
                    kept.push(i as u32);
                }
            }
            if kept.len() == input.len() {
                return Ok(Batch::Rel(input));
            }
            Ok(Batch::Rel(Arc::new(Relation::from_columns(input.schema.clone(), gather_all(input.columns(), &kept)))))
        }
        OpKind::Sort { columns } => {
            // The output permutes every row anyway; materialize and gather.
            let input = inputs[0].materialize();
            check_row_capacity(input.len());
            let indices: Vec<usize> = columns.iter().map(|c| input.col(c)).collect();
            // Materialize the sort-key columns once; the (stable) sort then
            // permutes 4-byte indices and compares values positionally,
            // never touching the non-key columns until the final gather.
            let keys: Vec<Vec<Value>> = indices
                .iter()
                .map(|&i| {
                    let c = input.column(i);
                    (0..c.len()).map(|r| c.value(r)).collect()
                })
                .collect();
            let mut order: Vec<u32> = (0..input.len() as u32).collect();
            order.sort_by(|&a, &b| {
                for k in &keys {
                    let c = k[a as usize].total_cmp(&k[b as usize]);
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(Batch::Rel(Arc::new(Relation::from_columns(input.schema.clone(), gather_all(input.columns(), &order)))))
        }
        OpKind::SurrogateKey { natural, output: _ } => {
            let input = &inputs[0];
            let schema = kind.output_schema(name, std::slice::from_ref(input.schema()))?;
            let indices: Vec<usize> = natural.iter().map(|c| input.col(c)).collect();
            // Only the natural-key columns materialize; the payload stays
            // late behind the appended key column.
            let cols = input.cols_for(&used_columns(&[], &indices));
            let chunks: Vec<Vec<i64>> = per_morsel(input.len(), |rg| {
                rg.map(|i| {
                    // Content-addressed surrogate (FNV-1a over the natural
                    // key): the same natural key yields the same surrogate
                    // in *any* flow, so fact FKs computed in the fact
                    // pipeline match dimension keys computed in dimension
                    // pipelines. The display bytes stream straight from the
                    // columns into the hash — no row materialization.
                    let mut fnv = FnvWriter::new();
                    for &c in &indices {
                        cols[c].write_display(i, &mut fnv).expect("hash writer never fails");
                        fnv.sep();
                    }
                    fnv.finish()
                })
                .collect()
            });
            let mut columns = input.late_cols();
            columns.push(LateCol::direct(Arc::new(Col::new(ColumnData::Int(concat(chunks)), None))));
            Ok(Batch::lazy(schema, input.len(), columns))
        }
        OpKind::Loader { .. } => unreachable!("loaders are executed by Engine::load"),
    }
}

/// Upsert-merges `input` into the catalog table `table` keyed on `key`:
/// the target schema takes the union of columns (old rows padded with NULL),
/// and input rows overwrite/fill the columns they carry for matching keys.
/// Dedups `0..n` by key, last write wins: returns, per surviving key in
/// first-seen order, the index of the *last* row carrying that key.
fn dedup_last_wins<K: Eq + std::hash::Hash>(n: usize, keyf: impl Fn(usize) -> K) -> Vec<u32> {
    use std::collections::hash_map::Entry;
    let mut index: FastMap<K, usize> = FastMap::with_capacity_and_hasher(n, Default::default());
    let mut appended: Vec<u32> = Vec::new();
    for i in 0..n {
        match index.entry(keyf(i)) {
            Entry::Occupied(e) => appended[*e.get()] = i as u32,
            Entry::Vacant(e) => {
                e.insert(appended.len());
                appended.push(i as u32);
            }
        }
    }
    appended
}

fn upsert(catalog: &mut Catalog, table: &str, input: &Relation, key: &[String]) -> Result<(), String> {
    if !catalog.contains(table) {
        // Create empty, then run the merge below: the input itself may
        // carry several rows per key (e.g. a fact-grain recomputation), and
        // the table must end up deduplicated by key either way.
        catalog.put(table.to_string(), Relation::new(input.schema.clone()));
    }
    let existing = catalog.get_mut(table).expect("created above");
    check_row_capacity(existing.len().max(input.len()));
    // Widen the schema to the union; check types of shared columns.
    for c in &input.schema.columns {
        match existing.schema.column(&c.name) {
            Some(prev) if prev.ty != c.ty => {
                return Err(format!("column `{}` is {} in the target but {} in the input", c.name, prev.ty, c.ty));
            }
            Some(_) => {}
            None => {
                let n = existing.nrows;
                existing.schema.columns.push(c.clone());
                existing.columns.push(Arc::new(Col::nulls(c.ty, n)));
            }
        }
    }
    let key_idx_target: Vec<usize> = key
        .iter()
        .map(|k| existing.schema.index_of(k).ok_or_else(|| format!("upsert key `{k}` missing from target")))
        .collect::<Result<_, _>>()?;
    let key_idx_input: Vec<usize> = key
        .iter()
        .map(|k| input.schema.index_of(k).ok_or_else(|| format!("upsert key `{k}` missing from input")))
        .collect::<Result<_, _>>()?;
    // Input column → target position.
    let positions: Vec<usize> =
        input.schema.columns.iter().map(|c| existing.schema.index_of(&c.name).expect("widened above")).collect();
    // Merge plan instead of in-place row mutation: for every output slot,
    // which input row overwrites it (NULL_IDX = none; existing slots keep
    // their old values, appended slots take the input row's values).
    let old_len = existing.nrows;
    let mut from_input: Vec<u32> = vec![NULL_IDX; old_len];
    let appended: Vec<u32> = if old_len == 0 {
        // Empty target: dedup within the input only. Fixed-width group-key
        // encoding gives the same per-column equality as `Value` rows
        // (NULL == NULL via the mask word, dictionary codes for strings)
        // without a heap-allocated `Row` per row — this is every table's
        // first load, the hot path of a fresh warehouse run.
        let g_cols: Vec<&Col> = key_idx_input.iter().map(|&c| input.columns()[c].as_ref()).collect();
        match plan_group_keys(&g_cols, input.len()) {
            GroupKeyPlan::Encoded(sk) => match sk.width {
                1 => dedup_last_wins(input.len(), |i| sk.words[i]),
                2 => dedup_last_wins(input.len(), |i| pack2(sk.row(i))),
                3 | 4 => dedup_last_wins(input.len(), |i| pack4(sk.row(i))),
                _ => dedup_last_wins(input.len(), |i| sk.row(i).to_vec().into_boxed_slice()),
            },
            GroupKeyPlan::Values => dedup_last_wins(input.len(), |i| {
                key_idx_input.iter().map(|&c| input.columns()[c].value(i)).collect::<Row>()
            }),
        }
    } else {
        let mut index: FastMap<Row, usize> = (0..existing.nrows)
            .map(|i| (key_idx_target.iter().map(|&c| existing.columns[c].value(i)).collect::<Row>(), i))
            .collect();
        let mut appended: Vec<u32> = Vec::new();
        for i in 0..input.len() {
            let k: Row = key_idx_input.iter().map(|&c| input.columns()[c].value(i)).collect();
            match index.get(&k) {
                Some(&slot) => {
                    // Last write wins within the batch.
                    if slot < old_len {
                        from_input[slot] = i as u32;
                    } else {
                        appended[slot - old_len] = i as u32;
                    }
                }
                None => {
                    index.insert(k, old_len + appended.len());
                    appended.push(i as u32);
                }
            }
        }
        appended
    };
    // Rebuild each target column from the plan. Columns the input does not
    // carry keep their values (appended slots pad with NULL); columns it
    // does carry splice input values over matched slots.
    let target_of_input: HashMap<usize, usize> = positions.iter().enumerate().map(|(ic, &tp)| (tp, ic)).collect();
    if old_len == 0 && appended.len() == input.len() && existing.columns.len() == input.columns().len() {
        // Empty target, unique input keys, no extra target columns: the
        // merged table IS the input — adopt its columns without a per-row
        // rebuild (the common first load of a dimension or fact table).
        existing.columns =
            (0..existing.columns.len()).map(|tp| Arc::clone(&input.columns()[target_of_input[&tp]])).collect();
        existing.nrows = input.len();
        return Ok(());
    }
    let columns: Vec<Arc<Col>> = existing
        .columns
        .iter()
        .enumerate()
        .map(|(tp, old)| {
            let ty = existing.schema.columns[tp].ty;
            match target_of_input.get(&tp) {
                None if appended.is_empty() => Arc::clone(old),
                None => {
                    let pad = Col::nulls(ty, appended.len());
                    Arc::new(Col::concat(&[old.as_ref(), &pad], ty))
                }
                Some(&ic) => {
                    let inp = input.columns()[ic].as_ref();
                    let mut b = ColumnBuilder::new(ty);
                    for (slot, &fi) in from_input.iter().enumerate() {
                        if fi == NULL_IDX {
                            b.push(old.value(slot));
                        } else {
                            b.push(inp.value(fi as usize));
                        }
                    }
                    for &i in &appended {
                        b.push(inp.value(i as usize));
                    }
                    Arc::new(b.finish())
                }
            }
        })
        .collect();
    existing.columns = columns;
    existing.nrows = old_len + appended.len();
    Ok(())
}

/// Streaming FNV-1a over display bytes — the surrogate-key hash. Shared by
/// [`surrogate_of`] (row values) and the columnar `SurrogateKey` operator
/// (which streams straight from column storage).
pub(crate) struct FnvWriter(u64);

impl FnvWriter {
    pub(crate) fn new() -> Self {
        FnvWriter(0xcbf29ce484222325)
    }

    /// Separator between key parts so `("ab","c") != ("a","bc")`.
    pub(crate) fn sep(&mut self) {
        self.0 ^= 0x1f;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    pub(crate) fn finish(&self) -> i64 {
        (self.0 & 0x7fff_ffff_ffff_ffff) as i64
    }
}

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        Ok(())
    }
}

/// Deterministic surrogate key: FNV-1a over the display forms of the natural
/// key values, masked positive. Stable across flows and runs.
pub fn surrogate_of<'a>(values: impl Iterator<Item = &'a Value>) -> i64 {
    let mut fnv = FnvWriter::new();
    for v in values {
        use std::fmt::Write;
        write!(fnv, "{v}").expect("hash writer never fails");
        fnv.sep();
    }
    fnv.finish()
}

/// Hash join over columnar inputs. Keys are planned once ([`plan_join_keys`]):
/// fixed-width word keys when the key column types allow (the fast path —
/// the hash tables then hash `u64`/`u128` instead of cloning `Value` rows),
/// `Value`-row keys when a `Mixed` column forces it, and a no-op when some
/// key column pair can never match.
///
/// Only the key columns materialize here. The output is late: both sides'
/// payload columns carry the matched index pairs as deferred selections, so
/// a downstream filter or projection composes before anything gathers.
fn hash_join(left: &Batch, right: &Batch, left_on: &[String], right_on: &[String], kind: JoinKind) -> Batch {
    check_row_capacity(left.len().max(right.len()));
    let l_idx: Vec<usize> = left_on.iter().map(|c| left.col(c)).collect();
    let r_idx: Vec<usize> = right_on.iter().map(|c| right.col(c)).collect();
    // Same-name equi-joined key columns are kept once (left copy), matching
    // the logical schema propagation.
    let kept = quarry_etl::join_kept_right_indices(right.schema(), left_on, right_on);
    let mut schema = left.schema().clone();
    schema.columns.extend(kept.iter().map(|&i| right.schema().columns[i].clone()));

    let l_cols = left.cols_for(&used_columns(&[], &l_idx));
    let r_cols = right.cols_for(&used_columns(&[], &r_idx));
    let l_keys: Vec<&Col> = l_idx.iter().map(|&c| l_cols[c].as_ref()).collect();
    let r_keys: Vec<&Col> = r_idx.iter().map(|&c| r_cols[c].as_ref()).collect();
    let (l_out, r_out) = match plan_join_keys(&l_keys, left.len(), &r_keys, right.len()) {
        JoinKeyPlan::Never => {
            if kind == JoinKind::Left {
                ((0..left.len() as u32).collect(), vec![NULL_IDX; left.len()])
            } else {
                (Vec::new(), Vec::new())
            }
        }
        JoinKeyPlan::Values => {
            // Value-row keys don't hash cheaply enough to be worth a
            // partition pass; build one table.
            stats::record_join_partitions(1);
            join_core(
                left.len(),
                right.len(),
                kind,
                1,
                |_: &Row| 0,
                |i| {
                    let key: Row = l_idx.iter().map(|&c| l_cols[c].value(i)).collect();
                    (!key.iter().any(Value::is_null)).then_some(key)
                },
                |i| {
                    let key: Row = r_idx.iter().map(|&c| r_cols[c].value(i)).collect();
                    (!key.iter().any(Value::is_null)).then_some(key)
                },
            )
        }
        JoinKeyPlan::Encoded { left: lk, right: rk } => {
            let npart = radix_partition_count(right.len());
            if let Some(out) = (lk.width == 1).then(|| dense_join(&lk, &rk, kind)).flatten() {
                stats::record_join_partitions(1);
                out
            } else {
                stats::record_join_partitions(npart);
                match lk.width {
                    1 => join_core(
                        left.len(),
                        right.len(),
                        kind,
                        npart,
                        move |k: &u64| radix_of(*k, npart),
                        |i| lk.ok[i].then_some(lk.words[i]),
                        |i| rk.ok[i].then_some(rk.words[i]),
                    ),
                    2 => join_core(
                        left.len(),
                        right.len(),
                        kind,
                        npart,
                        move |k: &u128| radix_of(fold128(*k), npart),
                        |i| lk.ok[i].then(|| pack2(lk.row(i))),
                        |i| rk.ok[i].then(|| pack2(rk.row(i))),
                    ),
                    3 | 4 => join_core(
                        left.len(),
                        right.len(),
                        kind,
                        npart,
                        move |k: &[u64; 4]| radix_of(fold_words(k), npart),
                        |i| lk.ok[i].then(|| pack4(lk.row(i))),
                        |i| rk.ok[i].then(|| pack4(rk.row(i))),
                    ),
                    _ => join_core::<Box<[u64]>, _, _, _>(
                        left.len(),
                        right.len(),
                        kind,
                        npart,
                        move |k| radix_of(fold_words(k), npart),
                        |i| lk.ok[i].then(|| lk.row(i).to_vec().into_boxed_slice()),
                        |i| rk.ok[i].then(|| rk.row(i).to_vec().into_boxed_slice()),
                    ),
                }
            }
        }
    };
    let len = l_out.len();
    let (l_sel, r_sel) = (Arc::new(l_out), Arc::new(r_out));
    let mut cols = compose_cols(&left.late_cols(), &l_sel);
    let right_late = right.late_cols();
    let kept_late: Vec<Arc<LateCol>> = kept.iter().map(|&i| Arc::clone(&right_late[i])).collect();
    cols.extend(compose_cols(&kept_late, &r_sel));
    Batch::lazy(schema, len, cols)
}

/// Cap on the dense build array — past this the chain heads no longer fit
/// hot cache and the hash path wins back.
const DENSE_JOIN_MAX: usize = 1 << 21;

/// Single-word equi-join against a *dense* build side: when the build keys
/// span a small range (TPC-H-style foreign keys — consecutive integers — or
/// dictionary codes, which are dense by construction), the hash table
/// degrades to an array of chain heads indexed by `key - min`, and every
/// probe is one range check plus one load instead of a hash. Build rows
/// link in ascending order within each chain (the reverse-order build
/// pushes to the head), so the emitted pairs are bit-identical to
/// [`join_core`]'s serial table. Returns `None` when the key range is too
/// sparse for the array to pay off — surrogate-hash keys land there.
fn dense_join(lk: &SideKeys, rk: &SideKeys, kind: JoinKind) -> Option<(Vec<u32>, Vec<u32>)> {
    let right_len = rk.ok.len();
    let (mut min, mut max, mut any) = (u64::MAX, 0u64, false);
    for i in 0..right_len {
        if rk.ok[i] {
            min = min.min(rk.words[i]);
            max = max.max(rk.words[i]);
            any = true;
        }
    }
    if !any {
        return None;
    }
    let size = (max - min) as usize + 1;
    if size > DENSE_JOIN_MAX || size > (right_len * 8).max(1024) {
        return None;
    }
    let mut heads = vec![NULL_IDX; size];
    let mut next = vec![NULL_IDX; right_len];
    for i in (0..right_len).rev() {
        if rk.ok[i] {
            let s = (rk.words[i] - min) as usize;
            next[i] = heads[s];
            heads[s] = i as u32;
        }
    }
    let chunks: Vec<(Vec<u32>, Vec<u32>)> = per_morsel(lk.ok.len(), |rg| {
        // A morsel of an FK join typically emits about one pair per probe
        // row; reserving that up front skips the doubling reallocations.
        let mut l_out = Vec::with_capacity(rg.len());
        let mut r_out = Vec::with_capacity(rg.len());
        for i in rg {
            let d = lk.words[i].wrapping_sub(min);
            let mut m = if lk.ok[i] && d < size as u64 { heads[d as usize] } else { NULL_IDX };
            if m == NULL_IDX {
                if kind == JoinKind::Left {
                    l_out.push(i as u32);
                    r_out.push(NULL_IDX);
                }
                continue;
            }
            while m != NULL_IDX {
                l_out.push(i as u32);
                r_out.push(m);
                m = next[m as usize];
            }
        }
        (l_out, r_out)
    });
    let total: usize = chunks.iter().map(|(l, _)| l.len()).sum();
    let mut l_out = Vec::with_capacity(total);
    let mut r_out = Vec::with_capacity(total);
    for (mut l, mut r) in chunks {
        l_out.append(&mut l);
        r_out.append(&mut r);
    }
    Some((l_out, r_out))
}

/// The join skeleton, generic over the key type. `lkey`/`rkey` return `None`
/// for rows whose key can never match (NULL slots, probe strings missing
/// from the build dictionary); with a left join those rows pad with
/// [`NULL_IDX`].
///
/// Builds on the right side, probes with the left (FK joins probe the big
/// side in DW flows). The build is radix-partitioned on `part` (a pure
/// function of the key): each morsel scatters its keyed rows into `npart`
/// buckets, the buckets transpose to partition-major, and each partition
/// builds its own table from its buckets in morsel order — in parallel,
/// with no synchronization, since a key lives in exactly one partition.
/// Within each key the match list stays in ascending row order, exactly
/// what a serial build produces. The probe walks the left side per morsel
/// in original order, routing each key to its partition's table, so the
/// emitted `(left row, right row)` pairs concatenate bit-identically to a
/// single-table probe.
fn join_core<K, P, L, R>(
    left_len: usize,
    right_len: usize,
    kind: JoinKind,
    npart: usize,
    part: P,
    lkey: L,
    rkey: R,
) -> (Vec<u32>, Vec<u32>)
where
    K: Hash + Eq + Send + Sync,
    P: Fn(&K) -> usize + Sync,
    L: Fn(usize) -> Option<K> + Sync,
    R: Fn(usize) -> Option<K> + Sync,
{
    // One partition's build entries, one inner Vec per source morsel.
    type Buckets<K> = Vec<Vec<(K, u32)>>;
    // Build, pass 1: per-morsel scatter into partition buckets.
    let scattered: Vec<Buckets<K>> = per_morsel(right_len, |rg| {
        let mut buckets: Buckets<K> = (0..npart).map(|_| Vec::new()).collect();
        for i in rg {
            if let Some(k) = rkey(i) {
                let p = part(&k);
                buckets[p].push((k, i as u32));
            }
        }
        buckets
    });
    // Transpose morsel-major → partition-major. Pure moves, no clones.
    let mut by_part: Vec<Buckets<K>> = (0..npart).map(|_| Vec::with_capacity(scattered.len())).collect();
    for morsel in scattered {
        for (p, bucket) in morsel.into_iter().enumerate() {
            by_part[p].push(bucket);
        }
    }
    // Build, pass 2: per-partition tables in parallel. The mutexes only
    // hand ownership of a partition's buckets to the one job that takes
    // them — they are never contended.
    let slots: Vec<Mutex<Buckets<K>>> = by_part.into_iter().map(Mutex::new).collect();
    let tables: Vec<FastMap<K, Vec<u32>>> = pool::run_indexed(npart, |p| {
        let buckets = std::mem::take(&mut *slots[p].lock().expect("bucket mutex never poisons"));
        let mut m: FastMap<K, Vec<u32>> = FastMap::default();
        for bucket in buckets {
            for (k, i) in bucket {
                m.entry(k).or_default().push(i);
            }
        }
        m
    });
    // Probe per morsel in original order, partition computed on the fly.
    let chunks: Vec<(Vec<u32>, Vec<u32>)> = per_morsel(left_len, |rg| {
        let mut l_out = Vec::with_capacity(rg.len());
        let mut r_out = Vec::with_capacity(rg.len());
        for i in rg {
            match lkey(i).and_then(|k| tables[part(&k)].get(&k)) {
                Some(ms) => {
                    for &m in ms {
                        l_out.push(i as u32);
                        r_out.push(m);
                    }
                }
                None => {
                    if kind == JoinKind::Left {
                        l_out.push(i as u32);
                        r_out.push(NULL_IDX);
                    }
                }
            }
        }
        (l_out, r_out)
    });
    let total: usize = chunks.iter().map(|(l, _)| l.len()).sum();
    let mut l_out = Vec::with_capacity(total);
    let mut r_out = Vec::with_capacity(total);
    for (mut l, mut r) in chunks {
        l_out.append(&mut l);
        r_out.append(&mut r);
    }
    (l_out, r_out)
}

/// One morsel's insertion-ordered aggregation table, generic over the key:
/// `(key, first-seen row, accumulators)` in first-seen order.
type LocalAggTable<K> = Vec<(K, u32, Vec<AggState>)>;

#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Sum(f64, bool),
    Avg(f64, u64),
    Min(Option<Value>),
    Max(Option<Value>),
    Count(u64),
}

/// A measure whose per-morsel fold runs column-at-a-time: `SUM`/`AVG` over
/// a numeric vector (or numeric constant) reduce to plain `f64` adds, and
/// `COUNT` needs no values at all. Anything else — `MIN`/`MAX` (which keep
/// `Value`s), non-numeric vectors whose accumulation must surface a type
/// error per row, `Mixed` columns — stays on the [`accumulate`] path.
enum FastFold<'a> {
    F64(NumSrc<'a>, Option<&'a Bitmap>),
    Count,
}

/// The numeric view behind a [`FastFold::F64`] lane.
enum NumSrc<'a> {
    F(&'a [f64]),
    I(&'a [i64]),
    Const(f64),
}

fn fast_fold<'a>(fresh: &AggState, vek: &'a Vek) -> Option<FastFold<'a>> {
    if matches!(fresh, AggState::Count(_)) {
        return Some(FastFold::Count);
    }
    if !matches!(fresh, AggState::Sum(..) | AggState::Avg(..)) {
        return None;
    }
    match vek {
        Vek::Const(Value::Int(v)) => Some(FastFold::F64(NumSrc::Const(*v as f64), None)),
        Vek::Const(Value::Float(v)) => Some(FastFold::F64(NumSrc::Const(*v), None)),
        Vek::Col(c) => match c.data() {
            ColumnData::Float(v) => Some(FastFold::F64(NumSrc::F(v), c.validity())),
            ColumnData::Int(v) => Some(FastFold::F64(NumSrc::I(v), c.validity())),
            _ => None,
        },
        _ => None,
    }
}

/// Folds one evaluated measure value into an accumulator.
pub(crate) fn accumulate(state: &mut AggState, v: Value) -> Result<(), EvalError> {
    match state {
        AggState::Count(n) => *n += 1,
        _ if v.is_null() => {}
        AggState::Sum(acc, any) => {
            *acc += v.as_f64().ok_or_else(|| EvalError::Type(format!("SUM of `{v}`")))?;
            *any = true;
        }
        AggState::Avg(acc, n) => {
            *acc += v.as_f64().ok_or_else(|| EvalError::Type(format!("AVERAGE of `{v}`")))?;
            *n += 1;
        }
        AggState::Min(cur) => {
            if cur.as_ref().is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less) {
                *cur = Some(v);
            }
        }
        AggState::Max(cur) => {
            if cur.as_ref().is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater) {
                *cur = Some(v);
            }
        }
    }
    Ok(())
}

/// Merges a later morsel's accumulator into an earlier one. Ties keep the
/// earlier value, matching the row-order semantics of a serial fold.
pub(crate) fn merge_state(into: &mut AggState, from: AggState) {
    match (into, from) {
        (AggState::Sum(acc, any), AggState::Sum(acc2, any2)) => {
            *acc += acc2;
            *any |= any2;
        }
        (AggState::Avg(acc, n), AggState::Avg(acc2, n2)) => {
            *acc += acc2;
            *n += n2;
        }
        (AggState::Min(cur), AggState::Min(other)) => {
            if let Some(v) = other {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less) {
                    *cur = Some(v);
                }
            }
        }
        (AggState::Max(cur), AggState::Max(other)) => {
            if let Some(v) = other {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater) {
                    *cur = Some(v);
                }
            }
        }
        (AggState::Count(n), AggState::Count(m)) => *n += m,
        _ => unreachable!("morsel accumulators always align by aggregate spec"),
    }
}

/// The final value of one accumulator.
pub(crate) fn finalize_state(state: AggState) -> Value {
    match state {
        AggState::Sum(acc, any) => {
            if any {
                Value::Float(acc)
            } else {
                Value::Null
            }
        }
        AggState::Avg(acc, n) => {
            if n > 0 {
                Value::Float(acc / n as f64)
            } else {
                Value::Null
            }
        }
        AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        AggState::Count(n) => Value::Int(n as i64),
    }
}

/// The aggregation skeleton, generic over the group-key type: two-phase
/// parallel aggregation keeping `(key, first-seen row, accumulators)` per
/// group. Phase 1 folds each morsel into `npart` local insertion-ordered
/// tables, segregated by the key's radix partition — measures evaluate
/// column-at-a-time per morsel before the fold. Phase 2 merges each
/// partition's locals independently (in parallel), in morsel order within
/// the partition, keeping the earliest first-seen row. A key lives in
/// exactly one partition, so the final sort by first-seen row reproduces
/// global first-occurrence order — the combined accumulators and their
/// order are a pure function of the morsel structure and the key values,
/// identical for serial and parallel runs at any thread count. (Within one
/// morsel, evaluation errors surface measure-major rather than row-major —
/// still deterministic, since morsel order breaks ties across morsels.)
#[allow(clippy::too_many_arguments)]
fn agg_core<K, P, F>(
    cols: &[Arc<Col>],
    len: usize,
    measures: &[CompiledExpr],
    fresh: &[AggState],
    npart: usize,
    part: P,
    keyf: F,
) -> Result<LocalAggTable<K>, EvalError>
where
    K: Hash + Eq + Clone + Send,
    P: Fn(&K) -> usize + Sync,
    F: Fn(usize) -> K + Sync,
{
    let locals: Vec<Result<Vec<LocalAggTable<K>>, EvalError>> = per_morsel(len, |rg| {
        let sel = RowSel::Range(rg.clone());
        let veks: Vec<Vek> = measures.iter().map(|m| eval_vector(m, cols, &sel)).collect::<Result<_, _>>()?;
        // Pass 1: resolve each row to a group id (first-seen order), one
        // hash probe per row and nothing else.
        let mut index: FastMap<K, u32> = FastMap::default();
        let mut parts: Vec<LocalAggTable<K>> = (0..npart).map(|_| Vec::new()).collect();
        let mut created: Vec<(u32, u32)> = Vec::new(); // gid → (partition, slot)
        let mut gids: Vec<u32> = Vec::with_capacity(rg.len());
        for i in rg.clone() {
            let key = keyf(i);
            let gid = match index.get(&key) {
                Some(&g) => g,
                None => {
                    let p = part(&key);
                    let g = created.len() as u32;
                    created.push((p as u32, parts[p].len() as u32));
                    index.insert(key.clone(), g);
                    parts[p].push((key, i as u32, fresh.to_vec()));
                    g
                }
            };
            gids.push(gid);
        }
        // Pass 2: fold each measure column-at-a-time over the resolved
        // slots. `SUM`/`AVG` over numeric vectors and `COUNT` run through
        // flat buffers — the same adds in the same row order as the
        // row-at-a-time fold, so the result bits are identical; everything
        // else (MIN/MAX, non-numeric, dirty columns) takes the `Value`
        // path per row.
        for (m, vek) in veks.iter().enumerate() {
            match fast_fold(&fresh[m], vek) {
                Some(FastFold::Count) => {
                    let mut counts = vec![0u64; created.len()];
                    for &g in &gids {
                        counts[g as usize] += 1;
                    }
                    for (g, &(p, s)) in created.iter().enumerate() {
                        parts[p as usize][s as usize].2[m] = AggState::Count(counts[g]);
                    }
                }
                Some(FastFold::F64(src, validity)) => {
                    let mut acc = vec![0.0f64; created.len()];
                    let mut cnt = vec![0u64; created.len()];
                    match (src, validity) {
                        (NumSrc::F(vs), None) => {
                            for (off, &g) in gids.iter().enumerate() {
                                acc[g as usize] += vs[off];
                                cnt[g as usize] += 1;
                            }
                        }
                        (NumSrc::F(vs), Some(bm)) => {
                            for (off, &g) in gids.iter().enumerate() {
                                if bm.get(off) {
                                    acc[g as usize] += vs[off];
                                    cnt[g as usize] += 1;
                                }
                            }
                        }
                        (NumSrc::I(vs), None) => {
                            for (off, &g) in gids.iter().enumerate() {
                                acc[g as usize] += vs[off] as f64;
                                cnt[g as usize] += 1;
                            }
                        }
                        (NumSrc::I(vs), Some(bm)) => {
                            for (off, &g) in gids.iter().enumerate() {
                                if bm.get(off) {
                                    acc[g as usize] += vs[off] as f64;
                                    cnt[g as usize] += 1;
                                }
                            }
                        }
                        (NumSrc::Const(c), _) => {
                            for &g in &gids {
                                acc[g as usize] += c;
                                cnt[g as usize] += 1;
                            }
                        }
                    }
                    for (g, &(p, s)) in created.iter().enumerate() {
                        parts[p as usize][s as usize].2[m] = match fresh[m] {
                            AggState::Sum(..) => AggState::Sum(acc[g], cnt[g] > 0),
                            _ => AggState::Avg(acc[g], cnt[g]),
                        };
                    }
                }
                None => {
                    for (off, &g) in gids.iter().enumerate() {
                        let (p, s) = created[g as usize];
                        accumulate(&mut parts[p as usize][s as usize].2[m], vek.value(off))?;
                    }
                }
            }
        }
        Ok(parts)
    });
    // Surface the first error in morsel order — deterministic under any
    // thread count.
    let mut per_morsel_parts: Vec<Vec<LocalAggTable<K>>> = Vec::with_capacity(locals.len());
    for l in locals {
        per_morsel_parts.push(l?);
    }
    // Transpose morsel-major → partition-major (pure moves), then merge
    // each partition's locals in morsel order, in parallel. The mutexes
    // only hand ownership to the one merging job — never contended.
    let mut by_part: Vec<Vec<LocalAggTable<K>>> =
        (0..npart).map(|_| Vec::with_capacity(per_morsel_parts.len())).collect();
    for morsel in per_morsel_parts {
        for (p, t) in morsel.into_iter().enumerate() {
            by_part[p].push(t);
        }
    }
    let slots: Vec<Mutex<Vec<LocalAggTable<K>>>> = by_part.into_iter().map(Mutex::new).collect();
    let merged: Vec<LocalAggTable<K>> = pool::run_indexed(npart, |p| {
        let tables = std::mem::take(&mut *slots[p].lock().expect("partition mutex never poisons"));
        let mut index: FastMap<K, usize> = FastMap::default();
        let mut groups: LocalAggTable<K> = Vec::new();
        for local in tables {
            for (key, first, states) in local {
                match index.get(&key) {
                    Some(&slot) => {
                        for (into, from) in groups[slot].2.iter_mut().zip(states) {
                            merge_state(into, from);
                        }
                    }
                    None => {
                        index.insert(key.clone(), groups.len());
                        groups.push((key, first, states));
                    }
                }
            }
        }
        groups
    });
    // First-seen rows are unique across groups (a row belongs to one
    // group), so sorting by them restores exact serial insertion order.
    let mut groups: LocalAggTable<K> = merged.into_iter().flatten().collect();
    groups.sort_by_key(|g| g.1);
    Ok(groups)
}

/// Drops the key from a merged aggregation table: the output's group columns
/// gather at each group's first-seen row instead, which yields exactly the
/// first-seen key values (word equality coincides with value equality within
/// every encoded column).
fn drop_keys<K>(groups: LocalAggTable<K>) -> Vec<(u32, Vec<AggState>)> {
    groups.into_iter().map(|(_, first, states)| (first, states)).collect()
}

/// Columnar grouped aggregation: group keys are planned once
/// ([`plan_group_keys`]) into fixed-width words (with a null-mask word)
/// unless a `Mixed` column forces `Value`-row keys; measures evaluate
/// vectorized per morsel; the output's group columns gather at each group's
/// first-seen row and the aggregate columns build from finalized
/// accumulators. Only the group and measure columns materialize from a late
/// input; encoded keys aggregate radix-partitioned ([`agg_core`]).
fn hash_aggregate(
    input: &Batch,
    group_by: &[String],
    aggregates: &[AggSpec],
    op_name: &str,
) -> Result<Relation, EvalError> {
    let len = input.len();
    check_row_capacity(len);
    let schema = OpKind::Aggregation { group_by: group_by.to_vec(), aggregates: aggregates.to_vec() }
        .output_schema(op_name, std::slice::from_ref(input.schema()))
        .expect("validated before execution");
    let g_idx: Vec<usize> = group_by.iter().map(|c| input.col(c)).collect();
    // Bind measure expressions and aggregate functions once, up front.
    let measures: Vec<CompiledExpr> = aggregates
        .iter()
        .map(|a| {
            CompiledExpr::compile(&a.input, input.schema()).map_err(|UnboundColumn(c)| EvalError::UnknownColumn(c))
        })
        .collect::<Result<_, _>>()?;
    let fresh_states: Vec<AggState> = aggregates
        .iter()
        .map(|a| match a.function.to_ascii_uppercase().as_str() {
            "SUM" => AggState::Sum(0.0, false),
            "AVG" | "AVERAGE" => AggState::Avg(0.0, 0),
            "MIN" => AggState::Min(None),
            "MAX" => AggState::Max(None),
            _ => AggState::Count(0),
        })
        .collect();
    let cols = input.cols_for(&used_columns(&measures.iter().collect::<Vec<_>>(), &g_idx));
    let cols = cols.as_slice();

    let mut groups: Vec<(u32, Vec<AggState>)> = if g_idx.is_empty() {
        drop_keys(agg_core(cols, len, &measures, &fresh_states, 1, |_: &()| 0, |_| ())?)
    } else {
        let g_cols: Vec<&Col> = g_idx.iter().map(|&c| cols[c].as_ref()).collect();
        match plan_group_keys(&g_cols, len) {
            GroupKeyPlan::Values => {
                let keyf = |i: usize| -> Row { g_idx.iter().map(|&c| cols[c].value(i)).collect() };
                drop_keys(agg_core(cols, len, &measures, &fresh_states, 1, |_: &Row| 0, keyf)?)
            }
            GroupKeyPlan::Encoded(sk) => {
                let npart = radix_partition_count(len);
                match sk.width {
                    1 => drop_keys(agg_core(
                        cols,
                        len,
                        &measures,
                        &fresh_states,
                        npart,
                        move |k: &u64| radix_of(*k, npart),
                        |i| sk.words[i],
                    )?),
                    2 => drop_keys(agg_core(
                        cols,
                        len,
                        &measures,
                        &fresh_states,
                        npart,
                        move |k: &u128| radix_of(fold128(*k), npart),
                        |i| pack2(sk.row(i)),
                    )?),
                    3 | 4 => drop_keys(agg_core(
                        cols,
                        len,
                        &measures,
                        &fresh_states,
                        npart,
                        move |k: &[u64; 4]| radix_of(fold_words(k), npart),
                        |i| pack4(sk.row(i)),
                    )?),
                    _ => drop_keys(agg_core::<Box<[u64]>, _, _>(
                        cols,
                        len,
                        &measures,
                        &fresh_states,
                        npart,
                        move |k| radix_of(fold_words(k), npart),
                        |i| sk.row(i).to_vec().into_boxed_slice(),
                    )?),
                }
            }
        }
    };
    // A global aggregation over zero rows still yields one row of neutral
    // values, matching SQL semantics. (The first-seen index is unused: there
    // are no group columns to gather.)
    if groups.is_empty() && group_by.is_empty() {
        groups.push((0, fresh_states.clone()));
    }
    let firsts: Vec<u32> = groups.iter().map(|(first, _)| *first).collect();
    let mut columns: Vec<Arc<Col>> = g_idx.iter().map(|&c| Arc::new(cols[c].gather(&firsts))).collect();
    for (j, sc) in schema.columns[group_by.len()..].iter().enumerate() {
        let mut b = ColumnBuilder::new(sc.ty);
        for (_, states) in &groups {
            b.push(finalize_state(states[j].clone()));
        }
        columns.push(Arc::new(b.finish()));
    }
    Ok(Relation::from_columns(schema, columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_etl::{parse_expr, ColType, Column, Schema};

    fn li_schema() -> Schema {
        Schema::new(vec![
            Column::new("l_orderkey", ColType::Integer),
            Column::new("l_extendedprice", ColType::Decimal),
            Column::new("l_discount", ColType::Decimal),
        ])
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.put(
            "lineitem",
            Relation::with_rows(
                li_schema(),
                vec![
                    vec![Value::Int(1), Value::Float(100.0), Value::Float(0.05)],
                    vec![Value::Int(1), Value::Float(200.0), Value::Float(0.00)],
                    vec![Value::Int(2), Value::Float(50.0), Value::Float(0.10)],
                ],
            ),
        );
        c.put(
            "orders",
            Relation::with_rows(
                Schema::new(vec![Column::new("o_orderkey", ColType::Integer), Column::new("o_status", ColType::Text)]),
                vec![vec![Value::Int(1), Value::Str("O".into())], vec![Value::Int(3), Value::Str("F".into())]],
            ),
        );
        c
    }

    fn ds_lineitem() -> OpKind {
        OpKind::Datastore { datastore: "lineitem".into(), schema: li_schema() }
    }

    #[test]
    fn scan_filter_aggregate_load() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let s = f.append(d, "SEL", OpKind::Selection { predicate: parse_expr("l_discount > 0.01").unwrap() }).unwrap();
        let a = f
            .append(
                s,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec!["l_orderkey".into()],
                    aggregates: vec![AggSpec::new(
                        "SUM",
                        parse_expr("l_extendedprice * (1 - l_discount)").unwrap(),
                        "rev",
                    )],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "fact".into(), key: vec![] }).unwrap();

        let mut engine = Engine::new(catalog());
        let report = engine.run(&f).unwrap();
        assert_eq!(report.rows_loaded("fact"), 2);
        let fact = engine.catalog.get("fact").unwrap();
        assert_eq!(fact.len(), 2);
        let rev = fact.column_values("rev");
        assert_eq!(rev[0], Value::Float(95.0));
        assert_eq!(rev[1], Value::Float(45.0));
        assert!(report.total >= Duration::ZERO);
        assert_eq!(report.timings.len(), 4);

        // The run's measured cardinalities feed back into the cost model.
        let mut stats = engine.catalog.statistics();
        report.observe_into(&mut stats);
        let sel_rows = report.timings.iter().find(|t| t.op == "SEL").unwrap().rows_out;
        assert_eq!(stats.observed_op("SEL"), Some(sel_rows as f64));
        let cards = quarry_etl::cost::cardinalities(&f, &stats).unwrap();
        assert_eq!(cards[&s], sel_rows as f64, "estimator now uses the observed filter cardinality");
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let s1 =
            f.append(d, "SEL1", OpKind::Selection { predicate: parse_expr("l_discount > 0.01").unwrap() }).unwrap();
        let s2 =
            f.append(d, "SEL2", OpKind::Selection { predicate: parse_expr("l_extendedprice > 60").unwrap() }).unwrap();
        let a1 = f
            .append(
                s1,
                "AGG1",
                OpKind::Aggregation {
                    group_by: vec!["l_orderkey".into()],
                    aggregates: vec![AggSpec::new("SUM", parse_expr("l_extendedprice").unwrap(), "rev")],
                },
            )
            .unwrap();
        let a2 = f
            .append(
                s2,
                "AGG2",
                OpKind::Aggregation {
                    group_by: vec!["l_orderkey".into()],
                    aggregates: vec![AggSpec::new("COUNT", parse_expr("1").unwrap(), "n")],
                },
            )
            .unwrap();
        f.append(a1, "L1", OpKind::Loader { table: "out1".into(), key: vec![] }).unwrap();
        f.append(a2, "L2", OpKind::Loader { table: "out2".into(), key: vec![] }).unwrap();

        let mut seq = Engine::new(catalog());
        seq.run(&f).unwrap();
        let mut par = Engine::new(catalog());
        let report = par.run_parallel(&f).unwrap();
        for t in ["out1", "out2"] {
            crate::relation::assert_same_rows(seq.catalog.get(t).unwrap(), par.catalog.get(t).unwrap());
        }
        assert_eq!(report.timings.len(), f.op_count());
        assert_eq!(report.loaded.len(), 2);
    }

    #[test]
    fn parallel_run_surfaces_errors() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", OpKind::Datastore { datastore: "ghost".into(), schema: li_schema() }).unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        assert!(matches!(engine.run_parallel(&f), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn datastore_projects_catalog_columns() {
        // Extraction schema narrower than the stored table works.
        let mut f = Flow::new("t");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "lineitem".into(),
                    schema: Schema::new(vec![Column::new("l_discount", ColType::Decimal)]),
                },
            )
            .unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        assert_eq!(engine.catalog.get("out").unwrap().schema.len(), 1);
    }

    #[test]
    fn missing_table_and_column_errors() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", OpKind::Datastore { datastore: "ghost".into(), schema: li_schema() }).unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        assert!(matches!(engine.run(&f), Err(EngineError::UnknownTable(t)) if t == "ghost"));

        let mut f2 = Flow::new("t2");
        let d2 = f2
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "lineitem".into(),
                    schema: Schema::new(vec![Column::new("nope", ColType::Integer)]),
                },
            )
            .unwrap();
        f2.append(d2, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine2 = Engine::new(catalog());
        assert!(matches!(engine2.run(&f2), Err(EngineError::SourceSchemaMismatch { .. })));
    }

    #[test]
    fn inner_and_left_join() {
        for (kind, expected) in [(JoinKind::Inner, 2usize), (JoinKind::Left, 3usize)] {
            let mut f = Flow::new("t");
            let l = f.add_op("L", ds_lineitem()).unwrap();
            let o = f
                .add_op(
                    "O",
                    OpKind::Datastore {
                        datastore: "orders".into(),
                        schema: Schema::new(vec![
                            Column::new("o_orderkey", ColType::Integer),
                            Column::new("o_status", ColType::Text),
                        ]),
                    },
                )
                .unwrap();
            let j = f
                .add_op(
                    "J",
                    OpKind::Join { kind, left_on: vec!["l_orderkey".into()], right_on: vec!["o_orderkey".into()] },
                )
                .unwrap();
            f.connect(l, j).unwrap();
            f.connect(o, j).unwrap();
            f.append(j, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
            let mut engine = Engine::new(catalog());
            engine.run(&f).unwrap();
            assert_eq!(engine.catalog.get("out").unwrap().len(), expected, "{kind:?}");
        }
    }

    #[test]
    fn left_join_pads_with_nulls() {
        let mut f = Flow::new("t");
        let l = f.add_op("L", ds_lineitem()).unwrap();
        let o = f
            .add_op(
                "O",
                OpKind::Datastore {
                    datastore: "orders".into(),
                    schema: Schema::new(vec![
                        Column::new("o_orderkey", ColType::Integer),
                        Column::new("o_status", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let j = f
            .add_op(
                "J",
                OpKind::Join {
                    kind: JoinKind::Left,
                    left_on: vec!["l_orderkey".into()],
                    right_on: vec!["o_orderkey".into()],
                },
            )
            .unwrap();
        f.connect(l, j).unwrap();
        f.connect(o, j).unwrap();
        f.append(j, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        let unmatched: Vec<Row> = out.iter_rows().filter(|r| r[0] == Value::Int(2)).collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0][3].is_null() && unmatched[0][4].is_null());
    }

    #[test]
    fn aggregation_functions() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let a = f
            .append(
                d,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec![],
                    aggregates: vec![
                        AggSpec::new("SUM", parse_expr("l_extendedprice").unwrap(), "s"),
                        AggSpec::new("AVERAGE", parse_expr("l_extendedprice").unwrap(), "a"),
                        AggSpec::new("MIN", parse_expr("l_extendedprice").unwrap(), "lo"),
                        AggSpec::new("MAX", parse_expr("l_extendedprice").unwrap(), "hi"),
                        AggSpec::new("COUNT", parse_expr("1").unwrap(), "n"),
                    ],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.len(), 1);
        let r = out.row(0);
        assert_eq!(r[0], Value::Float(350.0));
        assert_eq!(r[1], Value::Float(350.0 / 3.0));
        assert_eq!(r[2], Value::Float(50.0));
        assert_eq!(r[3], Value::Float(200.0));
        assert_eq!(r[4], Value::Int(3));
    }

    #[test]
    fn global_aggregate_of_empty_input_yields_neutral_row() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let s = f.append(d, "SEL", OpKind::Selection { predicate: parse_expr("l_discount > 9").unwrap() }).unwrap();
        let a = f
            .append(
                s,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec![],
                    aggregates: vec![
                        AggSpec::new("COUNT", parse_expr("1").unwrap(), "n"),
                        AggSpec::new("SUM", parse_expr("l_extendedprice").unwrap(), "s"),
                    ],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.to_rows(), vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn surrogate_keys_are_deterministic_per_natural_key() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let k = f
            .append(d, "SK", OpKind::SurrogateKey { natural: vec!["l_orderkey".into()], output: "sk".into() })
            .unwrap();
        f.append(k, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        let sk = out.column_values("sk");
        assert_eq!(sk[0], sk[1], "same natural key, same surrogate");
        assert_ne!(sk[0], sk[2], "different natural key, different surrogate");
        // Cross-flow stability: the same key hashed anywhere matches.
        assert_eq!(sk[0], Value::Int(surrogate_of([Value::Int(1)].iter())));
    }

    #[test]
    fn surrogate_hash_separates_key_parts() {
        let a = surrogate_of([Value::Str("ab".into()), Value::Str("c".into())].iter());
        let b = surrogate_of([Value::Str("a".into()), Value::Str("bc".into())].iter());
        assert_ne!(a, b);
        assert!(a >= 0 && b >= 0);
    }

    #[test]
    fn union_aligns_columns_by_name() {
        let mut f = Flow::new("t");
        let a = f.add_op("A", ds_lineitem()).unwrap();
        let b = f.add_op("B", ds_lineitem()).unwrap();
        let u = f.add_op("U", OpKind::Union).unwrap();
        f.connect(a, u).unwrap();
        f.connect(b, u).unwrap();
        f.append(u, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        assert_eq!(engine.catalog.get("out").unwrap().len(), 6);
    }

    #[test]
    fn union_rejects_permuted_columns_statically() {
        // Static validation requires union inputs to share one column
        // layout, which is what makes the executor's verbatim-copy fast
        // path safe: a permuted right input never reaches execution.
        let ab = Schema::new(vec![Column::new("a", ColType::Integer), Column::new("b", ColType::Text)]);
        let ba = Schema::new(vec![Column::new("b", ColType::Text), Column::new("a", ColType::Integer)]);
        let mut f = Flow::new("t");
        let l = f.add_op("L", OpKind::Datastore { datastore: "left".into(), schema: ab }).unwrap();
        let r = f.add_op("R", OpKind::Datastore { datastore: "right".into(), schema: ba }).unwrap();
        let u = f.add_op("U", OpKind::Union).unwrap();
        f.connect(l, u).unwrap();
        f.connect(r, u).unwrap();
        assert!(matches!(f.schemas(), Err(FlowError::InvalidOp { .. })));
    }

    #[test]
    fn sort_and_distinct() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        let p = f.append(d, "P", OpKind::Projection { columns: vec!["l_orderkey".into()] }).unwrap();
        let dd = f.append(p, "D", OpKind::Distinct).unwrap();
        let s = f.append(dd, "S", OpKind::Sort { columns: vec!["l_orderkey".into()] }).unwrap();
        f.append(s, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.to_rows(), vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        // Rows with equal sort keys keep their input order (the sort
        // permutes indices but must stay stable).
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::new("k", ColType::Integer), Column::new("tag", ColType::Text)]);
        c.put(
            "t",
            Relation::with_rows(
                schema.clone(),
                vec![
                    vec![Value::Int(2), Value::Str("first-2".into())],
                    vec![Value::Int(1), Value::Str("first-1".into())],
                    vec![Value::Int(2), Value::Str("second-2".into())],
                    vec![Value::Int(1), Value::Str("second-1".into())],
                ],
            ),
        );
        let mut f = Flow::new("x");
        let d = f.add_op("DS", OpKind::Datastore { datastore: "t".into(), schema }).unwrap();
        let s = f.append(d, "S", OpKind::Sort { columns: vec!["k".into()] }).unwrap();
        f.append(s, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        engine.run(&f).unwrap();
        let tags = engine.catalog.get("out").unwrap().column_values("tag");
        assert_eq!(
            tags,
            [
                Value::Str("first-1".into()),
                Value::Str("second-1".into()),
                Value::Str("first-2".into()),
                Value::Str("second-2".into()),
            ]
        );
    }

    #[test]
    fn loader_appends_to_existing_table_and_checks_schema() {
        let mut f = Flow::new("t");
        let d = f.add_op("DS", ds_lineitem()).unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "sink".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(catalog());
        engine.run(&f).unwrap();
        engine.run(&f).unwrap();
        assert_eq!(engine.catalog.get("sink").unwrap().len(), 6, "two runs append");

        // Pre-created with a different schema → load error.
        let mut engine2 = Engine::new(catalog());
        engine2.catalog.create_table("sink", Schema::new(vec![Column::new("x", ColType::Integer)]));
        assert!(matches!(engine2.run(&f), Err(EngineError::LoadSchemaMismatch { .. })));
    }

    #[test]
    fn join_with_empty_build_side() {
        let mut c = catalog();
        c.put("orders", Relation::new(c.get("orders").unwrap().schema.clone()));
        let mut f = Flow::new("t");
        let l = f.add_op("L", ds_lineitem()).unwrap();
        let o = f
            .add_op(
                "O",
                OpKind::Datastore {
                    datastore: "orders".into(),
                    schema: Schema::new(vec![
                        Column::new("o_orderkey", ColType::Integer),
                        Column::new("o_status", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let j = f
            .add_op(
                "J",
                OpKind::Join {
                    kind: JoinKind::Inner,
                    left_on: vec!["l_orderkey".into()],
                    right_on: vec!["o_orderkey".into()],
                },
            )
            .unwrap();
        f.connect(l, j).unwrap();
        f.connect(o, j).unwrap();
        f.append(j, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        engine.run(&f).unwrap();
        assert_eq!(engine.catalog.get("out").unwrap().len(), 0, "inner join with empty build side is empty");
    }

    #[test]
    fn null_group_keys_form_their_own_group() {
        let mut c = Catalog::new();
        c.put(
            "t",
            Relation::with_rows(
                Schema::new(vec![Column::new("g", ColType::Integer), Column::new("v", ColType::Decimal)]),
                vec![
                    vec![Value::Null, Value::Float(1.0)],
                    vec![Value::Null, Value::Float(2.0)],
                    vec![Value::Int(1), Value::Float(3.0)],
                ],
            ),
        );
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "t".into(),
                    schema: Schema::new(vec![Column::new("g", ColType::Integer), Column::new("v", ColType::Decimal)]),
                },
            )
            .unwrap();
        let a = f
            .append(
                d,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec!["g".into()],
                    aggregates: vec![AggSpec::new("SUM", parse_expr("v").unwrap(), "s")],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.len(), 2, "NULL keys group together");
        let null_group = out.iter_rows().find(|r| r[0].is_null()).expect("null group exists");
        assert_eq!(null_group[1], Value::Float(3.0));
    }

    #[test]
    fn upsert_first_load_dedupes_by_key() {
        let mut c = Catalog::new();
        c.put(
            "t",
            Relation::with_rows(
                Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Decimal)]),
                vec![
                    vec![Value::Int(1), Value::Float(1.0)],
                    vec![Value::Int(1), Value::Float(2.0)],
                    vec![Value::Int(2), Value::Float(3.0)],
                ],
            ),
        );
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "t".into(),
                    schema: Schema::new(vec![Column::new("k", ColType::Integer), Column::new("v", ColType::Decimal)]),
                },
            )
            .unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "out".into(), key: vec!["k".into()] }).unwrap();
        let mut engine = Engine::new(c);
        engine.run(&f).unwrap();
        let out = engine.catalog.get("out").unwrap();
        assert_eq!(out.len(), 2, "duplicate keys in the very first load collapse");
        // Last write wins within the batch.
        let k1 = out.iter_rows().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(k1[1], Value::Float(2.0));
    }

    #[test]
    fn upsert_widens_schema_and_pads_old_rows() {
        let schema_a = Schema::new(vec![Column::new("k", ColType::Integer), Column::new("a", ColType::Decimal)]);
        let schema_b = Schema::new(vec![Column::new("k", ColType::Integer), Column::new("b", ColType::Text)]);
        let mut c = Catalog::new();
        c.put("src_a", Relation::with_rows(schema_a.clone(), vec![vec![Value::Int(1), Value::Float(9.0)]]));
        c.put(
            "src_b",
            Relation::with_rows(
                schema_b.clone(),
                vec![vec![Value::Int(1), Value::Str("x".into())], vec![Value::Int(2), Value::Str("y".into())]],
            ),
        );
        let mut engine = Engine::new(c);
        for (src, schema) in [("src_a", schema_a), ("src_b", schema_b)] {
            let mut f = Flow::new("x");
            let d = f.add_op("DS", OpKind::Datastore { datastore: src.into(), schema }).unwrap();
            f.append(d, "LOAD", OpKind::Loader { table: "dim".into(), key: vec!["k".into()] }).unwrap();
            engine.run(&f).unwrap();
        }
        let dim = engine.catalog.get("dim").unwrap();
        assert_eq!(dim.schema.names().collect::<Vec<_>>(), ["k", "a", "b"]);
        assert_eq!(dim.len(), 2);
        let k1 = dim.iter_rows().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(k1[1], Value::Float(9.0), "existing column kept");
        assert_eq!(k1[2], Value::Str("x".into()), "new column filled");
        let k2 = dim.iter_rows().find(|r| r[0] == Value::Int(2)).unwrap();
        assert!(k2[1].is_null(), "missing column padded with NULL");
    }

    #[test]
    fn upsert_rejects_type_conflicts() {
        let mut c = Catalog::new();
        c.put(
            "src",
            Relation::with_rows(Schema::new(vec![Column::new("k", ColType::Integer)]), vec![vec![Value::Int(1)]]),
        );
        let mut engine = Engine::new(c);
        engine.catalog.put("dim", Relation::new(Schema::new(vec![Column::new("k", ColType::Text)])));
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore {
                    datastore: "src".into(),
                    schema: Schema::new(vec![Column::new("k", ColType::Integer)]),
                },
            )
            .unwrap();
        f.append(d, "LOAD", OpKind::Loader { table: "dim".into(), key: vec!["k".into()] }).unwrap();
        assert!(matches!(engine.run(&f), Err(EngineError::LoadSchemaMismatch { .. })));
    }

    #[test]
    fn runtime_eval_errors_carry_op_name() {
        // Dirty data: the column is declared Date but a row carries text.
        // Static validation passes; YEAR() fails at runtime on that row.
        let mut c = Catalog::new();
        c.put(
            "t",
            Relation::with_rows(
                Schema::new(vec![Column::new("d", ColType::Date)]),
                vec![vec![Value::Str("not-a-date".into())]], // dirty data
            ),
        );
        let mut f = Flow::new("x");
        let d = f
            .add_op(
                "DS",
                OpKind::Datastore { datastore: "t".into(), schema: Schema::new(vec![Column::new("d", ColType::Date)]) },
            )
            .unwrap();
        let s = f.append(d, "SEL", OpKind::Selection { predicate: parse_expr("YEAR(d) >= 1995").unwrap() }).unwrap();
        f.append(s, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        match engine.run(&f) {
            Err(EngineError::Eval { op, .. }) => assert_eq!(op, "SEL"),
            other => panic!("expected eval error, got {other:?}"),
        }
    }

    /// A catalog with one `big` table spanning several morsels and a small
    /// `orders`-like side table for joins.
    fn multi_morsel_catalog(rows: usize) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("k", ColType::Integer),
            Column::new("grp", ColType::Integer),
            Column::new("v", ColType::Decimal),
        ]);
        let data: Vec<Row> =
            (0..rows).map(|i| vec![Value::Int(i as i64), Value::Int((i % 7) as i64), Value::Float(i as f64)]).collect();
        c.put("big", Relation::with_rows(schema, data));
        c.put(
            "side",
            Relation::with_rows(
                Schema::new(vec![Column::new("s_grp", ColType::Integer), Column::new("s_name", ColType::Text)]),
                (0..5).map(|g| vec![Value::Int(g), Value::Str(format!("g{g}"))]).collect(),
            ),
        );
        c
    }

    fn multi_morsel_flow() -> Flow {
        let mut f = Flow::new("mm");
        let big = f
            .add_op(
                "BIG",
                OpKind::Datastore {
                    datastore: "big".into(),
                    schema: Schema::new(vec![
                        Column::new("k", ColType::Integer),
                        Column::new("grp", ColType::Integer),
                        Column::new("v", ColType::Decimal),
                    ]),
                },
            )
            .unwrap();
        let side = f
            .add_op(
                "SIDE",
                OpKind::Datastore {
                    datastore: "side".into(),
                    schema: Schema::new(vec![
                        Column::new("s_grp", ColType::Integer),
                        Column::new("s_name", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let sel = f
            .append(big, "SEL", OpKind::Selection { predicate: parse_expr("v >= 10 AND k <> 4999").unwrap() })
            .unwrap();
        let j = f
            .add_op(
                "J",
                OpKind::Join { kind: JoinKind::Left, left_on: vec!["grp".into()], right_on: vec!["s_grp".into()] },
            )
            .unwrap();
        f.connect(sel, j).unwrap();
        f.connect(side, j).unwrap();
        let a = f
            .append(
                j,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec!["grp".into()],
                    aggregates: vec![
                        AggSpec::new("SUM", parse_expr("v").unwrap(), "s"),
                        AggSpec::new("COUNT", parse_expr("1").unwrap(), "n"),
                        AggSpec::new("MIN", parse_expr("v").unwrap(), "lo"),
                        AggSpec::new("MAX", parse_expr("v").unwrap(), "hi"),
                    ],
                },
            )
            .unwrap();
        f.append(a, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        f
    }

    #[test]
    fn multi_morsel_runs_are_bit_identical_to_serial() {
        // An input spanning several morsels (MORSEL_ROWS + change) through
        // selection, join, and grouped aggregation: serial and parallel
        // executors must agree *exactly* — same row order, same floats.
        let rows = MORSEL_ROWS * 2 + 137;
        let f = multi_morsel_flow();
        let mut seq = Engine::new(multi_morsel_catalog(rows));
        seq.run(&f).unwrap();
        let mut par = Engine::new(multi_morsel_catalog(rows));
        par.run_parallel(&f).unwrap();
        let (a, b) = (seq.catalog.get("out").unwrap(), par.catalog.get("out").unwrap());
        assert_eq!(a, b, "serial and parallel outputs must be bit-identical, in order");
        // Group keys surface in first-occurrence order: the selection keeps
        // k >= 10 first, so groups start at 10 % 7 = 3 and wrap around.
        let keys = a.column_values("grp");
        assert_eq!(keys, [3, 4, 5, 6, 0, 1, 2].map(Value::Int).to_vec());
    }

    #[test]
    fn empty_input_through_every_operator() {
        let f = multi_morsel_flow();
        let mut seq = Engine::new(multi_morsel_catalog(0));
        seq.run(&f).unwrap();
        let mut par = Engine::new(multi_morsel_catalog(0));
        par.run_parallel(&f).unwrap();
        assert_eq!(seq.catalog.get("out").unwrap(), par.catalog.get("out").unwrap());
        assert!(seq.catalog.get("out").unwrap().is_empty(), "grouped aggregate of nothing is empty");
    }

    #[test]
    fn timings_measure_op_work_not_barrier_wait() {
        // Two independent ops at the same level: a trivial projection over 3
        // rows and an expression-heavy selection over many rows. If per-op
        // elapsed included the level barrier, both would report roughly the
        // level's wall time; measured per-job, the cheap op must come out
        // far below the expensive one.
        let mut c = multi_morsel_catalog(MORSEL_ROWS * 4);
        c.put(
            "tiny",
            Relation::with_rows(
                Schema::new(vec![Column::new("x", ColType::Integer)]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]],
            ),
        );
        let mut f = Flow::new("t");
        let tiny = f
            .add_op(
                "TINY",
                OpKind::Datastore {
                    datastore: "tiny".into(),
                    schema: Schema::new(vec![Column::new("x", ColType::Integer)]),
                },
            )
            .unwrap();
        let big = f
            .add_op(
                "BIG",
                OpKind::Datastore {
                    datastore: "big".into(),
                    schema: Schema::new(vec![
                        Column::new("k", ColType::Integer),
                        Column::new("grp", ColType::Integer),
                        Column::new("v", ColType::Decimal),
                    ]),
                },
            )
            .unwrap();
        // Level 1: CHEAP and EXPENSIVE are siblings.
        let cheap = f.append(tiny, "CHEAP", OpKind::Projection { columns: vec!["x".into()] }).unwrap();
        let expensive = f
            .append(
                big,
                "EXPENSIVE",
                OpKind::Selection {
                    predicate: parse_expr(
                        "ABS(v * 3 - k) + v * v - v * v + ABS(v) - ABS(v) >= 0 AND CONCAT(grp, '-', k) <> 'x'",
                    )
                    .unwrap(),
                },
            )
            .unwrap();
        f.append(cheap, "L1", OpKind::Loader { table: "o1".into(), key: vec![] }).unwrap();
        f.append(expensive, "L2", OpKind::Loader { table: "o2".into(), key: vec![] }).unwrap();
        let mut engine = Engine::new(c);
        let report = engine.run_parallel(&f).unwrap();
        let elapsed = |name: &str| report.timings.iter().find(|t| t.op == name).unwrap().elapsed;
        let (cheap_t, expensive_t) = (elapsed("CHEAP"), elapsed("EXPENSIVE"));
        assert!(
            cheap_t < expensive_t,
            "3-row projection ({cheap_t:?}) must report less own-work time than a {}-row selection ({expensive_t:?})",
            MORSEL_ROWS * 4
        );
        assert!(
            cheap_t.as_micros() < expensive_t.as_micros().max(1) / 2,
            "cheap op's elapsed ({cheap_t:?}) looks barrier-padded against {expensive_t:?}"
        );
    }

    #[test]
    fn selection_errors_pick_the_first_morsel_deterministically() {
        // Dirty rows in morsels 0 and 2: whichever thread finishes first,
        // the reported error must come from the earliest morsel.
        let rows = MORSEL_ROWS * 3;
        let schema = Schema::new(vec![Column::new("d", ColType::Date)]);
        let dirty_catalog = || {
            let mut c = Catalog::new();
            let mut data: Vec<Row> = (0..rows).map(|_| vec![Value::date(1995, 6, 17)]).collect();
            data[10] = vec![Value::Str("bad-early".into())];
            data[MORSEL_ROWS * 2 + 5] = vec![Value::Str("bad-late".into())];
            c.put("t", Relation::with_rows(schema.clone(), data));
            c
        };
        let mut f = Flow::new("x");
        let d = f.add_op("DS", OpKind::Datastore { datastore: "t".into(), schema: schema.clone() }).unwrap();
        let s = f.append(d, "SEL", OpKind::Selection { predicate: parse_expr("YEAR(d) >= 1995").unwrap() }).unwrap();
        f.append(s, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        for _ in 0..4 {
            let mut engine = Engine::new(dirty_catalog());
            match engine.run(&f) {
                Err(EngineError::Eval { error: EvalError::Type(m), .. }) => {
                    assert!(m.contains("bad-early"), "expected earliest morsel's error, got `{m}`")
                }
                other => panic!("expected type error, got {other:?}"),
            }
        }
    }

    #[test]
    fn projection_and_selection_share_columns_zero_copy() {
        let c = catalog();
        let lineitem = c.get_shared("lineitem").unwrap();
        // Projection of a subset: the output column IS the input column.
        let out = execute_pure(
            &c,
            "P",
            &OpKind::Projection { columns: vec!["l_discount".into()] },
            &[Batch::Rel(Arc::clone(&lineitem))],
        )
        .unwrap();
        let Batch::Rel(out) = out else { panic!("projection of a materialized input stays materialized") };
        assert!(Arc::ptr_eq(out.column(0), lineitem.column(2)), "projection shares the picked column");
        // An all-true selection returns the input relation itself.
        let out = execute_pure(
            &c,
            "S",
            &OpKind::Selection { predicate: parse_expr("l_extendedprice > 0").unwrap() },
            &[Batch::Rel(Arc::clone(&lineitem))],
        )
        .unwrap();
        let Batch::Rel(out) = out else { panic!("all-true selection stays materialized") };
        assert!(Arc::ptr_eq(&out, &lineitem), "all-true selection is a pass-through");
    }

    #[test]
    fn filtered_join_composes_selections_and_gathers_payload_once() {
        // A row-dropping selection, a projection, and a join all stay late;
        // only materializing the final batch gathers the payload column —
        // and doing it twice reuses the memoized gather.
        let c = catalog();
        let lineitem = Batch::Rel(c.get_shared("lineitem").unwrap());
        let orders = Batch::Rel(c.get_shared("orders").unwrap());
        let sel = execute_pure(
            &c,
            "S",
            &OpKind::Selection { predicate: parse_expr("l_extendedprice < 150").unwrap() },
            &[lineitem],
        )
        .unwrap();
        assert!(matches!(sel, Batch::Lazy(_)), "row-dropping selection stays late");
        let joined = hash_join(&sel, &orders, &["l_orderkey".into()], &["o_orderkey".into()], JoinKind::Inner);
        let Batch::Lazy(lz) = &joined else { panic!("join output stays late") };
        assert!(lz.cols.iter().all(|lc| lc.done.get().is_none()), "no payload gathered before a consumer asks");
        let once = joined.materialize();
        let twice = joined.materialize();
        assert!(Arc::ptr_eq(once.column(1), twice.column(1)), "second materialization reuses the memoized gather");
        assert_eq!(
            once.to_rows(),
            vec![vec![Value::Int(1), Value::Float(100.0), Value::Float(0.05), Value::Int(1), Value::Str("O".into()),]]
        );
    }

    #[test]
    fn radix_partition_count_is_a_pure_function_of_length() {
        assert_eq!(radix_partition_count(0), 1);
        assert_eq!(radix_partition_count(MORSEL_ROWS * 2 - 1), 1);
        assert_eq!(radix_partition_count(MORSEL_ROWS * 2), 2);
        assert_eq!(radix_partition_count(MORSEL_ROWS * 5), 8, "rounds up to a power of two");
        assert_eq!(radix_partition_count(usize::MAX / 2), MAX_RADIX_PARTITIONS);
    }

    #[test]
    fn join_with_dirty_mixed_keys_falls_back_to_value_semantics() {
        // Left key column is Mixed (dirty data); the join must fall back to
        // Value-row keys and still honour cross-type Int/Float equality.
        let left = Relation::with_rows(
            Schema::new(vec![Column::new("k", ColType::Integer)]),
            vec![vec![Value::Int(2)], vec![Value::Str("x".into())], vec![Value::Null]],
        );
        let right = Relation::with_rows(
            Schema::new(vec![Column::new("rk", ColType::Decimal)]),
            vec![vec![Value::Float(2.0)], vec![Value::Float(3.0)]],
        );
        let out = hash_join(
            &Batch::Rel(Arc::new(left)),
            &Batch::Rel(Arc::new(right)),
            &["k".into()],
            &["rk".into()],
            JoinKind::Inner,
        );
        assert_eq!(out.materialize().to_rows(), vec![vec![Value::Int(2), Value::Float(2.0)]]);
    }

    #[test]
    fn string_joins_translate_across_dictionaries() {
        // Left and right dictionaries assign different codes to the same
        // strings; the probe side must translate into build-side codes.
        let left = Relation::with_rows(
            Schema::new(vec![Column::new("s", ColType::Text)]),
            vec![vec![Value::Str("a".into())], vec![Value::Str("b".into())], vec![Value::Str("zzz".into())]],
        );
        let right = Relation::with_rows(
            Schema::new(vec![Column::new("rs", ColType::Text), Column::new("tag", ColType::Integer)]),
            vec![vec![Value::Str("b".into()), Value::Int(1)], vec![Value::Str("a".into()), Value::Int(2)]],
        );
        let out = hash_join(
            &Batch::Rel(Arc::new(left)),
            &Batch::Rel(Arc::new(right)),
            &["s".into()],
            &["rs".into()],
            JoinKind::Inner,
        );
        assert_eq!(
            out.materialize().to_rows(),
            vec![
                vec![Value::Str("a".into()), Value::Str("a".into()), Value::Int(2)],
                vec![Value::Str("b".into()), Value::Str("b".into()), Value::Int(1)],
            ]
        );
    }
}
