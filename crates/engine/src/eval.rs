//! Evaluation of the logical expression language over runtime rows.

use crate::value::Value;
use quarry_etl::{BinOp, CompiledExpr, Expr, Schema, UnOp};
use std::fmt;

/// Runtime evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    UnknownColumn(String),
    Type(String),
    UnknownFunction(String),
    Arity { function: String, expected: usize, found: usize },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::Arity { function, expected, found } => {
                write!(f, "function `{function}` takes {expected} argument(s), found {found}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// SQL-style three-valued truthiness for predicates: NULL is not true.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Evaluates an expression against one row.
pub fn eval(expr: &Expr, schema: &Schema, row: &[Value]) -> Result<Value, EvalError> {
    match expr {
        Expr::Column(name) => {
            let i = schema.index_of(name).ok_or_else(|| EvalError::UnknownColumn(name.clone()))?;
            Ok(row[i].clone())
        }
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Float(v) => Ok(Value::Float(*v)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Null => Ok(Value::Null),
        Expr::Unary(op, e) => {
            let v = eval(e, schema, row)?;
            match (op, v) {
                (_, Value::Null) => Ok(Value::Null),
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (UnOp::Not, other) => Err(EvalError::Type(format!("NOT of non-boolean `{other}`"))),
                (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
                (UnOp::Neg, Value::Float(v)) => Ok(Value::Float(-v)),
                (UnOp::Neg, other) => Err(EvalError::Type(format!("negation of non-numeric `{other}`"))),
            }
        }
        Expr::Binary(op, l, r) => {
            // Short-circuit with SQL NULL semantics for AND/OR.
            if matches!(op, BinOp::And | BinOp::Or) {
                return eval_logical(*op, l, r, schema, row);
            }
            let lv = eval(l, schema, row)?;
            let rv = eval(r, schema, row)?;
            if lv.is_null() || rv.is_null() {
                return Ok(Value::Null);
            }
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, &lv, &rv),
                BinOp::Eq => Ok(Value::Bool(compare(&lv, &rv)? == std::cmp::Ordering::Equal)),
                BinOp::Ne => Ok(Value::Bool(compare(&lv, &rv)? != std::cmp::Ordering::Equal)),
                BinOp::Lt => Ok(Value::Bool(compare(&lv, &rv)? == std::cmp::Ordering::Less)),
                BinOp::Le => Ok(Value::Bool(compare(&lv, &rv)? != std::cmp::Ordering::Greater)),
                BinOp::Gt => Ok(Value::Bool(compare(&lv, &rv)? == std::cmp::Ordering::Greater)),
                BinOp::Ge => Ok(Value::Bool(compare(&lv, &rv)? != std::cmp::Ordering::Less)),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        Expr::Call(name, args) => call(name, args, schema, row),
    }
}

/// Evaluates a pre-compiled expression against one row: column references
/// are positional, so the hot path does no name hashing. Semantics match
/// [`eval`] exactly (same short-circuiting, NULL handling, and errors).
pub fn eval_compiled(expr: &CompiledExpr, row: &[Value]) -> Result<Value, EvalError> {
    match expr {
        CompiledExpr::Col(i) => Ok(row[*i].clone()),
        CompiledExpr::Int(v) => Ok(Value::Int(*v)),
        CompiledExpr::Float(v) => Ok(Value::Float(*v)),
        CompiledExpr::Str(s) => Ok(Value::Str(s.clone())),
        CompiledExpr::Bool(b) => Ok(Value::Bool(*b)),
        CompiledExpr::Null => Ok(Value::Null),
        CompiledExpr::Unary(op, e) => {
            let v = eval_compiled(e, row)?;
            match (op, v) {
                (_, Value::Null) => Ok(Value::Null),
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (UnOp::Not, other) => Err(EvalError::Type(format!("NOT of non-boolean `{other}`"))),
                (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
                (UnOp::Neg, Value::Float(v)) => Ok(Value::Float(-v)),
                (UnOp::Neg, other) => Err(EvalError::Type(format!("negation of non-numeric `{other}`"))),
            }
        }
        CompiledExpr::Binary(op, l, r) => {
            if matches!(op, BinOp::And | BinOp::Or) {
                let lv = eval_compiled(l, row)?;
                match (op, &lv) {
                    (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
                    (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let rv = eval_compiled(r, row)?;
                return combine_logical(*op, &lv, &rv);
            }
            let lv = eval_compiled(l, row)?;
            let rv = eval_compiled(r, row)?;
            if lv.is_null() || rv.is_null() {
                return Ok(Value::Null);
            }
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, &lv, &rv),
                BinOp::Eq => Ok(Value::Bool(compare(&lv, &rv)? == std::cmp::Ordering::Equal)),
                BinOp::Ne => Ok(Value::Bool(compare(&lv, &rv)? != std::cmp::Ordering::Equal)),
                BinOp::Lt => Ok(Value::Bool(compare(&lv, &rv)? == std::cmp::Ordering::Less)),
                BinOp::Le => Ok(Value::Bool(compare(&lv, &rv)? != std::cmp::Ordering::Greater)),
                BinOp::Gt => Ok(Value::Bool(compare(&lv, &rv)? == std::cmp::Ordering::Greater)),
                BinOp::Ge => Ok(Value::Bool(compare(&lv, &rv)? != std::cmp::Ordering::Less)),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        CompiledExpr::Call(name, args) => call_compiled(name, args, row),
    }
}

fn eval_logical(op: BinOp, l: &Expr, r: &Expr, schema: &Schema, row: &[Value]) -> Result<Value, EvalError> {
    let lv = eval(l, schema, row)?;
    match (op, &lv) {
        (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let rv = eval(r, schema, row)?;
    combine_logical(op, &lv, &rv)
}

/// SQL three-valued AND/OR over already-evaluated operands.
pub(crate) fn combine_logical(op: BinOp, lv: &Value, rv: &Value) -> Result<Value, EvalError> {
    let as_bool = |v: &Value| -> Result<Option<bool>, EvalError> {
        match v {
            Value::Bool(b) => Ok(Some(*b)),
            Value::Null => Ok(None),
            other => Err(EvalError::Type(format!("logical op on non-boolean `{other}`"))),
        }
    };
    let (a, b) = (as_bool(lv)?, as_bool(rv)?);
    let out = match op {
        BinOp::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!(),
    };
    Ok(out.map_or(Value::Null, Value::Bool))
}

pub(crate) fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    // Integer arithmetic stays integral except division.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => unreachable!(),
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(EvalError::Type(format!("arithmetic on `{l}` and `{r}`"))),
    };
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        _ => unreachable!(),
    })
}

pub(crate) fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering, EvalError> {
    use Value::*;
    match (l, r) {
        (Int(_) | Float(_), Int(_) | Float(_)) | (Str(_), Str(_)) | (Bool(_), Bool(_)) | (Date(_), Date(_)) => {
            Ok(l.total_cmp(r))
        }
        // Dates compare against their textual literal form, so xRQ slicers
        // like `l_shipdate >= '1995-01-01'` work without a cast syntax.
        (Date(_), Str(s)) => match Value::parse_date(s) {
            Some(d) => Ok(l.total_cmp(&d)),
            None => Err(EvalError::Type(format!("cannot compare date with `{s}`"))),
        },
        (Str(s), Date(_)) => match Value::parse_date(s) {
            Some(d) => Ok(d.total_cmp(r)),
            None => Err(EvalError::Type(format!("cannot compare `{s}` with date"))),
        },
        _ => Err(EvalError::Type(format!("cannot compare `{l}` with `{r}`"))),
    }
}

fn call(name: &str, args: &[Expr], schema: &Schema, row: &[Value]) -> Result<Value, EvalError> {
    let upper = name.to_ascii_uppercase();
    call_scalar(&upper, args.len(), |i| eval(&args[i], schema, row))
}

/// [`call`] over compiled arguments; `upper` was upper-cased at bind time.
fn call_compiled(upper: &str, args: &[CompiledExpr], row: &[Value]) -> Result<Value, EvalError> {
    call_scalar(upper, args.len(), |i| eval_compiled(&args[i], row))
}

/// The single scalar-function evaluator behind both the interpreted and the
/// compiled path (and the scalar fallback of the vectorized kernels).
/// Arguments arrive lazily through `arg` so CONCAT/COALESCE keep their
/// left-to-right evaluation order and COALESCE stays lazy past the first
/// non-NULL hit. `upper` must already be upper-cased.
pub(crate) fn call_scalar(
    upper: &str,
    n_args: usize,
    mut arg: impl FnMut(usize) -> Result<Value, EvalError>,
) -> Result<Value, EvalError> {
    let expect = |n: usize| -> Result<(), EvalError> {
        if n_args == n {
            Ok(())
        } else {
            Err(EvalError::Arity { function: upper.to_string(), expected: n, found: n_args })
        }
    };
    match upper {
        "YEAR" | "MONTH" | "DAY" => {
            expect(1)?;
            let v = arg(0)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let (y, m, d) = v.date_parts().ok_or_else(|| EvalError::Type(format!("{upper} of non-date `{v}`")))?;
            Ok(Value::Int(match upper {
                "YEAR" => y as i64,
                "MONTH" => m as i64,
                _ => d as i64,
            }))
        }
        "ABS" => {
            expect(1)?;
            match arg(0)? {
                Value::Null => Ok(Value::Null),
                Value::Int(v) => Ok(Value::Int(v.abs())),
                Value::Float(v) => Ok(Value::Float(v.abs())),
                other => Err(EvalError::Type(format!("ABS of `{other}`"))),
            }
        }
        "CONCAT" => {
            let mut out = String::new();
            for i in 0..n_args {
                let v = arg(i)?;
                if !v.is_null() {
                    out.push_str(&v.to_string());
                }
            }
            Ok(Value::Str(out))
        }
        "COALESCE" => {
            for i in 0..n_args {
                let v = arg(i)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        other => Err(EvalError::UnknownFunction(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_etl::{parse_expr, ColType, Column};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("price", ColType::Decimal),
            Column::new("qty", ColType::Integer),
            Column::new("name", ColType::Text),
            Column::new("ship", ColType::Date),
            Column::new("maybe", ColType::Decimal),
        ])
    }

    fn row() -> Vec<Value> {
        vec![Value::Float(10.5), Value::Int(3), Value::Str("Spain".into()), Value::date(1995, 6, 17), Value::Null]
    }

    fn run(src: &str) -> Value {
        eval(&parse_expr(src).unwrap(), &schema(), &row()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("price * qty"), Value::Float(31.5));
        assert_eq!(run("qty + 2"), Value::Int(5));
        assert_eq!(run("qty / 2"), Value::Float(1.5));
        assert_eq!(run("qty - 5"), Value::Int(-2));
    }

    #[test]
    fn division_by_zero_yields_null() {
        assert_eq!(run("qty / 0"), Value::Null);
        assert_eq!(run("price / 0.0"), Value::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(run("price > 10"), Value::Bool(true));
        assert_eq!(run("qty = 3"), Value::Bool(true));
        assert_eq!(run("name = 'Spain'"), Value::Bool(true));
        assert_eq!(run("name <> 'France'"), Value::Bool(true));
        assert_eq!(run("qty <= 2"), Value::Bool(false));
    }

    #[test]
    fn date_string_comparison() {
        assert_eq!(run("ship >= '1995-01-01'"), Value::Bool(true));
        assert_eq!(run("ship < '1995-01-01'"), Value::Bool(false));
        assert_eq!(run("YEAR(ship)"), Value::Int(1995));
        assert_eq!(run("MONTH(ship)"), Value::Int(6));
        assert_eq!(run("DAY(ship)"), Value::Int(17));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(run("maybe + 1"), Value::Null);
        assert_eq!(run("maybe = maybe"), Value::Null, "NULL = NULL is NULL");
        assert!(!truthy(&run("maybe > 0")));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(run("maybe > 0 OR price > 0"), Value::Bool(true));
        assert_eq!(run("maybe > 0 AND price > 0"), Value::Null);
        assert_eq!(run("maybe > 0 AND price < 0"), Value::Bool(false));
        assert_eq!(run("NOT (maybe > 0)"), Value::Null);
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // false AND <error> must not evaluate the rhs.
        let e = parse_expr("qty < 0 AND MYSTERY(qty) = 1").unwrap();
        assert_eq!(eval(&e, &schema(), &row()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn functions() {
        assert_eq!(run("ABS(0 - qty)"), Value::Int(3));
        assert_eq!(run("CONCAT(name, '!')"), Value::Str("Spain!".into()));
        assert_eq!(run("COALESCE(maybe, price)"), Value::Float(10.5));
        assert_eq!(run("CONCAT(maybe, name)"), Value::Str("Spain".into()), "NULL contributes nothing");
    }

    #[test]
    fn error_cases() {
        let s = schema();
        let r = row();
        assert!(matches!(eval(&parse_expr("ghost + 1").unwrap(), &s, &r), Err(EvalError::UnknownColumn(_))));
        assert!(matches!(eval(&parse_expr("name + 1").unwrap(), &s, &r), Err(EvalError::Type(_))));
        assert!(matches!(eval(&parse_expr("MYSTERY(1)").unwrap(), &s, &r), Err(EvalError::UnknownFunction(_))));
        assert!(matches!(eval(&parse_expr("YEAR(ship, ship)").unwrap(), &s, &r), Err(EvalError::Arity { .. })));
        assert!(matches!(eval(&parse_expr("YEAR(qty)").unwrap(), &s, &r), Err(EvalError::Type(_))));
    }

    #[test]
    fn not_of_boolean() {
        assert_eq!(run("NOT (qty = 3)"), Value::Bool(false));
    }

    #[test]
    fn compiled_eval_matches_interpreted() {
        for src in [
            "price * qty",
            "qty + 2",
            "qty / 0",
            "price > 10 AND qty <= 3",
            "maybe > 0 OR price > 0",
            "maybe > 0 AND price > 0",
            "NOT (maybe > 0)",
            "ship >= '1995-01-01'",
            "YEAR(ship) - 1900",
            "ABS(0 - qty)",
            "concat(name, '!')",
            "COALESCE(maybe, price)",
            "maybe = maybe",
            "-qty",
        ] {
            let e = parse_expr(src).unwrap();
            let c = quarry_etl::CompiledExpr::compile(&e, &schema()).unwrap();
            assert_eq!(
                eval_compiled(&c, &row()),
                eval(&e, &schema(), &row()),
                "compiled and interpreted eval disagree on `{src}`"
            );
        }
    }

    #[test]
    fn compiled_short_circuit_skips_rhs_errors() {
        let e = parse_expr("qty < 0 AND MYSTERY(qty) = 1").unwrap();
        let c = quarry_etl::CompiledExpr::compile(&e, &schema()).unwrap();
        assert_eq!(eval_compiled(&c, &row()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn compiled_runtime_errors_match_interpreted() {
        for src in ["name + 1", "MYSTERY(1)", "YEAR(ship, ship)", "YEAR(qty)"] {
            let e = parse_expr(src).unwrap();
            let c = quarry_etl::CompiledExpr::compile(&e, &schema()).unwrap();
            assert_eq!(eval_compiled(&c, &row()), eval(&e, &schema(), &row()), "error mismatch on `{src}`");
        }
    }
}
