//! A tiny scoped-thread worker pool with a global helper-thread budget.
//!
//! Both layers of the executor's parallelism run through [`run_indexed`]:
//! the level scheduler fans out independent operators, and each operator
//! fans out its own morsels. The two layers compose without oversubscribing
//! because helper threads come from one process-wide budget of
//! `threads() - 1` tokens: a region that finds the budget empty simply runs
//! its jobs inline on the calling thread. Nothing ever blocks waiting for a
//! token, so nesting cannot deadlock, and the total number of live worker
//! threads never exceeds `threads()`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Explicit thread-count override; 0 means "not set".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Helper threads currently checked out of the budget.
static IN_USE: AtomicUsize = AtomicUsize::new(0);

// Lifetime instrumentation counters (process-wide, monotonic). Three relaxed
// adds per [`run_indexed`] region — cheap enough to stay always-on, so the
// observability layer can snapshot pool behaviour without any hook wiring.
static REGIONS: AtomicU64 = AtomicU64::new(0);
static JOBS: AtomicU64 = AtomicU64::new(0);
static HELPERS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the pool's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `run_indexed` regions entered.
    pub regions: u64,
    /// Total jobs executed across all regions.
    pub jobs: u64,
    /// Helper threads spawned (a region that finds the budget empty spawns
    /// none and runs inline).
    pub helpers_spawned: u64,
}

/// Lifetime pool counters since process start.
pub fn stats() -> PoolStats {
    PoolStats {
        regions: REGIONS.load(Ordering::Relaxed),
        jobs: JOBS.load(Ordering::Relaxed),
        helpers_spawned: HELPERS_SPAWNED.load(Ordering::Relaxed),
    }
}

/// The target degree of parallelism: the configured override if set (see
/// [`set_threads`]), else the `QUARRY_THREADS` environment variable, else
/// the machine's available parallelism. Always at least 1.
pub fn threads() -> usize {
    let configured = CONFIGURED.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("QUARRY_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Pins the degree of parallelism for every subsequent run (process-wide).
/// `set_threads(1)` makes the whole executor run inline; benchmark scaling
/// series sweep this. `set_threads(0)` restores auto-detection.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// Takes up to `want` helper tokens from the budget without blocking.
fn acquire(want: usize) -> usize {
    let cap = threads().saturating_sub(1);
    loop {
        let used = IN_USE.load(Ordering::Relaxed);
        let take = want.min(cap.saturating_sub(used));
        if take == 0 {
            return 0;
        }
        if IN_USE.compare_exchange(used, used + take, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
            return take;
        }
    }
}

fn release(n: usize) {
    if n > 0 {
        IN_USE.fetch_sub(n, Ordering::Relaxed);
    }
}

/// Runs `jobs` independent jobs `f(0) .. f(jobs - 1)` and returns their
/// results in index order. Work is claimed from a shared counter, so cheap
/// and expensive jobs balance across however many helper threads the budget
/// grants (possibly zero, in which case everything runs inline).
pub fn run_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    REGIONS.fetch_add(1, Ordering::Relaxed);
    JOBS.fetch_add(jobs as u64, Ordering::Relaxed);
    let helpers = acquire(jobs - 1);
    if helpers == 0 {
        return (0..jobs).map(f).collect();
    }
    HELPERS_SPAWNED.fetch_add(helpers as u64, Ordering::Relaxed);
    let next = AtomicUsize::new(0);
    let run_worker = || {
        let mut done: Vec<(usize, T)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs {
                break;
            }
            done.push((i, f(i)));
        }
        done
    };
    let mut all: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..helpers).map(|_| s.spawn(run_worker)).collect();
        let mut all = run_worker();
        for h in handles {
            all.extend(h.join().expect("pool workers do not panic"));
        }
        all
    });
    release(helpers);
    all.sort_unstable_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_regions_and_jobs() {
        let before = stats();
        run_indexed(10, |i| i);
        run_indexed(0, |i| i); // empty regions are not counted
        let after = stats();
        assert_eq!(after.regions, before.regions + 1);
        assert_eq!(after.jobs, before.jobs + 10);
        assert!(after.helpers_spawned >= before.helpers_spawned);
    }

    #[test]
    fn zero_and_one_job_run_inline() {
        assert_eq!(run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn nested_regions_share_the_budget() {
        // Inner regions may get zero helpers but must still complete and
        // preserve ordering.
        let out = run_indexed(8, |i| run_indexed(8, move |j| i * 8 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..8).map(|j| i * 8 + j).collect::<Vec<_>>());
        }
        assert_eq!(IN_USE.load(Ordering::Relaxed), 0, "all tokens returned");
    }

    #[test]
    fn spawned_threads_stay_within_budget() {
        let budget = threads();
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        run_indexed(64, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= budget,
            "{} workers exceeded budget {budget}",
            peak.load(Ordering::SeqCst)
        );
    }
}
