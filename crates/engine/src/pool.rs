//! A tiny scoped-thread worker pool with a global helper-thread budget.
//!
//! Both layers of the executor's parallelism run through [`run_indexed`]:
//! the level scheduler fans out independent operators, and each operator
//! fans out its own morsels. The two layers compose without oversubscribing
//! because helper threads come from one process-wide budget of
//! `threads() - 1` tokens: a region that finds the budget empty simply runs
//! its jobs inline on the calling thread. Nothing ever blocks waiting for a
//! token, so nesting cannot deadlock, and the total number of live worker
//! threads never exceeds `threads()`.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Explicit thread-count override; 0 means "not set".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Helper threads currently checked out of the budget.
static IN_USE: AtomicUsize = AtomicUsize::new(0);

// Lifetime instrumentation counters (process-wide, monotonic). Three relaxed
// adds per [`run_indexed`] region — cheap enough to stay always-on, so the
// observability layer can snapshot pool behaviour without any hook wiring.
static REGIONS: AtomicU64 = AtomicU64::new(0);
static JOBS: AtomicU64 = AtomicU64::new(0);
static HELPERS_SPAWNED: AtomicU64 = AtomicU64::new(0);

// Live-state gauges (process-wide, instantaneous). Scraped by the live
// `/metrics` endpoint mid-run, so they move up *and* down: queued jobs not
// yet claimed, workers currently executing a job, and jobs claimed but not
// yet finished (morsels in flight).
static QUEUE_DEPTH: AtomicI64 = AtomicI64::new(0);
static ACTIVE_WORKERS: AtomicI64 = AtomicI64::new(0);
static IN_FLIGHT: AtomicI64 = AtomicI64::new(0);

thread_local! {
    /// This thread's lane within the innermost active [`run_indexed`] region:
    /// 0 for a caller running inline, `h` for helper `h` (1-based). Nested
    /// regions that get no helpers keep the enclosing slot, so per-operator
    /// timings attribute to the lane that really ran them.
    static WORKER_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// The pool lane the current thread occupies (0 = the calling thread).
/// Meaningful while inside a [`run_indexed`] job; 0 otherwise.
pub fn worker_slot() -> usize {
    WORKER_SLOT.with(|s| s.get())
}

/// A snapshot of the pool's live gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolGauges {
    /// Jobs queued in open regions and not yet claimed by any worker.
    pub queue_depth: i64,
    /// Worker threads (helpers + inline callers) currently inside a job.
    pub active_workers: i64,
    /// Jobs claimed but not yet completed (morsels in flight).
    pub in_flight: i64,
}

/// Instantaneous pool gauges (see [`PoolGauges`]).
pub fn gauges() -> PoolGauges {
    PoolGauges {
        queue_depth: QUEUE_DEPTH.load(Ordering::Relaxed),
        active_workers: ACTIVE_WORKERS.load(Ordering::Relaxed),
        in_flight: IN_FLIGHT.load(Ordering::Relaxed),
    }
}

/// A snapshot of the pool's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `run_indexed` regions entered.
    pub regions: u64,
    /// Total jobs executed across all regions.
    pub jobs: u64,
    /// Helper threads spawned (a region that finds the budget empty spawns
    /// none and runs inline).
    pub helpers_spawned: u64,
}

/// Lifetime pool counters since process start.
pub fn stats() -> PoolStats {
    PoolStats {
        regions: REGIONS.load(Ordering::Relaxed),
        jobs: JOBS.load(Ordering::Relaxed),
        helpers_spawned: HELPERS_SPAWNED.load(Ordering::Relaxed),
    }
}

/// The target degree of parallelism: the configured override if set (see
/// [`set_threads`]), else the `QUARRY_THREADS` environment variable, else
/// the machine's available parallelism. Always at least 1.
pub fn threads() -> usize {
    let configured = CONFIGURED.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("QUARRY_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Pins the degree of parallelism for every subsequent run (process-wide).
/// `set_threads(1)` makes the whole executor run inline; benchmark scaling
/// series sweep this. `set_threads(0)` restores auto-detection.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// Takes up to `want` helper tokens from the budget without blocking.
fn acquire(want: usize) -> usize {
    let cap = threads().saturating_sub(1);
    loop {
        let used = IN_USE.load(Ordering::Relaxed);
        let take = want.min(cap.saturating_sub(used));
        if take == 0 {
            return 0;
        }
        if IN_USE.compare_exchange(used, used + take, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
            return take;
        }
    }
}

fn release(n: usize) {
    if n > 0 {
        IN_USE.fetch_sub(n, Ordering::Relaxed);
    }
}

/// Runs `jobs` independent jobs `f(0) .. f(jobs - 1)` and returns their
/// results in index order. Work is claimed from a shared counter, so cheap
/// and expensive jobs balance across however many helper threads the budget
/// grants (possibly zero, in which case everything runs inline).
pub fn run_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    REGIONS.fetch_add(1, Ordering::Relaxed);
    JOBS.fetch_add(jobs as u64, Ordering::Relaxed);
    let depth = QUEUE_DEPTH.fetch_add(jobs as i64, Ordering::Relaxed) + jobs as i64;
    // One event per region transition (open/close), never per job.
    crate::events::emit(crate::events::EngineEvent::QueueDepth { depth, jobs: jobs as u64 });
    let helpers = acquire(jobs - 1);
    if helpers == 0 {
        ACTIVE_WORKERS.fetch_add(1, Ordering::Relaxed);
        let out = (0..jobs)
            .map(|i| {
                QUEUE_DEPTH.fetch_sub(1, Ordering::Relaxed);
                IN_FLIGHT.fetch_add(1, Ordering::Relaxed);
                let v = f(i);
                IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
                v
            })
            .collect();
        ACTIVE_WORKERS.fetch_sub(1, Ordering::Relaxed);
        crate::events::emit(crate::events::EngineEvent::QueueDepth {
            depth: QUEUE_DEPTH.load(Ordering::Relaxed),
            jobs: 0,
        });
        return out;
    }
    HELPERS_SPAWNED.fetch_add(helpers as u64, Ordering::Relaxed);
    let next = AtomicUsize::new(0);
    // `slot` is the worker's lane for span attribution: helpers take 1-based
    // lanes, the caller (slot 0 here) keeps whatever lane it already holds so
    // nested regions attribute to the outer lane that really ran them.
    let run_worker = |slot: usize| {
        let prev_slot = WORKER_SLOT.with(|s| if slot == 0 { s.get() } else { s.replace(slot) });
        ACTIVE_WORKERS.fetch_add(1, Ordering::Relaxed);
        let mut done: Vec<(usize, T)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs {
                break;
            }
            QUEUE_DEPTH.fetch_sub(1, Ordering::Relaxed);
            IN_FLIGHT.fetch_add(1, Ordering::Relaxed);
            done.push((i, f(i)));
            IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
        }
        ACTIVE_WORKERS.fetch_sub(1, Ordering::Relaxed);
        WORKER_SLOT.with(|s| s.set(prev_slot));
        done
    };
    let mut all: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..helpers).map(|h| s.spawn(move || run_worker(h + 1))).collect();
        let mut all = run_worker(0);
        for h in handles {
            all.extend(h.join().expect("pool workers do not panic"));
        }
        all
    });
    release(helpers);
    crate::events::emit(crate::events::EngineEvent::QueueDepth { depth: QUEUE_DEPTH.load(Ordering::Relaxed), jobs: 0 });
    all.sort_unstable_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_regions_and_jobs() {
        let before = stats();
        run_indexed(10, |i| i);
        run_indexed(0, |i| i); // empty regions are not counted
        let after = stats();
        assert_eq!(after.regions, before.regions + 1);
        assert_eq!(after.jobs, before.jobs + 10);
        assert!(after.helpers_spawned >= before.helpers_spawned);
    }

    #[test]
    fn zero_and_one_job_run_inline() {
        assert_eq!(run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn nested_regions_share_the_budget() {
        // Inner regions may get zero helpers but must still complete and
        // preserve ordering.
        let out = run_indexed(8, |i| run_indexed(8, move |j| i * 8 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..8).map(|j| i * 8 + j).collect::<Vec<_>>());
        }
        assert_eq!(IN_USE.load(Ordering::Relaxed), 0, "all tokens returned");
    }

    #[test]
    fn gauges_return_to_zero_after_a_region() {
        run_indexed(32, |i| i * 2);
        // Other tests in this process may have regions open concurrently, so
        // wait for the gauges to settle rather than asserting an instant zero.
        let mut last = gauges();
        for _ in 0..10_000 {
            last = gauges();
            if last == (PoolGauges { queue_depth: 0, active_workers: 0, in_flight: 0 }) {
                return;
            }
            std::thread::yield_now();
        }
        panic!("gauges did not settle to zero: {last:?}");
    }

    #[test]
    fn gauges_move_while_jobs_run() {
        let peak_in_flight = AtomicU64::new(0);
        run_indexed(64, |_| {
            let g = gauges();
            assert!(g.in_flight >= 1, "the running job itself is in flight");
            assert!(g.active_workers >= 1);
            peak_in_flight.fetch_max(g.in_flight as u64, Ordering::Relaxed);
        });
        assert!(peak_in_flight.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn worker_slots_stay_within_the_lane_count_and_reset() {
        assert_eq!(worker_slot(), 0, "caller thread starts on lane 0");
        let budget = threads();
        let slots = run_indexed(64, |_| {
            std::thread::yield_now();
            worker_slot()
        });
        for slot in &slots {
            assert!(*slot < budget.max(1), "slot {slot} exceeds lane count {budget}");
        }
        assert_eq!(worker_slot(), 0, "caller lane restored after the region");
        // Nested regions that run inline keep the enclosing lane.
        let nested = run_indexed(4, |_| {
            let outer = worker_slot();
            let inner = run_indexed(2, |_| worker_slot());
            (outer, inner)
        });
        for (outer, inner) in nested {
            for lane in inner {
                assert!(lane == outer || lane > 0, "inline nested jobs keep lane {outer}, got {lane}");
            }
        }
    }

    #[test]
    fn spawned_threads_stay_within_budget() {
        let budget = threads();
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        run_indexed(64, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= budget,
            "{} workers exceeded budget {budget}",
            peak.load(Ordering::SeqCst)
        );
    }
}
