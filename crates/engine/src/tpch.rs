//! A deterministic TPC-H-shaped data generator.
//!
//! The demo's running example analyzes TPC-H sources (paper Figure 2 shows
//! the TPC-H ontology; Figures 3–4 use Partsupp/Orders/Lineitem flows). We
//! do not assume the official `dbgen` binary; this module synthesizes the
//! eight tables with the standard relative cardinalities (lineitem ≈ 6M·SF,
//! orders ≈ 1.5M·SF, …), seeded and reproducible.
//!
//! One deliberate deviation, documented in DESIGN.md: the nation list
//! includes **Spain** (the paper's Figure 4 slicer is
//! `Nation.n_name = 'Spain'`, which official TPC-H data could never match).

use crate::catalog::Catalog;
use crate::relation::Relation;
use crate::value::Value;
use quarry_etl::{ColType, Column, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 5 regions.
pub const REGIONS: [&str; 5] = ["Africa", "America", "Asia", "Europe", "Middle East"];

/// The 25 nations with their region index. Spain replaces one of the
/// official entries so the paper's slicer selects real rows.
pub const NATIONS: [(&str, usize); 25] = [
    ("Algeria", 0),
    ("Argentina", 1),
    ("Brazil", 1),
    ("Canada", 1),
    ("Egypt", 4),
    ("Ethiopia", 0),
    ("France", 3),
    ("Germany", 3),
    ("India", 2),
    ("Indonesia", 2),
    ("Iran", 4),
    ("Iraq", 4),
    ("Japan", 2),
    ("Jordan", 4),
    ("Kenya", 0),
    ("Morocco", 0),
    ("Mozambique", 0),
    ("Peru", 1),
    ("China", 2),
    ("Romania", 3),
    ("Saudi Arabia", 4),
    ("Spain", 3),
    ("Russia", 3),
    ("United Kingdom", 3),
    ("United States", 1),
];

/// Base row counts at SF = 1, in TPC-H proportions.
const SUPPLIER_BASE: f64 = 10_000.0;
const PART_BASE: f64 = 200_000.0;
const CUSTOMER_BASE: f64 = 150_000.0;
const ORDERS_BASE: f64 = 1_500_000.0;

/// Row counts for a scale factor: (supplier, part, partsupp, customer,
/// orders; lineitem is 1–7 per order).
pub fn row_counts(sf: f64) -> (usize, usize, usize, usize, usize) {
    let n = |base: f64| ((base * sf).round() as usize).max(1);
    let supplier = n(SUPPLIER_BASE);
    let part = n(PART_BASE);
    (supplier, part, part * 4, n(CUSTOMER_BASE), n(ORDERS_BASE))
}

fn cols(defs: &[(&str, ColType)]) -> Schema {
    Schema::new(defs.iter().map(|(n, t)| Column::new(*n, *t)).collect())
}

/// The physical schema of a TPC-H source table (includes FK columns that the
/// ontology models as associations rather than properties).
pub fn table_schema(table: &str) -> Option<Schema> {
    Some(match table {
        "region" => cols(&[("r_regionkey", ColType::Integer), ("r_name", ColType::Text), ("r_comment", ColType::Text)]),
        "nation" => cols(&[
            ("n_nationkey", ColType::Integer),
            ("n_name", ColType::Text),
            ("n_regionkey", ColType::Integer),
            ("n_comment", ColType::Text),
        ]),
        "supplier" => cols(&[
            ("s_suppkey", ColType::Integer),
            ("s_name", ColType::Text),
            ("s_address", ColType::Text),
            ("s_nationkey", ColType::Integer),
            ("s_phone", ColType::Text),
            ("s_acctbal", ColType::Decimal),
            ("s_comment", ColType::Text),
        ]),
        "customer" => cols(&[
            ("c_custkey", ColType::Integer),
            ("c_name", ColType::Text),
            ("c_address", ColType::Text),
            ("c_nationkey", ColType::Integer),
            ("c_phone", ColType::Text),
            ("c_acctbal", ColType::Decimal),
            ("c_mktsegment", ColType::Text),
            ("c_comment", ColType::Text),
        ]),
        "part" => cols(&[
            ("p_partkey", ColType::Integer),
            ("p_name", ColType::Text),
            ("p_mfgr", ColType::Text),
            ("p_brand", ColType::Text),
            ("p_type", ColType::Text),
            ("p_size", ColType::Integer),
            ("p_container", ColType::Text),
            ("p_retailprice", ColType::Decimal),
            ("p_comment", ColType::Text),
        ]),
        "partsupp" => cols(&[
            ("ps_partkey", ColType::Integer),
            ("ps_suppkey", ColType::Integer),
            ("ps_availqty", ColType::Integer),
            ("ps_supplycost", ColType::Decimal),
            ("ps_comment", ColType::Text),
        ]),
        "orders" => cols(&[
            ("o_orderkey", ColType::Integer),
            ("o_custkey", ColType::Integer),
            ("o_orderstatus", ColType::Text),
            ("o_totalprice", ColType::Decimal),
            ("o_orderdate", ColType::Date),
            ("o_orderpriority", ColType::Text),
            ("o_clerk", ColType::Text),
            ("o_shippriority", ColType::Integer),
            ("o_comment", ColType::Text),
        ]),
        "lineitem" => cols(&[
            ("l_orderkey", ColType::Integer),
            ("l_partkey", ColType::Integer),
            ("l_suppkey", ColType::Integer),
            ("l_linenumber", ColType::Integer),
            ("l_quantity", ColType::Decimal),
            ("l_extendedprice", ColType::Decimal),
            ("l_discount", ColType::Decimal),
            ("l_tax", ColType::Decimal),
            ("l_returnflag", ColType::Text),
            ("l_linestatus", ColType::Text),
            ("l_shipdate", ColType::Date),
            ("l_commitdate", ColType::Date),
            ("l_receiptdate", ColType::Date),
            ("l_shipinstruct", ColType::Text),
            ("l_shipmode", ColType::Text),
            ("l_comment", ColType::Text),
        ]),
        _ => return None,
    })
}

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const CONTAINERS: [&str; 8] = ["BAG", "BOX", "CAN", "CASE", "DRUM", "JAR", "PACK", "PKG"];
const TYPES: [&str; 6] = ["ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED", "ECONOMY"];

/// Generates all eight tables at a scale factor. Deterministic for a given
/// `(sf, seed)` pair.
pub fn generate(sf: f64, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let (n_supplier, n_part, n_partsupp, n_customer, n_orders) = row_counts(sf);
    let mut catalog = Catalog::new();

    // region
    let region_rows = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| vec![Value::Int(i as i64), Value::Str((*name).into()), Value::Str(format!("region {name}"))])
        .collect();
    catalog.put("region", Relation::with_rows(table_schema("region").expect("known table"), region_rows));

    // nation
    let nation_rows = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Value::Int(i as i64),
                Value::Str((*name).into()),
                Value::Int(*region as i64),
                Value::Str(format!("nation {name}")),
            ]
        })
        .collect();
    catalog.put("nation", Relation::with_rows(table_schema("nation").expect("known table"), nation_rows));

    // supplier
    let supplier_rows = (0..n_supplier)
        .map(|i| {
            let nation = rng.gen_range(0..NATIONS.len()) as i64;
            vec![
                Value::Int(i as i64 + 1),
                Value::Str(format!("Supplier#{:09}", i + 1)),
                Value::Str(format!("addr s{}", i + 1)),
                Value::Int(nation),
                Value::Str(format!(
                    "{:02}-{:03}-{:03}-{:04}",
                    10 + nation,
                    i % 1000,
                    (i * 7) % 1000,
                    (i * 13) % 10_000
                )),
                Value::Float((rng.gen_range(-99_999..999_999) as f64) / 100.0),
                Value::Str("supplier comment".into()),
            ]
        })
        .collect();
    catalog.put("supplier", Relation::with_rows(table_schema("supplier").expect("known table"), supplier_rows));

    // part
    let part_rows = (0..n_part)
        .map(|i| {
            let mfgr = rng.gen_range(1..=5);
            let brand = mfgr * 10 + rng.gen_range(1..=5);
            vec![
                Value::Int(i as i64 + 1),
                Value::Str(format!("Part#{:09}", i + 1)),
                Value::Str(format!("Manufacturer#{mfgr}")),
                Value::Str(format!("Brand#{brand}")),
                Value::Str(TYPES[rng.gen_range(0..TYPES.len())].into()),
                Value::Int(rng.gen_range(1..=50)),
                Value::Str(CONTAINERS[rng.gen_range(0..CONTAINERS.len())].into()),
                Value::Float(900.0 + ((i % 1000) as f64) / 10.0 + (i / 1000) as f64),
                Value::Str("part comment".into()),
            ]
        })
        .collect();
    catalog.put("part", Relation::with_rows(table_schema("part").expect("known table"), part_rows));

    // partsupp: 4 suppliers per part, TPC-H's modular spread.
    let mut partsupp_rows = Vec::with_capacity(n_partsupp);
    for p in 0..n_part {
        for s in 0..4usize {
            let suppkey = ((p + s * (n_supplier / 4 + 1)) % n_supplier) as i64 + 1;
            partsupp_rows.push(vec![
                Value::Int(p as i64 + 1),
                Value::Int(suppkey),
                Value::Int(rng.gen_range(1..10_000)),
                Value::Float((rng.gen_range(100..100_000) as f64) / 100.0),
                Value::Str("partsupp comment".into()),
            ]);
        }
    }
    catalog.put("partsupp", Relation::with_rows(table_schema("partsupp").expect("known table"), partsupp_rows));

    // customer
    let customer_rows = (0..n_customer)
        .map(|i| {
            let nation = rng.gen_range(0..NATIONS.len()) as i64;
            vec![
                Value::Int(i as i64 + 1),
                Value::Str(format!("Customer#{:09}", i + 1)),
                Value::Str(format!("addr c{}", i + 1)),
                Value::Int(nation),
                Value::Str(format!(
                    "{:02}-{:03}-{:03}-{:04}",
                    10 + nation,
                    i % 1000,
                    (i * 3) % 1000,
                    (i * 11) % 10_000
                )),
                Value::Float((rng.gen_range(-99_999..999_999) as f64) / 100.0),
                Value::Str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].into()),
                Value::Str("customer comment".into()),
            ]
        })
        .collect();
    catalog.put("customer", Relation::with_rows(table_schema("customer").expect("known table"), customer_rows));

    // orders + lineitem
    let epoch_lo = date_days(1992, 1, 1);
    let epoch_hi = date_days(1998, 8, 2);
    let mut orders_rows = Vec::with_capacity(n_orders);
    let mut lineitem_rows = Vec::new();
    for o in 0..n_orders {
        let orderkey = o as i64 + 1;
        let custkey = rng.gen_range(0..n_customer) as i64 + 1;
        let orderdate = rng.gen_range(epoch_lo..=epoch_hi);
        let lines = rng.gen_range(1..=7usize);
        let mut total = 0.0;
        for ln in 0..lines {
            let partkey = rng.gen_range(0..n_part) as i64 + 1;
            // Pick one of the part's four suppliers so the FK into partsupp
            // holds (composite key l_partkey, l_suppkey exists there).
            let s = rng.gen_range(0..4usize);
            let suppkey = (((partkey - 1) as usize + s * (n_supplier / 4 + 1)) % n_supplier) as i64 + 1;
            let quantity = rng.gen_range(1..=50) as f64;
            let retail = 900.0 + (((partkey - 1) % 1000) as f64) / 10.0 + ((partkey - 1) / 1000) as f64;
            let extended = quantity * retail;
            let discount = (rng.gen_range(0..=10) as f64) / 100.0;
            let tax = (rng.gen_range(0..=8) as f64) / 100.0;
            let shipdate = orderdate + rng.gen_range(1..=121);
            total += extended * (1.0 - discount) * (1.0 + tax);
            lineitem_rows.push(vec![
                Value::Int(orderkey),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(ln as i64 + 1),
                Value::Float(quantity),
                Value::Float(extended),
                Value::Float(discount),
                Value::Float(tax),
                Value::Str(if shipdate < epoch_hi - 90 { "R" } else { "N" }.into()),
                Value::Str(if shipdate < epoch_hi - 90 { "F" } else { "O" }.into()),
                Value::Date(shipdate),
                Value::Date(shipdate + rng.gen_range(-30..30)),
                Value::Date(shipdate + rng.gen_range(1..30)),
                Value::Str("DELIVER IN PERSON".into()),
                Value::Str(MODES[rng.gen_range(0..MODES.len())].into()),
                Value::Str("lineitem comment".into()),
            ]);
        }
        orders_rows.push(vec![
            Value::Int(orderkey),
            Value::Int(custkey),
            Value::Str(if orderdate < epoch_hi - 200 { "F" } else { "O" }.into()),
            Value::Float((total * 100.0).round() / 100.0),
            Value::Date(orderdate),
            Value::Str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].into()),
            Value::Str(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
            Value::Int(0),
            Value::Str("order comment".into()),
        ]);
    }
    catalog.put("orders", Relation::with_rows(table_schema("orders").expect("known table"), orders_rows));
    catalog.put("lineitem", Relation::with_rows(table_schema("lineitem").expect("known table"), lineitem_rows));

    catalog
}

fn date_days(y: i32, m: u32, d: u32) -> i32 {
    match Value::date(y, m, d) {
        Value::Date(v) => v,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_follow_tpch_proportions() {
        let c = generate(0.001, 42);
        assert_eq!(c.get("region").unwrap().len(), 5);
        assert_eq!(c.get("nation").unwrap().len(), 25);
        assert_eq!(c.get("supplier").unwrap().len(), 10);
        assert_eq!(c.get("part").unwrap().len(), 200);
        assert_eq!(c.get("partsupp").unwrap().len(), 800);
        assert_eq!(c.get("customer").unwrap().len(), 150);
        assert_eq!(c.get("orders").unwrap().len(), 1500);
        let li = c.get("lineitem").unwrap().len();
        assert!((1500..=1500 * 7).contains(&li), "lineitem count {li}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        assert_eq!(a.get("lineitem").unwrap(), b.get("lineitem").unwrap());
        let c = generate(0.001, 8);
        assert_ne!(a.get("lineitem").unwrap(), c.get("lineitem").unwrap());
    }

    #[test]
    fn spain_exists_for_the_paper_slicer() {
        let c = generate(0.001, 42);
        let nation = c.get("nation").unwrap();
        assert!(nation.column_values("n_name").contains(&Value::Str("Spain".into())));
    }

    #[test]
    fn foreign_keys_resolve() {
        let c = generate(0.001, 42);
        let nation_keys: std::collections::HashSet<_> =
            c.get("nation").unwrap().column_values("n_nationkey").into_iter().collect();
        for col in c.get("customer").unwrap().column_values("c_nationkey") {
            assert!(nation_keys.contains(&col));
        }
        let supp_keys: std::collections::HashSet<_> =
            c.get("supplier").unwrap().column_values("s_suppkey").into_iter().collect();
        for v in c.get("lineitem").unwrap().column_values("l_suppkey") {
            assert!(supp_keys.contains(&v));
        }
        // Composite FK into partsupp.
        let ps = c.get("partsupp").unwrap();
        let (pi, si) = (ps.col("ps_partkey"), ps.col("ps_suppkey"));
        let ps_keys: std::collections::HashSet<(Value, Value)> =
            ps.iter_rows().map(|r| (r[pi].clone(), r[si].clone())).collect();
        let li = c.get("lineitem").unwrap();
        let (lpi, lsi) = (li.col("l_partkey"), li.col("l_suppkey"));
        for r in li.iter_rows() {
            assert!(ps_keys.contains(&(r[lpi].clone(), r[lsi].clone())), "lineitem (part,supp) must exist in partsupp");
        }
    }

    #[test]
    fn schemas_match_generated_rows() {
        let c = generate(0.001, 42);
        for t in ["region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"] {
            let rel = c.get(t).unwrap();
            let schema = table_schema(t).unwrap();
            assert_eq!(rel.schema, schema, "{t}");
            for row in rel.iter_rows().take(5) {
                assert_eq!(row.len(), schema.len(), "{t} row width");
            }
        }
        assert!(table_schema("bogus").is_none());
    }

    #[test]
    fn dates_are_in_range() {
        let c = generate(0.001, 42);
        let li = c.get("lineitem").unwrap();
        for v in li.column_values("l_shipdate") {
            let (y, _, _) = v.date_parts().expect("ship dates are dates");
            assert!((1992..=1999).contains(&y), "{v}");
        }
    }

    #[test]
    fn discounts_bounded() {
        let c = generate(0.001, 42);
        for v in c.get("lineitem").unwrap().column_values("l_discount") {
            let f = v.as_f64().unwrap();
            assert!((0.0..=0.10).contains(&f));
        }
    }
}
