//! Always-on engine execution statistics.
//!
//! Like [`crate::pool::gauges`], these are plain relaxed atomics the engine
//! updates unconditionally — the engine keeps zero dependency on the obs
//! crate, and `quarry-core` snapshots them into every metrics collection via
//! a registered collector. Two families live here:
//!
//! - kernel counters: how many expression-kernel invocations took a typed
//!   vectorized path versus the row-at-a-time scalar fallback, so a change
//!   that silently knocks a hot expression off the fast path shows up in
//!   `quarry-cli metrics` as a `engine.kernel.scalar_fallback` jump;
//! - join radix statistics: per-join partition counts (count/sum/min/max
//!   plus a log2 histogram), exported as the
//!   `engine.join.radix_partitions` histogram.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static KERNEL_VECTORIZED: AtomicU64 = AtomicU64::new(0);
static KERNEL_SCALAR_FALLBACK: AtomicU64 = AtomicU64::new(0);

static JOINS: AtomicU64 = AtomicU64::new(0);
static PARTITIONS_SUM: AtomicU64 = AtomicU64::new(0);
static PARTITIONS_MIN: AtomicU64 = AtomicU64::new(u64::MAX);
static PARTITIONS_MAX: AtomicU64 = AtomicU64::new(0);
/// One bucket per log2(partition count); partition counts are powers of two
/// between 1 and [`crate::MAX_RADIX_PARTITIONS`], so 11 buckets cover any
/// count up to 1024 with room to spare.
const LOG2_BUCKETS: usize = 11;
static PARTITIONS_BY_LOG2: [AtomicU64; LOG2_BUCKETS] = [const { AtomicU64::new(0) }; LOG2_BUCKETS];

/// One expression kernel invocation took a typed vectorized path.
pub(crate) fn count_vectorized() {
    KERNEL_VECTORIZED.fetch_add(1, Relaxed);
}

/// One expression kernel invocation dropped to row-at-a-time evaluation.
/// Also emits a [`crate::events::EngineEvent::KernelFallback`] — fallbacks
/// are per-kernel-invocation (not per-row), and the slow path they announce
/// dwarfs the hook call.
pub(crate) fn count_scalar_fallback() {
    let total = KERNEL_SCALAR_FALLBACK.fetch_add(1, Relaxed) + 1;
    crate::events::emit(crate::events::EngineEvent::KernelFallback { total });
}

/// Records the partition count chosen for one hash join.
pub(crate) fn record_join_partitions(npart: usize) {
    JOINS.fetch_add(1, Relaxed);
    PARTITIONS_SUM.fetch_add(npart as u64, Relaxed);
    PARTITIONS_MIN.fetch_min(npart as u64, Relaxed);
    PARTITIONS_MAX.fetch_max(npart as u64, Relaxed);
    let bucket = (npart.max(1).ilog2() as usize).min(LOG2_BUCKETS - 1);
    PARTITIONS_BY_LOG2[bucket].fetch_add(1, Relaxed);
}

/// Snapshot of the expression-kernel dispatch counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    pub vectorized: u64,
    pub scalar_fallback: u64,
}

pub fn kernel_stats() -> KernelStats {
    KernelStats { vectorized: KERNEL_VECTORIZED.load(Relaxed), scalar_fallback: KERNEL_SCALAR_FALLBACK.load(Relaxed) }
}

/// Snapshot of the per-join radix-partition distribution.
#[derive(Debug, Clone, Default)]
pub struct JoinRadixStats {
    /// Joins executed (each records one partition count).
    pub joins: u64,
    /// Sum of partition counts across all joins.
    pub partitions_sum: u64,
    pub partitions_min: Option<u64>,
    pub partitions_max: Option<u64>,
    /// Histogram buckets `(partition-count upper bound, joins)`, ascending:
    /// bucket `i` counts joins that chose exactly `2^i` partitions.
    pub buckets: Vec<(u64, u64)>,
}

pub fn join_radix_stats() -> JoinRadixStats {
    let joins = JOINS.load(Relaxed);
    let min = PARTITIONS_MIN.load(Relaxed);
    JoinRadixStats {
        joins,
        partitions_sum: PARTITIONS_SUM.load(Relaxed),
        partitions_min: (min != u64::MAX).then_some(min),
        partitions_max: (joins > 0).then(|| PARTITIONS_MAX.load(Relaxed)),
        buckets: PARTITIONS_BY_LOG2.iter().enumerate().map(|(i, c)| (1u64 << i, c.load(Relaxed))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_partition_stats_accumulate() {
        let before = join_radix_stats();
        record_join_partitions(4);
        record_join_partitions(16);
        let after = join_radix_stats();
        assert_eq!(after.joins - before.joins, 2);
        assert_eq!(after.partitions_sum - before.partitions_sum, 20);
        assert!(after.partitions_min.unwrap() <= 4);
        assert!(after.partitions_max.unwrap() >= 16);
        let idx = |s: &JoinRadixStats, b: u64| s.buckets.iter().find(|(ub, _)| *ub == b).unwrap().1;
        assert_eq!(idx(&after, 4) - idx(&before, 4), 1);
        assert_eq!(idx(&after, 16) - idx(&before, 16), 1);
    }

    #[test]
    fn kernel_counters_tick() {
        let before = kernel_stats();
        count_vectorized();
        count_scalar_fallback();
        let after = kernel_stats();
        assert!(after.vectorized > before.vectorized);
        assert!(after.scalar_fallback > before.scalar_fallback);
    }
}
