//! The in-process service layer: Quarry's components exposed as a
//! request/response message protocol.
//!
//! The original system runs its modules on Apache Tomcat behind HTTP-based
//! RESTful APIs (paper §2.6). This module preserves that architecture
//! in-process: every interaction is a serializable [`ServiceRequest`] routed
//! to the façade, and every answer a [`ServiceResponse`] carrying document
//! payloads (xRQ/xMD/xLM/SQL text), so an embedder can put any transport in
//! front of it.

use crate::lifecycle::{Quarry, QuarryError};
use quarry_formats::Requirement;

/// A request to the Quarry service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceRequest {
    /// POST /requirements — body: an xRQ document.
    AddRequirement { xrq: String },
    /// DELETE /requirements/{id}
    RemoveRequirement { id: String },
    /// PUT /requirements/{id} — body: an xRQ document (same id).
    ChangeRequirement { xrq: String },
    /// GET /requirements
    ListRequirements,
    /// GET /design/md — the unified MD schema as xMD.
    GetUnifiedMd,
    /// GET /design/etl — the unified ETL process as xLM.
    GetUnifiedEtl,
    /// POST /deploy/{platform}
    Deploy { platform: String },
    /// GET /elicitor/suggestions?focus={concept}
    SuggestDimensions { focus: String },
    /// GET /observability/trace — the recorded lifecycle span trees as a
    /// JSON document (see [`crate::tracedoc`]).
    GetTrace,
    /// GET /observability/metrics — counters, histograms, and engine pool
    /// statistics as a JSON document.
    GetMetrics,
    /// POST /observability/serve — start the live scrape endpoint
    /// (`GET /metrics` Prometheus text, `/trace` Chrome trace JSON,
    /// `/healthz`). With no explicit address, uses `metrics_addr` from the
    /// instance's config. Also enables recording.
    ServeMetrics { addr: Option<String> },
    /// GET /observability/profile — the latest EXPLAIN ANALYZE execution
    /// profile (JSON, see [`crate::profile::ExecutionProfile`]). Errors if
    /// no flow has been executed yet.
    GetProfile,
    /// GET /debug/events — the flight recorder's event history as a JSON
    /// document (read-only: draining does not clear the ring).
    GetEvents,
    /// GET /observability/cache — the result cache's live statistics
    /// (entries, resident bytes, hit/miss/insert/reject/evict counters) as
    /// a JSON document.
    GetCacheStats,
}

/// A response from the Quarry service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceResponse {
    /// The step succeeded; the payload summarizes the design update.
    Updated {
        requirement_id: String,
        md_cost: f64,
        etl_cost: f64,
    },
    Requirements(Vec<String>),
    /// An xMD/xLM document.
    Document(String),
    /// Deployment artifacts (file name, content).
    Artifacts(Vec<(String, String)>),
    /// Ranked dimension suggestions for a focus concept.
    Suggestions(Vec<String>),
    /// The live telemetry endpoint is serving on this address.
    Serving {
        addr: String,
    },
    /// The request failed; the payload is the error report.
    Error(String),
}

impl ServiceResponse {
    /// Encodes the response as a JSON document (what an HTTP transport in
    /// front of this layer would put on the wire). Uses the repository's
    /// own JSON model — no serialization framework involved.
    pub fn to_json(&self) -> quarry_repository::Json {
        use quarry_repository::Json;
        let mut obj = Json::object();
        match self {
            ServiceResponse::Updated { requirement_id, md_cost, etl_cost } => {
                obj.set("status", Json::String("updated".into()));
                obj.set("requirement", Json::String(requirement_id.clone()));
                obj.set("mdCost", Json::Number(*md_cost));
                obj.set("etlCost", Json::Number(*etl_cost));
            }
            ServiceResponse::Requirements(ids) => {
                obj.set("status", Json::String("ok".into()));
                obj.set("requirements", Json::Array(ids.iter().map(|i| Json::String(i.clone())).collect()));
            }
            ServiceResponse::Document(doc) => {
                obj.set("status", Json::String("ok".into()));
                obj.set("document", Json::String(doc.clone()));
            }
            ServiceResponse::Artifacts(files) => {
                obj.set("status", Json::String("ok".into()));
                let mut arr = Vec::new();
                for (name, content) in files {
                    let mut f = Json::object();
                    f.set("name", Json::String(name.clone()));
                    f.set("content", Json::String(content.clone()));
                    arr.push(f);
                }
                obj.set("artifacts", Json::Array(arr));
            }
            ServiceResponse::Suggestions(names) => {
                obj.set("status", Json::String("ok".into()));
                obj.set("suggestions", Json::Array(names.iter().map(|n| Json::String(n.clone())).collect()));
            }
            ServiceResponse::Serving { addr } => {
                obj.set("status", Json::String("serving".into()));
                obj.set("addr", Json::String(addr.clone()));
            }
            ServiceResponse::Error(message) => {
                obj.set("status", Json::String("error".into()));
                obj.set("message", Json::String(message.clone()));
            }
        }
        obj
    }
}

/// Routes one request to a Quarry instance. Errors are captured into
/// [`ServiceResponse::Error`] — the transport never panics.
pub fn handle(quarry: &mut Quarry, request: ServiceRequest) -> ServiceResponse {
    match try_handle(quarry, request) {
        Ok(r) => r,
        Err(e) => ServiceResponse::Error(e.to_string()),
    }
}

fn try_handle(quarry: &mut Quarry, request: ServiceRequest) -> Result<ServiceResponse, QuarryError> {
    match request {
        ServiceRequest::AddRequirement { xrq } => {
            let req = Requirement::parse(&xrq)?;
            let update = quarry.add_requirement(req)?;
            Ok(ServiceResponse::Updated {
                requirement_id: update.requirement_id,
                md_cost: update.md_cost,
                etl_cost: update.etl_cost,
            })
        }
        ServiceRequest::RemoveRequirement { id } => {
            let update = quarry.remove_requirement(&id)?;
            Ok(ServiceResponse::Updated {
                requirement_id: update.requirement_id,
                md_cost: update.md_cost,
                etl_cost: update.etl_cost,
            })
        }
        ServiceRequest::ChangeRequirement { xrq } => {
            let req = Requirement::parse(&xrq)?;
            let update = quarry.change_requirement(req)?;
            Ok(ServiceResponse::Updated {
                requirement_id: update.requirement_id,
                md_cost: update.md_cost,
                etl_cost: update.etl_cost,
            })
        }
        ServiceRequest::ListRequirements => {
            Ok(ServiceResponse::Requirements(quarry.requirement_ids().iter().map(|s| s.to_string()).collect()))
        }
        ServiceRequest::GetUnifiedMd => {
            Ok(ServiceResponse::Document(quarry_formats::xmd::to_string(quarry.unified().0)))
        }
        ServiceRequest::GetUnifiedEtl => {
            Ok(ServiceResponse::Document(quarry_formats::xlm::to_string(quarry.unified().1)))
        }
        ServiceRequest::Deploy { platform } => {
            let artifacts = quarry.deploy(&platform)?;
            Ok(ServiceResponse::Artifacts(artifacts.files))
        }
        ServiceRequest::GetTrace => {
            Ok(ServiceResponse::Document(crate::tracedoc::trace_to_json(&quarry.trace()).to_pretty_string()))
        }
        ServiceRequest::GetMetrics => {
            Ok(ServiceResponse::Document(crate::tracedoc::metrics_to_json(quarry.observability()).to_pretty_string()))
        }
        ServiceRequest::GetProfile => {
            let key = quarry.config().design_name.clone();
            // A missing profile is an expected state (nothing executed yet),
            // not a store failure — answer with a structured error instead
            // of routing through `From<StoreError>` (which dumps the flight
            // recorder to stderr).
            match quarry.repository().latest(quarry_repository::ArtifactKind::Profile, &key) {
                Ok(artifact) => Ok(ServiceResponse::Document(artifact.content)),
                Err(_) => Ok(ServiceResponse::Error(format!(
                    "no execution profile recorded for `{key}` yet — run the flow first"
                ))),
            }
        }
        ServiceRequest::GetEvents => {
            let log = quarry_obs::flight::recorder().drain();
            Ok(ServiceResponse::Document(quarry_obs::export::events_json(&log)))
        }
        ServiceRequest::GetCacheStats => {
            use quarry_repository::Json;
            let stats = quarry.cache_stats();
            let mut obj = Json::object();
            obj.set("enabled", Json::Bool(stats.enabled));
            obj.set("budgetBytes", Json::Number(stats.budget_bytes as f64));
            obj.set("entries", Json::Number(stats.entries as f64));
            obj.set("bytes", Json::Number(stats.bytes as f64));
            obj.set("hits", Json::Number(stats.hits as f64));
            obj.set("misses", Json::Number(stats.misses as f64));
            obj.set("inserts", Json::Number(stats.inserts as f64));
            obj.set("rejects", Json::Number(stats.rejects as f64));
            obj.set("evictions", Json::Number(stats.evictions as f64));
            obj.set("hitRate", Json::Number(stats.hit_rate()));
            Ok(ServiceResponse::Document(obj.to_pretty_string()))
        }
        ServiceRequest::ServeMetrics { addr } => {
            let addr = addr
                .or_else(|| quarry.config().metrics_addr.clone())
                .ok_or_else(|| QuarryError::Telemetry("no metrics address given or configured".into()))?;
            let bound = quarry.serve_metrics(&addr)?;
            Ok(ServiceResponse::Serving { addr: bound.to_string() })
        }
        ServiceRequest::SuggestDimensions { focus } => {
            let concept = quarry
                .ontology()
                .concept_by_name(&focus)
                .ok_or_else(|| QuarryError::UnknownRequirement(format!("concept `{focus}`")))?;
            let suggestions = quarry.elicitor().suggest_dimensions(concept).into_iter().map(|s| s.name).collect();
            Ok(ServiceResponse::Suggestions(suggestions))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_formats::xrq::figure4_requirement;

    #[test]
    fn full_protocol_round() {
        let mut q = Quarry::tpch();
        // Elicitor assistance.
        match handle(&mut q, ServiceRequest::SuggestDimensions { focus: "Lineitem".into() }) {
            ServiceResponse::Suggestions(s) => assert!(s.contains(&"Part".to_string())),
            other => panic!("{other:?}"),
        }
        // Add a requirement via its xRQ document.
        let xrq = figure4_requirement().to_string_pretty();
        match handle(&mut q, ServiceRequest::AddRequirement { xrq }) {
            ServiceResponse::Updated { requirement_id, md_cost, .. } => {
                assert_eq!(requirement_id, "IR1");
                assert!(md_cost > 0.0);
            }
            other => panic!("{other:?}"),
        }
        match handle(&mut q, ServiceRequest::ListRequirements) {
            ServiceResponse::Requirements(ids) => assert_eq!(ids, ["IR1"]),
            other => panic!("{other:?}"),
        }
        match handle(&mut q, ServiceRequest::GetUnifiedMd) {
            ServiceResponse::Document(doc) => assert!(doc.contains("fact_table_revenue")),
            other => panic!("{other:?}"),
        }
        match handle(&mut q, ServiceRequest::GetUnifiedEtl) {
            ServiceResponse::Document(doc) => assert!(doc.contains("DATASTORE_Lineitem")),
            other => panic!("{other:?}"),
        }
        match handle(&mut q, ServiceRequest::Deploy { platform: "postgres-pdi".into() }) {
            ServiceResponse::Artifacts(files) => assert_eq!(files.len(), 2),
            other => panic!("{other:?}"),
        }
        match handle(&mut q, ServiceRequest::RemoveRequirement { id: "IR1".into() }) {
            ServiceResponse::Updated { requirement_id, .. } => assert_eq!(requirement_id, "IR1"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_encode_as_json() {
        let mut q = Quarry::tpch();
        let xrq = figure4_requirement().to_string_pretty();
        let resp = handle(&mut q, ServiceRequest::AddRequirement { xrq });
        let json = resp.to_json();
        assert_eq!(json.path("status").and_then(|v| v.as_str()), Some("updated"));
        assert_eq!(json.path("requirement").and_then(|v| v.as_str()), Some("IR1"));
        assert!(json.path("mdCost").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0);
        // The encoding is valid JSON text.
        let text = json.to_pretty_string();
        quarry_repository::Json::parse(&text).expect("well-formed");

        let err = handle(&mut q, ServiceRequest::RemoveRequirement { id: "nope".into() }).to_json();
        assert_eq!(err.path("status").and_then(|v| v.as_str()), Some("error"));

        let suggestions = handle(&mut q, ServiceRequest::SuggestDimensions { focus: "Lineitem".into() }).to_json();
        assert!(suggestions.path("suggestions").and_then(|v| v.as_array()).map_or(0, |a| a.len()) > 0);
    }

    #[test]
    fn errors_become_error_responses() {
        let mut q = Quarry::tpch();
        match handle(&mut q, ServiceRequest::AddRequirement { xrq: "<not-xrq/>".into() }) {
            ServiceResponse::Error(e) => assert!(e.contains("cube"), "{e}"),
            other => panic!("{other:?}"),
        }
        match handle(&mut q, ServiceRequest::RemoveRequirement { id: "IRX".into() }) {
            ServiceResponse::Error(e) => assert!(e.contains("IRX")),
            other => panic!("{other:?}"),
        }
        match handle(&mut q, ServiceRequest::SuggestDimensions { focus: "Ghost".into() }) {
            ServiceResponse::Error(e) => assert!(e.contains("Ghost")),
            other => panic!("{other:?}"),
        }
        match handle(&mut q, ServiceRequest::Deploy { platform: "hadoop".into() }) {
            ServiceResponse::Error(e) => assert!(e.contains("hadoop")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_responses_encode_as_json_even_with_special_characters() {
        // Error text flows into a JSON string; quotes, backslashes, newlines,
        // and control characters in the message must not break the encoding.
        for message in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "multi\nline\tmessage",
            "control \u{1} char and unicode caf\u{e9}",
        ] {
            let json = ServiceResponse::Error(message.to_string()).to_json();
            assert_eq!(json.path("status").and_then(|v| v.as_str()), Some("error"));
            let text = json.to_pretty_string();
            let parsed = quarry_repository::Json::parse(&text).expect("well-formed");
            assert_eq!(parsed.path("message").and_then(|v| v.as_str()), Some(message), "round-trip of {message:?}");
        }
    }

    #[test]
    fn deploy_to_unknown_platform_is_a_structured_error() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let resp = handle(&mut q, ServiceRequest::Deploy { platform: "teradata".into() });
        let json = resp.to_json();
        assert_eq!(json.path("status").and_then(|v| v.as_str()), Some("error"));
        let msg = json.path("message").and_then(|v| v.as_str()).unwrap();
        assert!(msg.contains("teradata"), "{msg}");
        // The failed deploy must not disturb the design.
        assert_eq!(q.requirement_ids(), ["IR1"]);
    }

    #[test]
    fn malformed_xrq_bodies_never_panic() {
        let mut q = Quarry::tpch();
        for body in [
            "",
            "not xml at all",
            "<xrq:cube",
            "<xrq:cube xmlns:xrq=\"urn:quarry:xrq\"></wrong-close>",
            "<a><b/></a>",
            "\u{0}\u{1}\u{2}",
        ] {
            for request in [
                ServiceRequest::AddRequirement { xrq: body.to_string() },
                ServiceRequest::ChangeRequirement { xrq: body.to_string() },
            ] {
                match handle(&mut q, request) {
                    ServiceResponse::Error(e) => assert!(!e.is_empty(), "error for {body:?} must carry a message"),
                    other => panic!("malformed body {body:?} must produce Error, got {other:?}"),
                }
            }
        }
        assert!(q.requirement_ids().is_empty(), "no malformed body may mutate the design");
    }

    #[test]
    fn profile_and_events_endpoints_return_documents() {
        let mut q = Quarry::tpch();
        // Before any run: a structured error, not a store failure (and no
        // flight-recorder dump on stderr).
        match handle(&mut q, ServiceRequest::GetProfile) {
            ServiceResponse::Error(e) => assert!(e.contains("no execution profile"), "{e}"),
            other => panic!("{other:?}"),
        }
        let xrq = figure4_requirement().to_string_pretty();
        handle(&mut q, ServiceRequest::AddRequirement { xrq });
        q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
        let doc = match handle(&mut q, ServiceRequest::GetProfile) {
            ServiceResponse::Document(doc) => doc,
            other => panic!("{other:?}"),
        };
        let json = quarry_repository::Json::parse(&doc).expect("profile is JSON");
        let profile = crate::profile::ExecutionProfile::from_json(&json).expect("profile document parses");
        assert!(!profile.ops.is_empty());
        assert!(profile.ops.iter().any(|op| op.rows_out > 0));
        // The events endpoint returns well-formed JSON carrying the engine's
        // per-operator finish events from the run above.
        let events = match handle(&mut q, ServiceRequest::GetEvents) {
            ServiceResponse::Document(doc) => doc,
            other => panic!("{other:?}"),
        };
        let parsed = quarry_repository::Json::parse(&events).expect("events are JSON");
        assert!(parsed.path("capacity").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0, "{events}");
        assert!(events.contains("\"op_finish\""), "engine events present: {events}");
    }

    #[test]
    fn cache_stats_endpoint_reports_live_counters() {
        let mut q = Quarry::tpch();
        let xrq = figure4_requirement().to_string_pretty();
        handle(&mut q, ServiceRequest::AddRequirement { xrq });
        let data = quarry_engine::tpch::generate(0.002, 42);
        q.run_etl(data.clone()).unwrap();
        q.run_etl(data).unwrap();
        let doc = match handle(&mut q, ServiceRequest::GetCacheStats) {
            ServiceResponse::Document(doc) => doc,
            other => panic!("{other:?}"),
        };
        let json = quarry_repository::Json::parse(&doc).expect("cache stats are JSON");
        assert_eq!(json.path("enabled"), Some(&quarry_repository::Json::Bool(true)));
        assert!(json.path("budgetBytes").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0);
        // The second identical run must have hit the warm cache.
        assert!(json.path("hits").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0, "{doc}");
        assert!(json.path("hitRate").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn trace_and_metrics_endpoints_return_documents() {
        let mut q = Quarry::tpch();
        q.set_observability(true);
        let xrq = figure4_requirement().to_string_pretty();
        handle(&mut q, ServiceRequest::AddRequirement { xrq });
        let doc = match handle(&mut q, ServiceRequest::GetTrace) {
            ServiceResponse::Document(doc) => doc,
            other => panic!("{other:?}"),
        };
        let json = quarry_repository::Json::parse(&doc).expect("trace is JSON");
        assert_eq!(json.path("spans.0.name").and_then(|v| v.as_str()), Some("add_requirement"));
        match handle(&mut q, ServiceRequest::GetMetrics) {
            ServiceResponse::Document(doc) => {
                let json = quarry_repository::Json::parse(&doc).expect("metrics are JSON");
                assert!(json.path("pool.regions").and_then(|v| v.as_f64()).is_some());
            }
            other => panic!("{other:?}"),
        }
    }
}
