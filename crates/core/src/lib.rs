//! # Quarry
//!
//! An end-to-end system for managing the design lifecycle of a data
//! warehouse — a from-scratch Rust reproduction of *"Quarry: Digging Up the
//! Gems of Your Data Treasury"* (EDBT 2015).
//!
//! Quarry assists users of various technical skills in the incremental
//! design and deployment of multidimensional (MD) schemata and ETL
//! processes:
//!
//! 1. **Requirements Elicitor** — explore the domain ontology, get
//!    suggested analytical perspectives, assemble validated requirements
//!    ([`Quarry::elicitor`], [`Quarry::session`]);
//! 2. **Requirements Interpreter** — translate each requirement into a
//!    validated partial MD schema + ETL flow;
//! 3. **Design Integrator** — consolidate partials into unified design
//!    solutions satisfying every requirement posed so far, guided by
//!    configurable quality factors ([`Quarry::add_requirement`]);
//! 4. **Design Deployer** — emit executables for the registered platforms
//!    (PostgreSQL DDL + Pentaho PDI out of the box,
//!    [`Quarry::deploy`]), or run the unified flow directly on the
//!    embedded engine ([`Quarry::run_etl`]);
//! 5. **Communication & Metadata layer** — every artifact version and
//!    requirement↔design link is recorded in the metadata repository
//!    ([`Quarry::repository`]).
//!
//! ```
//! use quarry::Quarry;
//!
//! let mut quarry = Quarry::tpch();
//! let req = quarry_formats::xrq::figure4_requirement();
//! let update = quarry.add_requirement(req).expect("figure 4 is MD-compliant");
//! assert_eq!(update.requirement_id, "IR1");
//! let (md, etl) = quarry.unified();
//! assert!(md.fact("fact_table_revenue").is_some());
//! assert!(etl.op_by_name("LOADER_fact_table_revenue").is_some());
//! ```

#![forbid(unsafe_code)]

mod config;
mod lifecycle;
pub mod native;
pub mod olap;
pub mod profile;
pub mod service;
pub mod tracedoc;

pub use config::QuarryConfig;
pub use lifecycle::{DesignUpdate, Quarry, QuarryError};
pub use profile::ExecutionProfile;
pub use quarry_obs as obs;
