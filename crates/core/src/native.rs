//! The native execution platform: deploy a unified design straight onto the
//! embedded `quarry-engine` and run it.
//!
//! The paper deploys onto PostgreSQL + Pentaho PDI; the native platform is
//! what makes the demo's *measured* claims (reduced overall execution time
//! of integrated flows, §3) reproducible in-process.

use quarry_deployer::{DeployError, DeploymentArtifacts, ExecutionPlatform};
use quarry_engine::{Catalog, Engine};
use quarry_etl::Flow;
use quarry_md::MdSchema;

/// Creates an engine over the source catalog. Target tables are *not*
/// pre-created: loaders create them on first write, so the physical layout
/// always matches what the flow actually produces. The MD schema is accepted
/// for symmetry with [`quarry_deployer::ExecutionPlatform::deploy`] and for
/// forward compatibility (pre-creating indexed tables is a tuning step the
/// paper leaves to expert users).
pub fn deploy(_md: &MdSchema, catalog: Catalog) -> Engine {
    Engine::new(catalog)
}

/// The native platform as a registry plug-in: `deploy("native")` validates
/// the unified design exactly like an external generator would and emits a
/// run manifest describing what [`Quarry::run_etl`](crate::Quarry::run_etl)
/// will execute, so the deployment step is observable and versioned in the
/// repository even when no external engine is involved.
pub struct NativePlatform;

impl ExecutionPlatform for NativePlatform {
    fn name(&self) -> &str {
        "native"
    }

    fn deploy(&self, md: &MdSchema, etl: &Flow) -> Result<DeploymentArtifacts, DeployError> {
        let violations = md.validate();
        if violations.iter().any(|v| v.kind.is_error()) {
            return Err(DeployError::InvalidDesign(
                violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("; "),
            ));
        }
        etl.validate().map_err(|e| DeployError::InvalidDesign(e.to_string()))?;
        let mut manifest = String::new();
        manifest.push_str(&format!("design: {}\n", md.name));
        manifest.push_str(&format!("operations: {}\n", etl.op_count()));
        manifest.push_str("targets:\n");
        for op in etl.ops() {
            if let quarry_etl::OpKind::Loader { table, key } = &op.kind {
                manifest.push_str(&format!("  - {} (key: {})\n", table, key.join(", ")));
            }
        }
        Ok(DeploymentArtifacts { files: vec![("run-manifest.txt".to_string(), manifest)] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_platform_deploys_a_run_manifest() {
        let mut q = crate::Quarry::tpch();
        q.add_requirement(quarry_formats::xrq::figure4_requirement()).unwrap();
        let artifacts = q.deploy("native").unwrap();
        let manifest = artifacts.file("run-manifest.txt").unwrap();
        assert!(manifest.contains("design: unified"), "{manifest}");
        assert!(manifest.contains("fact_table_revenue"), "{manifest}");
    }

    #[test]
    fn deploy_wraps_the_catalog() {
        let catalog = quarry_engine::tpch::generate(0.001, 1);
        let tables = catalog.len();
        let engine = deploy(&MdSchema::new("unified"), catalog);
        assert_eq!(engine.catalog.len(), tables);
    }
}
