//! The native execution platform: deploy a unified design straight onto the
//! embedded `quarry-engine` and run it.
//!
//! The paper deploys onto PostgreSQL + Pentaho PDI; the native platform is
//! what makes the demo's *measured* claims (reduced overall execution time
//! of integrated flows, §3) reproducible in-process.

use quarry_engine::{Catalog, Engine};
use quarry_md::MdSchema;

/// Creates an engine over the source catalog. Target tables are *not*
/// pre-created: loaders create them on first write, so the physical layout
/// always matches what the flow actually produces. The MD schema is accepted
/// for symmetry with [`quarry_deployer::ExecutionPlatform::deploy`] and for
/// forward compatibility (pre-creating indexed tables is a tuning step the
/// paper leaves to expert users).
pub fn deploy(_md: &MdSchema, catalog: Catalog) -> Engine {
    Engine::new(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_wraps_the_catalog() {
        let catalog = quarry_engine::tpch::generate(0.001, 1);
        let tables = catalog.len();
        let engine = deploy(&MdSchema::new("unified"), catalog);
        assert_eq!(engine.catalog.len(), tables);
    }
}
