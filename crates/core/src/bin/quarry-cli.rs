//! `quarry-cli` — a line-oriented console over the Quarry service layer.
//!
//! The original demo drove Quarry through a web UI over REST services; this
//! binary is the equivalent headless front end: each input line is one
//! service request, each output block one response. It reads commands from
//! stdin (or from files passed as arguments), so demo scripts are plain text:
//!
//! ```text
//! $ cargo run --bin quarry-cli
//! quarry> suggest Lineitem
//! quarry> add examples/requirements/figure4_revenue.xrq
//! quarry> list
//! quarry> deploy postgres-pdi
//! quarry> run 0.01
//! quarry> quit
//! ```

use quarry::service::{handle, ServiceRequest, ServiceResponse};
use quarry::Quarry;
use std::io::{BufRead, Write};

const HELP: &str = "\
commands:
  suggest <Concept>        rank analysis dimensions for a focus concept
  foci                     rank analysis-focus candidates
  add <file.xrq>           interpret + integrate a requirement document
  remove <IRid>            retract a requirement
  change <file.xrq>        replace a requirement (same id)
  list                     list integrated requirement ids
  md                       print the unified MD schema (xMD)
  etl                      print the unified ETL process (xLM)
  deploy <platform>        generate platform executables (postgres-pdi)
  export <format>          export the unified design via the format registry
                           (xmd, xlm, sql, summary)
  diff                     structural changes of the last lifecycle step
  run <scale-factor>       execute the unified flow on generated TPC-H data
                           (measured cardinalities feed the optimizer)
  optimize [--explain]     anneal the unified flow over equivalent rewrites;
                           --explain prints the per-move search log
  explain [--analyze]      print the cost model's estimated cardinalities for
                           the unified flow; --analyze renders the latest
                           run's execution profile (estimated vs. actual rows,
                           timings, kernel dispatch) as an annotated plan tree
  events                   dump the flight recorder's recent event history
                           (always on: spans, pool, WAL fsyncs, optimizer
                           moves, kernel fallbacks, drift flags)
  cache [clear]            result-cache statistics (entries, bytes, hit rate);
                           `cache clear` drops every cached intermediate
  query <file.xrq>         answer a requirement from the loaded warehouse
  trace [--format chrome]  render the recorded lifecycle span tree, or emit
                           Chrome trace-event JSON (load in about://tracing)
  metrics [--format prometheus]
                           print counters, histograms, and pool statistics,
                           or emit Prometheus text exposition
  serve <addr>             start the live telemetry endpoint (GET /metrics,
                           /trace, /healthz); port 0 picks a free port
  replay <dir>             read-only recovery of a durable repository
                           directory: replay its snapshot + log and report
                           what a restart would restore
  json (on|off)            toggle JSON response encoding
  help                     this text
  quit                     exit";

/// Dispatches one command line. Returns `None` on `quit`.
fn dispatch(
    quarry: &mut Quarry,
    line: &str,
    json: &mut bool,
    engine: &mut Option<quarry_engine::Engine>,
) -> Option<String> {
    let line = line.trim();
    let (cmd, arg) = match line.split_once(char::is_whitespace) {
        Some((c, a)) => (c, a.trim()),
        None => (line, ""),
    };
    let request = match cmd {
        "" | "#" => return Some(String::new()),
        _ if cmd.starts_with('#') => return Some(String::new()),
        "quit" | "exit" => return None,
        "help" => return Some(HELP.to_string()),
        "json" => {
            *json = arg != "off";
            return Some(format!("json encoding {}", if *json { "on" } else { "off" }));
        }
        "foci" => {
            let mut out = String::new();
            for f in quarry.elicitor().suggest_foci().iter().take(8) {
                out.push_str(&format!("{:<12} score {:.1}\n", f.name, f.score));
            }
            return Some(out);
        }
        "run" => {
            let sf: f64 = match arg.parse() {
                Ok(v) => v,
                Err(_) => return Some(format!("run: `{arg}` is not a scale factor")),
            };
            return Some(match quarry.run_etl(quarry_engine::tpch::generate(sf, 42)) {
                Ok((loaded_engine, report)) => {
                    let mut out = format!(
                        "executed {} operations in {:?}; {} rows processed\n",
                        report.timings.len(),
                        report.total,
                        report.rows_processed
                    );
                    for (table, rows) in &report.loaded {
                        out.push_str(&format!("  {table}: {rows} rows\n"));
                    }
                    // Feed the measured cardinalities back into the cost
                    // model — `optimize` then searches with observed rows.
                    quarry.observe_run(&report);
                    *engine = Some(loaded_engine); // keep the warehouse queryable
                    out
                }
                Err(e) => format!("run failed: {e}"),
            });
        }
        "optimize" => {
            let explain = arg == "--explain";
            if !arg.is_empty() && !explain {
                return Some(format!("optimize: unknown argument `{arg}` — try `--explain`"));
            }
            let before = quarry.unified().1.clone();
            return Some(match quarry.optimize() {
                Ok(report) => {
                    let mut out = format!(
                        "{}: modeled cost {:.0} -> {:.0} ({:.1}% better); {} proposed, {} accepted over {} chain(s) in {:.1} ms\n",
                        if report.applied { "optimized" } else { "no improvement found" },
                        report.before_cost,
                        report.after_cost,
                        report.improvement() * 100.0,
                        report.proposed,
                        report.accepted,
                        report.chains,
                        report.wall_ms,
                    );
                    if explain {
                        out.push_str("before:\n");
                        for op in before.ops() {
                            out.push_str(&format!("  {}\n", op.name));
                        }
                        out.push_str("after:\n");
                        for op in quarry.unified().1.ops() {
                            out.push_str(&format!("  {}\n", op.name));
                        }
                        out.push_str("search log (capped):\n");
                        for r in &report.log {
                            out.push_str(&format!(
                                "  chain {} step {:>4}  {:<40} {}  {}\n",
                                r.chain,
                                r.step,
                                r.describe,
                                match r.delta {
                                    Some(d) => format!("delta {d:+.3}"),
                                    None => "illegal".to_string(),
                                },
                                if r.accepted { "accepted" } else { "rejected" },
                            ));
                        }
                    }
                    out
                }
                Err(e) => format!("optimize failed: {e}"),
            });
        }
        "explain" => {
            let analyze = arg == "--analyze";
            if !arg.is_empty() && !analyze {
                return Some(format!("explain: unknown argument `{arg}` — try `--analyze`"));
            }
            if analyze {
                return Some(match handle(quarry, ServiceRequest::GetProfile) {
                    ServiceResponse::Document(doc) => match quarry_repository::Json::parse(&doc)
                        .ok()
                        .as_ref()
                        .and_then(quarry::ExecutionProfile::from_json)
                    {
                        Some(profile) => profile.render(),
                        None => "explain: the stored profile document is unreadable".to_string(),
                    },
                    ServiceResponse::Error(e) => format!("explain: {e}"),
                    other => format!("explain: unexpected response {other:?}"),
                });
            }
            let flow = quarry.unified().1;
            return Some(match quarry_etl::cost::cardinalities(flow, &quarry.config().stats) {
                Ok(cards) => {
                    let mut out = format!(
                        "{} — estimated plan ({} ops); run the flow, then `explain --analyze` for actuals:\n",
                        flow.name,
                        flow.ops().count(),
                    );
                    for id in flow.topo_order().unwrap_or_default() {
                        let op = flow.op(id);
                        out.push_str(&format!(
                            "  {:<44} est {:>12.0} rows  {}\n",
                            op.name,
                            cards.get(&id).copied().unwrap_or(0.0),
                            op.kind,
                        ));
                    }
                    out
                }
                Err(e) => format!("explain: {e}"),
            });
        }
        "cache" => {
            if arg == "clear" {
                quarry.clear_result_cache();
                return Some("result cache cleared".to_string());
            }
            if !arg.is_empty() {
                return Some(format!("cache: unknown argument `{arg}` — try `cache` or `cache clear`"));
            }
            if *json {
                ServiceRequest::GetCacheStats
            } else {
                let s = quarry.cache_stats();
                return Some(format!(
                    "result cache: {} ({} entries, {} / {} bytes)\n  hits {}  misses {}  hit rate {:.1}%\n  inserts {}  rejects {}  evictions {}",
                    if s.enabled { "enabled" } else { "disabled" },
                    s.entries,
                    s.bytes,
                    s.budget_bytes,
                    s.hits,
                    s.misses,
                    s.hit_rate() * 100.0,
                    s.inserts,
                    s.rejects,
                    s.evictions,
                ));
            }
        }
        "events" => {
            if *json {
                ServiceRequest::GetEvents
            } else {
                return Some(quarry::obs::flight::recorder().render_tail(quarry::obs::flight::DUMP_TAIL));
            }
        }
        "query" => {
            let Some(warehouse) = engine.as_mut() else {
                return Some("query: no warehouse loaded yet — `run <sf>` first".to_string());
            };
            let req = match std::fs::read_to_string(arg)
                .map_err(|e| e.to_string())
                .and_then(|xrq| quarry_formats::Requirement::parse(&xrq).map_err(|e| e.to_string()))
            {
                Ok(r) => r,
                Err(e) => return Some(format!("query: {e}")),
            };
            return Some(match quarry::olap::query_flow(quarry.unified().0, quarry.ontology(), &req) {
                Ok(flow) => match warehouse.run(&flow) {
                    Ok(_) => {
                        let answer = warehouse
                            .catalog
                            .get(&format!("answer_{}", req.id))
                            .expect("query flows end in their answer loader");
                        format!("{answer}")
                    }
                    Err(e) => format!("query failed: {e}"),
                },
                Err(e) => format!("query: {e}"),
            });
        }
        "export" => {
            let registry = quarry.formats();
            let mut out = String::new();
            let md = quarry_formats::registry::Artifact::Md(quarry.unified().0.clone());
            let etl = quarry_formats::registry::Artifact::Etl(quarry.unified().1.clone());
            for artifact in [md, etl] {
                match registry.export(arg, &artifact) {
                    Ok(text) => out.push_str(&text),
                    Err(e) => out.push_str(&format!("-- {e}\n")),
                }
                out.push('\n');
            }
            return Some(out);
        }
        "diff" => {
            let history = quarry.repository().history(quarry_repository::ArtifactKind::MdSchema, "unified");
            return Some(match history.as_slice() {
                [] => "no design versions yet".to_string(),
                [_only] => "only one version so far — everything is new".to_string(),
                [.., prev, last] => {
                    let old = quarry_formats::xmd::parse(&prev.content).expect("stored versions parse");
                    let new = quarry_formats::xmd::parse(&last.content).expect("stored versions parse");
                    format!("v{} → v{}:\n{}", prev.version, last.version, quarry_md::diff::diff(&old, &new))
                }
            });
        }
        "trace" => match export_format(arg) {
            Some("chrome") => return Some(quarry_obs::export::chrome_trace(&quarry.trace())),
            Some(other) => return Some(format!("trace: unknown format `{other}` — try `chrome`")),
            None => {
                if *json {
                    ServiceRequest::GetTrace
                } else {
                    let trace = quarry.trace();
                    return Some(if trace.is_empty() {
                        "no spans recorded yet — run a lifecycle step first".to_string()
                    } else {
                        trace.render()
                    });
                }
            }
        },
        "metrics" => match export_format(arg) {
            Some("prometheus") => return Some(quarry_obs::export::prometheus(&quarry.observability().metrics())),
            Some(other) => return Some(format!("metrics: unknown format `{other}` — try `prometheus`")),
            None => ServiceRequest::GetMetrics,
        },
        "replay" => {
            if arg.is_empty() {
                return Some("replay: usage `replay <repository-dir>`".to_string());
            }
            return Some(match quarry_repository::recover(arg) {
                Ok((store, report)) => {
                    let mut out = format!(
                        "recovered `{arg}`: snapshot {}, {} segment(s), {} record(s) replayed, {} torn byte(s) truncated\n",
                        report.snapshot_seq.map_or_else(|| "none".to_string(), |s| format!("#{s}")),
                        report.segments_replayed.len(),
                        report.records_replayed,
                        report.torn_bytes_truncated,
                    );
                    for name in store.collection_names() {
                        out.push_str(&format!("  {name}: {} document(s)\n", store.count(name)));
                    }
                    if !report.markers.is_empty() {
                        out.push_str(&format!("  markers: {}\n", report.markers.join(", ")));
                    }
                    out
                }
                Err(e) => format!("replay failed: {e}"),
            });
        }
        "serve" => ServiceRequest::ServeMetrics { addr: (!arg.is_empty()).then(|| arg.to_string()) },
        "suggest" => ServiceRequest::SuggestDimensions { focus: arg.to_string() },
        "add" | "change" => match std::fs::read_to_string(arg) {
            Ok(xrq) => {
                if cmd == "add" {
                    ServiceRequest::AddRequirement { xrq }
                } else {
                    ServiceRequest::ChangeRequirement { xrq }
                }
            }
            Err(e) => return Some(format!("{cmd}: cannot read `{arg}`: {e}")),
        },
        "remove" => ServiceRequest::RemoveRequirement { id: arg.to_string() },
        "list" => ServiceRequest::ListRequirements,
        "md" => ServiceRequest::GetUnifiedMd,
        "etl" => ServiceRequest::GetUnifiedEtl,
        "deploy" => ServiceRequest::Deploy { platform: arg.to_string() },
        other => return Some(format!("unknown command `{other}` — try `help`")),
    };
    let response = handle(quarry, request);
    Some(if *json { response.to_json().to_pretty_string() } else { render(response) })
}

/// Parses an optional `--format <name>` (or bare `<name>`) command argument.
fn export_format(arg: &str) -> Option<&str> {
    let arg = arg.strip_prefix("--format").unwrap_or(arg).trim();
    (!arg.is_empty()).then_some(arg)
}

fn render(response: ServiceResponse) -> String {
    match response {
        ServiceResponse::Updated { requirement_id, md_cost, etl_cost } => {
            format!("ok: {requirement_id} (structural complexity {md_cost:.1}, estimated ETL time {etl_cost:.0})")
        }
        ServiceResponse::Requirements(ids) => {
            if ids.is_empty() {
                "no requirements integrated yet".to_string()
            } else {
                ids.join("\n")
            }
        }
        ServiceResponse::Document(doc) => doc,
        ServiceResponse::Artifacts(files) => {
            let mut out = String::new();
            for (name, content) in files {
                out.push_str(&format!("───── {name} ─────\n{content}\n"));
            }
            out
        }
        ServiceResponse::Suggestions(names) => names.join("\n"),
        ServiceResponse::Serving { addr } => {
            format!("telemetry serving on http://{addr} (/metrics, /trace, /healthz)")
        }
        ServiceResponse::Error(e) => format!("error: {e}"),
    }
}

fn main() {
    let mut quarry = Quarry::tpch();
    // The console is a demo driver: always record spans so `trace` and
    // `metrics` have something to show.
    quarry.set_observability(true);
    let mut json = false;
    let mut engine: Option<quarry_engine::Engine> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();

    let stdin;
    let file_input;
    let reader: Box<dyn BufRead> = if args.is_empty() {
        stdin = std::io::stdin();
        Box::new(stdin.lock())
    } else {
        let mut combined = String::new();
        for path in &args {
            match std::fs::read_to_string(path) {
                Ok(text) => combined.push_str(&text),
                Err(e) => {
                    eprintln!("cannot read script `{path}`: {e}");
                    std::process::exit(1);
                }
            }
        }
        file_input = std::io::Cursor::new(combined);
        Box::new(file_input)
    };

    let interactive = args.is_empty();
    let mut out = std::io::stdout();
    if interactive {
        println!("Quarry over TPC-H — `help` lists commands.");
        print!("quarry> ");
        let _ = out.flush();
    }
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match dispatch(&mut quarry, &line, &mut json, &mut engine) {
            Some(output) => {
                if !output.is_empty() {
                    println!("{}", output.trim_end());
                }
            }
            None => break,
        }
        if interactive {
            print!("quarry> ");
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_session_covers_every_command() {
        let mut quarry = Quarry::tpch();
        let mut json = false;
        let mut engine: Option<quarry_engine::Engine> = None;
        let mut run = |q: &mut Quarry, j: &mut bool, line: &str| dispatch(q, line, j, &mut engine).expect("not quit");

        assert!(run(&mut quarry, &mut json, "help").contains("commands"));
        assert!(run(&mut quarry, &mut json, "suggest Lineitem").contains("Part"));
        assert!(run(&mut quarry, &mut json, "foci").contains("Lineitem"));
        let xrq_path = format!("{}/../../examples/requirements/figure4_revenue.xrq", env!("CARGO_MANIFEST_DIR"));
        let add = run(&mut quarry, &mut json, &format!("add {xrq_path}"));
        assert!(add.starts_with("ok: IR1"), "{add}");
        assert_eq!(run(&mut quarry, &mut json, "list"), "IR1");
        assert!(run(&mut quarry, &mut json, "md").contains("fact_table_revenue"));
        assert!(run(&mut quarry, &mut json, "etl").contains("DATASTORE_Lineitem"));
        assert!(run(&mut quarry, &mut json, "deploy postgres-pdi").contains("CREATE TABLE"));
        assert!(run(&mut quarry, &mut json, "query nowhere.xrq").contains("no warehouse"), "query before run");
        // EXPLAIN before any execution: estimates render, analyze refuses.
        let estimated = run(&mut quarry, &mut json, "explain");
        assert!(estimated.contains("estimated plan"), "{estimated}");
        assert!(estimated.contains("DATASTORE_Lineitem"), "{estimated}");
        assert!(run(&mut quarry, &mut json, "explain --analyze").contains("no execution profile"));
        let executed = run(&mut quarry, &mut json, "run 0.001");
        assert!(executed.contains("rows processed"), "{executed}");
        // EXPLAIN ANALYZE after a run: the annotated profile tree with
        // estimated vs. actual cardinalities and kernel dispatch counts.
        let analyzed = run(&mut quarry, &mut json, "explain --analyze");
        assert!(analyzed.contains("est "), "{analyzed}");
        assert!(analyzed.contains("kernels:"), "{analyzed}");
        assert!(analyzed.contains("LOADER_fact_table_revenue"), "{analyzed}");
        assert!(run(&mut quarry, &mut json, "explain --verbose").contains("unknown argument"));
        // The flight recorder has been accumulating events all along.
        let events = run(&mut quarry, &mut json, "events");
        assert!(events.contains("flight recorder:"), "{events}");
        assert!(events.contains("op_finish"), "{events}");
        let answered = run(&mut quarry, &mut json, &format!("query {xrq_path}"));
        assert!(answered.contains("revenue"), "{answered}");
        let exported = run(&mut quarry, &mut json, "export sql");
        assert!(exported.contains("CREATE TABLE") && exported.contains("INSERT INTO"), "{exported}");
        let netprofit = format!("{}/../../examples/requirements/netprofit.xrq", env!("CARGO_MANIFEST_DIR"));
        run(&mut quarry, &mut json, &format!("add {netprofit}"));
        let delta = run(&mut quarry, &mut json, "diff");
        assert!(delta.contains("+ "), "{delta}");
        assert!(run(&mut quarry, &mut json, "remove IR1").starts_with("ok: IR1"));
        // Observability: before enabling, `trace` explains itself; after, it
        // renders the span tree and `metrics` reports engine counters.
        assert!(run(&mut quarry, &mut json, "trace").contains("no spans recorded"));
        quarry.set_observability(true);
        run(&mut quarry, &mut json, "run 0.001");
        let tree = run(&mut quarry, &mut json, "trace");
        assert!(tree.contains("execute (mode=serial"), "{tree}");
        assert!(tree.contains("LOADER_fact_table_netprofit"), "{tree}");
        // An add while observability is on surfaces the consolidation
        // counters and per-stage integrate timings.
        run(&mut quarry, &mut json, &format!("add {xrq_path}"));
        // The optimizer: plain and --explain flavors, then its counters.
        let optimized = run(&mut quarry, &mut json, "optimize");
        assert!(optimized.contains("modeled cost"), "{optimized}");
        assert!(optimized.contains("chain(s)"), "{optimized}");
        let explained = run(&mut quarry, &mut json, "optimize --explain");
        assert!(explained.contains("before:") && explained.contains("after:"), "{explained}");
        assert!(explained.contains("search log"), "{explained}");
        assert!(run(&mut quarry, &mut json, "optimize --verbose").contains("unknown argument"));
        // The result cache accumulated entries during the runs above. (Each
        // CLI `run` regenerates source data, so those runs are always cold —
        // fresh column identities change the source stamps by design; warm
        // hits are exercised by the lifecycle and service tests, which rerun
        // over the same data handles.)
        let stats = run(&mut quarry, &mut json, "cache");
        assert!(stats.contains("result cache: enabled"), "{stats}");
        assert!(stats.contains("hit rate"), "{stats}");
        assert!(!stats.contains("inserts 0 "), "runs must have populated the cache: {stats}");
        assert!(run(&mut quarry, &mut json, "cache clear").contains("cleared"));
        let cleared = run(&mut quarry, &mut json, "cache");
        assert!(cleared.contains("(0 entries, 0 /"), "{cleared}");
        assert!(run(&mut quarry, &mut json, "cache --verbose").contains("unknown argument"));
        let metrics = run(&mut quarry, &mut json, "metrics");
        assert!(metrics.contains("integrator.optimizer.runs"), "{metrics}");
        assert!(metrics.contains("integrator.optimizer.moves_proposed"), "{metrics}");
        assert!(metrics.contains("integrator.optimizer.moves_accepted"), "{metrics}");
        assert!(metrics.contains("integrator.optimizer.optimize_seconds"), "{metrics}");
        assert!(metrics.contains("engine.runs"), "{metrics}");
        assert!(metrics.contains("integrator.etl_index_hits"), "{metrics}");
        assert!(metrics.contains("integrator.md_map_hits"), "{metrics}");
        assert!(metrics.contains("integrator.md_integrate_seconds"), "{metrics}");
        assert!(metrics.contains("integrator.etl_integrate_seconds"), "{metrics}");
        assert!(metrics.contains("\"p50\""), "histograms carry quantiles: {metrics}");
        // The repository's write-ahead-log counters are always present (zero
        // for this in-memory instance, nonzero once any durable repo ran).
        assert!(metrics.contains("repository.wal.appends"), "{metrics}");
        assert!(metrics.contains("repository.wal.fsyncs"), "{metrics}");
        assert!(metrics.contains("repository.wal.recoveries"), "{metrics}");
        // Prometheus text exposition.
        let prom = run(&mut quarry, &mut json, "metrics --format prometheus");
        assert!(prom.contains("# TYPE quarry_engine_runs_total counter"), "{prom}");
        assert!(prom.contains("quarry_engine_op_seconds_bucket{le=\"+Inf\"}"), "{prom}");
        assert!(prom.contains("quarry_engine_op_seconds_quantiles{quantile=\"0.99\"}"), "{prom}");
        assert!(run(&mut quarry, &mut json, "metrics --format csv").contains("unknown format"));
        // Chrome trace-event JSON.
        let chrome = run(&mut quarry, &mut json, "trace --format chrome");
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"execute\""), "{chrome}");
        // Live endpoint (port 0 picks a free port).
        let serving = run(&mut quarry, &mut json, "serve 127.0.0.1:0");
        assert!(serving.contains("telemetry serving on http://127.0.0.1:"), "{serving}");
        quarry.stop_serving_metrics();
        // JSON mode.
        assert!(run(&mut quarry, &mut json, "json on").contains("on"));
        let listing = run(&mut quarry, &mut json, "list");
        assert!(listing.contains("\"requirements\""), "{listing}");
        let events_doc = run(&mut quarry, &mut json, "events");
        assert!(events_doc.contains("\"document\""), "json mode routes events through the service: {events_doc}");
        let cache_doc = run(&mut quarry, &mut json, "cache");
        assert!(cache_doc.contains("\"document\""), "json mode routes cache stats through the service: {cache_doc}");
        // Errors render, never panic.
        assert!(run(&mut quarry, &mut json, "bogus").contains("unknown command"));
        let mut plain = false;
        assert!(run(&mut quarry, &mut plain, "add /no/such/file.xrq").contains("cannot read"));
        assert!(run(&mut quarry, &mut plain, "run NaNx").contains("not a scale factor"));
        // Replay: read-only recovery of a durable repository directory.
        let tmp = std::env::temp_dir().join(format!("quarry-cli-replay-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        {
            let repo =
                quarry_repository::Repository::open(&tmp, quarry_repository::DurabilityOptions::default()).unwrap();
            repo.put_artifact(quarry_repository::ArtifactKind::Ontology, "domain", "<owl/>").unwrap();
            repo.record_marker("demo-session").unwrap();
        }
        let replay = run(&mut quarry, &mut plain, &format!("replay {}", tmp.display()));
        assert!(replay.contains("record(s) replayed"), "{replay}");
        assert!(replay.contains("artifacts.ontology: 1 document(s)"), "{replay}");
        assert!(replay.contains("markers: demo-session"), "{replay}");
        let _ = std::fs::remove_dir_all(&tmp);
        assert!(run(&mut quarry, &mut plain, "replay").contains("usage"));
        assert!(run(&mut quarry, &mut plain, "replay /no/such/dir").contains("replay failed"));
        // Quit terminates.
        assert!(dispatch(&mut quarry, "quit", &mut plain, &mut engine).is_none());
    }
}
