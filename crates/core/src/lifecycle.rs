//! The Quarry façade: incremental DW design lifecycle management.

use crate::config::QuarryConfig;
use crate::profile::{ExecutionProfile, KernelDelta};
use quarry_deployer::{DeployError, DeploymentArtifacts, PlatformRegistry};
use quarry_elicitor::{Elicitor, Session};
use quarry_engine::{CachePlan, CacheStats, Catalog, Engine, EngineError, ResultCache, RunReport};
use quarry_etl::cost::{cardinality_state, op_fingerprint, EstimatedTime, TimeWeights};
use quarry_etl::Flow;
use quarry_formats::registry::FormatRegistry;
use quarry_formats::{FormatError, Requirement};
use quarry_integrator::etl::EtlIntegrationReport;
use quarry_integrator::md::MdIntegrationReport;
use quarry_integrator::optimize::{optimize_flow_with_discount, OptimizeReport};
use quarry_integrator::state::{ConsolidationState, ConsolidationStats};
use quarry_integrator::IntegrateError;
use quarry_interpreter::{InterpretError, Interpreter, PartialDesign};
use quarry_md::{MdSchema, MdViolation};
use quarry_obs::drift::{DriftDetector, DriftReport};
use quarry_obs::flight::{self, EventKind};
use quarry_obs::serve::ObsServer;
use quarry_obs::{Counter, Histogram, HistogramSnapshot, Metric, Obs, Span, Trace};
use quarry_ontology::mappings::SourceRegistry;
use quarry_ontology::Ontology;
use quarry_repository::{ArtifactKind, DurabilityOptions, Repository, StoreError};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Repository key under which the rolling lifecycle trace is versioned.
pub(crate) const TRACE_KEY: &str = "session";

/// WAL marker prefix persisting the unified-flow epoch (see
/// [`Quarry::persist_unified`]): durable recovery fast-forwards the
/// consolidation epoch from the highest such marker, so a restarted
/// repository never hands the result cache a pre-commit epoch.
const CACHE_EPOCH_MARKER: &str = "cache-epoch:flow:";

/// Lifecycle failures.
#[derive(Debug)]
pub enum QuarryError {
    /// The requirement failed mapping/MD validation.
    Interpret(Vec<InterpretError>),
    /// The integration could not produce a sound unified design.
    Integrate(IntegrateError),
    /// Requirement id not part of the current set.
    UnknownRequirement(String),
    /// Requirement id already in the current set.
    DuplicateRequirement(String),
    Deploy(DeployError),
    Engine(EngineError),
    Format(FormatError),
    /// The telemetry endpoint could not be started (bind failure, missing
    /// address configuration).
    Telemetry(String),
    /// The metadata repository failed — in durable mode this includes
    /// write-ahead-log I/O and recovery/corruption errors.
    Store(StoreError),
}

impl fmt::Display for QuarryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarryError::Interpret(errors) => {
                write!(f, "requirement rejected: ")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            QuarryError::Integrate(e) => write!(f, "{e}"),
            QuarryError::UnknownRequirement(id) => write!(f, "no requirement `{id}` in the current design"),
            QuarryError::DuplicateRequirement(id) => write!(f, "requirement `{id}` is already part of the design"),
            QuarryError::Deploy(e) => write!(f, "{e}"),
            QuarryError::Engine(e) => write!(f, "{e}"),
            QuarryError::Format(e) => write!(f, "{e}"),
            QuarryError::Telemetry(e) => write!(f, "telemetry endpoint: {e}"),
            QuarryError::Store(e) => write!(f, "repository: {e}"),
        }
    }
}

impl std::error::Error for QuarryError {}

/// The SQL export plug-in (paper §2.5 names SQL among the supported external
/// notations): renders MD schemata as PostgreSQL DDL and ETL flows as SQL
/// scripts.
struct SqlExporter;

impl quarry_formats::registry::Exporter for SqlExporter {
    fn format(&self) -> &str {
        "sql"
    }

    fn export(&self, artifact: &quarry_formats::registry::Artifact) -> Option<String> {
        match artifact {
            quarry_formats::registry::Artifact::Md(schema) => {
                Some(quarry_deployer::postgres::generate_ddl(schema, "demo"))
            }
            quarry_formats::registry::Artifact::Etl(flow) => quarry_deployer::sql::generate_sql(flow).ok(),
            quarry_formats::registry::Artifact::Req(_) => None,
        }
    }
}

impl From<IntegrateError> for QuarryError {
    fn from(e: IntegrateError) -> Self {
        QuarryError::Integrate(e)
    }
}

impl From<DeployError> for QuarryError {
    fn from(e: DeployError) -> Self {
        QuarryError::Deploy(e)
    }
}

impl From<EngineError> for QuarryError {
    fn from(e: EngineError) -> Self {
        QuarryError::Engine(e)
    }
}

impl From<FormatError> for QuarryError {
    fn from(e: FormatError) -> Self {
        QuarryError::Format(e)
    }
}

impl From<StoreError> for QuarryError {
    fn from(e: StoreError) -> Self {
        // A failing metadata store is exactly when the recent event history
        // matters: dump the flight-recorder tail to stderr before the error
        // propagates (the in-process black box, same as the panic hook).
        eprintln!("{}", flight::recorder().render_tail(flight::DUMP_TAIL));
        QuarryError::Store(e)
    }
}

/// What one lifecycle step changed.
#[derive(Debug, Default)]
pub struct DesignUpdate {
    pub requirement_id: String,
    /// MD integration report (None for removals).
    pub md_report: Option<MdIntegrationReport>,
    /// ETL integration report (None for removals).
    pub etl_report: Option<EtlIntegrationReport>,
    /// Cost of the unified MD schema after the step.
    pub md_cost: f64,
    /// Cost of the unified ETL flow after the step.
    pub etl_cost: f64,
    /// Non-fatal MD validation warnings on the unified schema.
    pub warnings: Vec<MdViolation>,
}

/// Pre-step state captured so a rejected lifecycle step can be rolled back:
/// live design, requirement set, and the requirement's traceability links.
struct DesignSnapshot {
    md: MdSchema,
    etl: Flow,
    requirements: BTreeMap<String, Requirement>,
    /// `(kind, key)` pairs from [`Repository::links_for`].
    links: Vec<(String, String)>,
}

/// The Quarry system: one instance manages one DW design lifecycle over one
/// domain.
pub struct Quarry {
    ontology: Ontology,
    sources: SourceRegistry,
    repository: Repository,
    formats: FormatRegistry,
    platforms: PlatformRegistry,
    config: QuarryConfig,
    unified_md: MdSchema,
    unified_etl: Flow,
    requirements: BTreeMap<String, Requirement>,
    /// Incremental consolidation state: keeps the unified ETL flow canonical
    /// and indexed across steps so integration stays O(partial) per
    /// requirement. Invalidated whenever the unified design is mutated
    /// outside an integration step (retraction, rollback).
    consolidation: ConsolidationState,
    /// Observability recorder: span trees per lifecycle step plus named
    /// metrics. Disabled (and effectively free) unless switched on via
    /// [`Quarry::set_observability`].
    obs: Obs,
    /// Pre-resolved metric handles for the lifecycle's own hot series —
    /// resolved once at construction, bumped via relaxed atomics.
    metrics: LifecycleMetrics,
    /// The live scrape endpoint, if started (see [`Quarry::serve_metrics`]).
    /// Shuts down when the instance is dropped.
    obs_server: Option<ObsServer>,
    /// Estimate-drift analyzer: fed per-operator estimated-vs-actual
    /// cardinalities by [`Quarry::observe_run`], scraped by a metrics
    /// collector (`obs.drift.*`). Shared so the collector closure can read
    /// it without borrowing `self`.
    drift: Arc<DriftDetector>,
    /// Cross-run subflow result cache: fingerprint-keyed materialized
    /// intermediates shared by every ETL run of this instance (see
    /// `quarry_engine::cache`). Shared so the metrics collector closure can
    /// read its stats without borrowing `self`.
    result_cache: Arc<ResultCache>,
    /// Per-source invalidation epochs, folded into the cache fingerprints
    /// alongside the catalog table stamps. Bumped by
    /// [`Quarry::bump_source_epoch`] when a datastore is registered or
    /// mutated behind the catalog's back.
    source_epochs: HashMap<String, u64>,
    /// Canonical per-op fingerprints (`op name → signature hash`) of the
    /// unified flow as of the last ETL run — the routing table
    /// [`Quarry::observe_run`] uses so observations never fold into an op
    /// the optimizer has since rewritten under the same name.
    run_fingerprints: Mutex<HashMap<String, u64>>,
    /// The resolved per-source epoch values (counter mixed with table stamp)
    /// of the last ETL run — what the optimizer's cache discount keys its
    /// probe fingerprints on, since no catalog is in scope at optimize time.
    last_source_epochs: Mutex<HashMap<String, u64>>,
    /// Memo of the last [`CachePlan`] built for a run. Valid while the flow
    /// epoch, flow shape, and resolved source epochs are unchanged —
    /// rebuilding it (fingerprints + modeled cone costs) is the dominant
    /// fixed cost of a cache-enabled run, and repeated runs over the same
    /// warehouse data need not pay it twice.
    cached_plan: Mutex<Option<CachePlan>>,
}

/// Handles for the metrics the lifecycle itself records. Kept together so
/// construction resolves every name exactly once.
struct LifecycleMetrics {
    md_integrate_seconds: Histogram,
    etl_integrate_seconds: Histogram,
    optimize_seconds: Histogram,
    optimizer_runs: Counter,
    optimizer_applied: Counter,
    optimizer_moves_proposed: Counter,
    optimizer_moves_accepted: Counter,
    engine_op_seconds: Histogram,
    engine_runs: Counter,
    engine_ops: Counter,
    engine_rows: Counter,
}

impl LifecycleMetrics {
    fn resolve(obs: &Obs) -> Self {
        LifecycleMetrics {
            md_integrate_seconds: obs.histogram("integrator.md_integrate_seconds"),
            etl_integrate_seconds: obs.histogram("integrator.etl_integrate_seconds"),
            optimize_seconds: obs.histogram("integrator.optimizer.optimize_seconds"),
            optimizer_runs: obs.counter("integrator.optimizer.runs"),
            optimizer_applied: obs.counter("integrator.optimizer.applied"),
            optimizer_moves_proposed: obs.counter("integrator.optimizer.moves_proposed"),
            optimizer_moves_accepted: obs.counter("integrator.optimizer.moves_accepted"),
            engine_op_seconds: obs.histogram("engine.op_seconds"),
            engine_runs: obs.counter("engine.runs"),
            engine_ops: obs.counter("engine.ops"),
            engine_rows: obs.counter("engine.rows"),
        }
    }
}

/// Routes the obs-free crates' process-wide event hooks into the global
/// flight recorder and arms the panic dump. Hooks are first-install-wins
/// (`OnceLock`), so constructing many `Quarry` instances is harmless.
fn install_event_bridges() {
    flight::install_panic_dump();
    let recorder = flight::recorder();
    let pool = recorder.label("pool");
    let kernel = recorder.label("kernel");
    quarry_engine::events::set_event_hook(move |event| {
        use quarry_engine::events::EngineEvent;
        let recorder = flight::recorder();
        match event {
            EngineEvent::OpFinish { op, rows_in, rows_out, lane } => {
                recorder.record_named(EventKind::OpFinish, op, lane, rows_in as i64, rows_out as i64);
            }
            EngineEvent::QueueDepth { depth, jobs } => {
                recorder.record(EventKind::QueueDepth, pool, 0, depth, jobs as i64);
            }
            EngineEvent::KernelFallback { total } => {
                recorder.record(EventKind::KernelFallback, kernel, 0, total as i64, 0);
            }
            EngineEvent::CacheHit { op, rows } => {
                recorder.record_named(EventKind::CacheHit, op, 0, rows as i64, 0);
            }
            EngineEvent::CacheMiss { op } => {
                recorder.record_named(EventKind::CacheMiss, op, 0, 0, 0);
            }
            EngineEvent::CacheInsert { op, bytes } => {
                recorder.record_named(EventKind::CacheInsert, op, 0, bytes as i64, 0);
            }
            EngineEvent::CacheEvict { bytes } => {
                recorder.record_named(EventKind::CacheEvict, "cache", 0, bytes as i64, 0);
            }
        }
    });
    let wal = recorder.label("wal");
    quarry_repository::set_fsync_event_hook(move |latency_micros, fsyncs| {
        flight::recorder().record(EventKind::WalFsync, wal, 0, latency_micros as i64, fsyncs as i64);
    });
}

impl Quarry {
    /// Creates a Quarry instance over a domain ontology and its source
    /// mappings, with default quality factors.
    pub fn new(ontology: Ontology, sources: SourceRegistry) -> Self {
        Quarry::with_config(ontology, sources, QuarryConfig::default())
    }

    /// Creates a Quarry instance with explicit configuration. Panics if a
    /// configured `repository_dir` cannot be opened or recovered — use
    /// [`Quarry::try_with_config`] to handle that at startup.
    pub fn with_config(ontology: Ontology, sources: SourceRegistry, config: QuarryConfig) -> Self {
        Quarry::try_with_config(ontology, sources, config).expect("repository open/recovery failed")
    }

    /// Creates a Quarry instance with explicit configuration. With
    /// `config.repository_dir` set, opens the durable repository there:
    /// recovers the latest snapshot plus log tail (truncating a torn final
    /// record) and write-ahead-logs every mutation from then on.
    pub fn try_with_config(
        ontology: Ontology,
        sources: SourceRegistry,
        config: QuarryConfig,
    ) -> Result<Self, QuarryError> {
        // The flight recorder is always on; route the obs-free crates' event
        // hooks into it (and arm the panic dump) before anything can fail.
        install_event_bridges();
        let repository = match &config.repository_dir {
            Some(dir) => Repository::open(dir, DurabilityOptions { fsync: config.fsync, ..Default::default() })?,
            None => Repository::new(),
        };
        // Persist the domain ontology as the first metadata artifact.
        repository.put_artifact(ArtifactKind::Ontology, "domain", &quarry_ontology::owlx::to_string(&ontology))?;
        let mut formats = FormatRegistry::with_builtins();
        formats.register_exporter(Box::new(SqlExporter));
        let mut platforms = PlatformRegistry::with_builtins();
        platforms.register(Box::new(crate::native::NativePlatform));
        let obs = Obs::disabled();
        obs.set_build_info(env!("CARGO_PKG_VERSION"), option_env!("QUARRY_GIT_HASH").unwrap_or("unknown"));
        let drift = Arc::new(DriftDetector::default());
        // Drift gauges: how many operators are tracked, how many currently
        // exceed the misestimate threshold, and (per flagged op, worst
        // first) the median actual/estimated ratio in permille.
        let drift_src = Arc::clone(&drift);
        obs.register_collector(Box::new(move |out| {
            let report = drift_src.report();
            out.push(("obs.drift.ops_tracked".to_string(), Metric::Gauge(report.ops.len() as i64)));
            let flagged = report.flagged();
            out.push(("obs.drift.flagged_ops".to_string(), Metric::Gauge(flagged.len() as i64)));
            for op in flagged.iter().take(8) {
                out.push((
                    format!("obs.drift.ratio_permille.{}", op.op),
                    Metric::Gauge((op.median_ratio * 1000.0).round() as i64),
                ));
            }
        }));
        // The engine pool's always-on gauges and kernel/radix stats ride
        // along in every metrics snapshot; the engine itself stays free of
        // any obs dependency.
        obs.register_collector(Box::new(|out| {
            let g = quarry_engine::pool::gauges();
            out.push(("pool.queue_depth".to_string(), Metric::Gauge(g.queue_depth)));
            out.push(("pool.active_workers".to_string(), Metric::Gauge(g.active_workers)));
            out.push(("pool.morsels_in_flight".to_string(), Metric::Gauge(g.in_flight)));
            let k = quarry_engine::stats::kernel_stats();
            out.push(("engine.kernel.vectorized".to_string(), Metric::Counter(k.vectorized)));
            out.push(("engine.kernel.scalar_fallback".to_string(), Metric::Counter(k.scalar_fallback)));
            let j = quarry_engine::stats::join_radix_stats();
            if j.joins > 0 {
                out.push((
                    "engine.join.radix_partitions".to_string(),
                    Metric::Histogram(HistogramSnapshot {
                        count: j.joins,
                        sum: j.partitions_sum as f64,
                        min: j.partitions_min.map(|v| v as f64),
                        max: j.partitions_max.map(|v| v as f64),
                        buckets: j
                            .buckets
                            .iter()
                            .filter(|&&(_, n)| n > 0)
                            .map(|&(bound, n)| (bound as f64, n))
                            .collect(),
                    }),
                ));
            }
            // The repository's write-ahead-log counters follow the same
            // always-on-atomics idiom; zero for in-memory repositories.
            let w = quarry_repository::wal_stats();
            out.push(("repository.wal.appends".to_string(), Metric::Counter(w.appends)));
            out.push(("repository.wal.appended_bytes".to_string(), Metric::Counter(w.appended_bytes)));
            out.push(("repository.wal.fsyncs".to_string(), Metric::Counter(w.fsyncs)));
            out.push(("repository.wal.compactions".to_string(), Metric::Counter(w.compactions)));
            out.push(("repository.wal.recoveries".to_string(), Metric::Counter(w.recoveries)));
            out.push(("repository.wal.replayed_records".to_string(), Metric::Counter(w.replayed_records)));
            out.push(("repository.wal.torn_truncations".to_string(), Metric::Counter(w.torn_truncations)));
            if w.fsyncs > 0 {
                out.push((
                    "repository.wal.fsync_seconds".to_string(),
                    Metric::Histogram(HistogramSnapshot {
                        count: w.fsyncs,
                        sum: w.fsync_seconds_sum,
                        min: None,
                        max: None,
                        buckets: w.fsync_buckets.iter().copied().filter(|&(_, n)| n > 0).collect(),
                    }),
                ));
            }
        }));
        // The cross-run result cache and its always-on stats: hit/miss/insert
        // traffic, resident bytes, and the cardinality-memo eviction counter
        // ride along in every metrics snapshot.
        let result_cache = Arc::new(ResultCache::new(config.cache.enabled, config.cache.budget_bytes));
        let cache_src = Arc::clone(&result_cache);
        obs.register_collector(Box::new(move |out| {
            let s = cache_src.stats();
            out.push(("engine.cache.entries".to_string(), Metric::Gauge(s.entries as i64)));
            out.push(("engine.cache.bytes".to_string(), Metric::Gauge(s.bytes as i64)));
            out.push(("engine.cache.hits".to_string(), Metric::Counter(s.hits)));
            out.push(("engine.cache.misses".to_string(), Metric::Counter(s.misses)));
            out.push(("engine.cache.inserts".to_string(), Metric::Counter(s.inserts)));
            out.push(("engine.cache.rejects".to_string(), Metric::Counter(s.rejects)));
            out.push(("engine.cache.evictions".to_string(), Metric::Counter(s.evictions)));
            out.push((
                "integrator.optimizer.card_cache_evictions".to_string(),
                Metric::Counter(quarry_etl::cost::card_cache_evictions()),
            ));
        }));
        let metrics = LifecycleMetrics::resolve(&obs);
        let mut consolidation = ConsolidationState::new();
        consolidation.bind_metrics(&obs);
        // Durable recovery: fast-forward the flow epoch past every persisted
        // commit so entries admitted before the restart can never hit.
        if let Some(report) = repository.recovery_report() {
            let recovered = report
                .markers
                .iter()
                .filter_map(|m| m.strip_prefix(CACHE_EPOCH_MARKER))
                .filter_map(|n| n.parse::<u64>().ok())
                .max();
            if let Some(epoch) = recovered {
                consolidation.set_flow_epoch(epoch);
            }
        }
        Ok(Quarry {
            unified_md: MdSchema::new(config.design_name.clone()),
            unified_etl: Flow::new(config.design_name.clone()),
            ontology,
            sources,
            repository,
            formats,
            platforms,
            config,
            requirements: BTreeMap::new(),
            consolidation,
            obs,
            metrics,
            obs_server: None,
            drift,
            result_cache,
            source_epochs: HashMap::new(),
            run_fingerprints: Mutex::new(HashMap::new()),
            last_source_epochs: Mutex::new(HashMap::new()),
            cached_plan: Mutex::new(None),
        })
    }

    /// A Quarry instance over the paper's running example: the TPC-H domain.
    pub fn tpch() -> Self {
        let domain = quarry_ontology::tpch::domain();
        Quarry::with_config(domain.ontology, domain.sources, QuarryConfig::tpch(0.01))
    }

    // ---- component access ---------------------------------------------------

    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    pub fn sources(&self) -> &SourceRegistry {
        &self.sources
    }

    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    pub fn formats(&self) -> &FormatRegistry {
        &self.formats
    }

    pub fn formats_mut(&mut self) -> &mut FormatRegistry {
        &mut self.formats
    }

    pub fn platforms_mut(&mut self) -> &mut PlatformRegistry {
        &mut self.platforms
    }

    pub fn config(&self) -> &QuarryConfig {
        &self.config
    }

    /// The observability recorder. Off by default; callers can also bump
    /// their own named counters through it.
    pub fn observability(&self) -> &Obs {
        &self.obs
    }

    /// Turns span/metric recording on or off. When off, every instrumented
    /// call site is a single relaxed atomic load.
    pub fn set_observability(&self, on: bool) {
        self.obs.set_enabled(on);
    }

    /// Snapshot of the lifecycle span trees recorded so far.
    pub fn trace(&self) -> Trace {
        self.obs.trace()
    }

    /// Starts (or restarts) the live telemetry endpoint on `addr` — a
    /// std-only HTTP server answering `GET /metrics` (Prometheus text),
    /// `/trace` (Chrome trace JSON), and `/healthz`. Also enables recording:
    /// a scrape endpoint over a disabled recorder would only ever serve
    /// emptiness. Returns the bound address (`addr` may use port 0).
    /// The endpoint serves until the instance is dropped or
    /// [`Quarry::stop_serving_metrics`] is called.
    pub fn serve_metrics(&mut self, addr: &str) -> Result<std::net::SocketAddr, QuarryError> {
        self.obs.set_enabled(true);
        let server = quarry_obs::serve::serve(&self.obs, addr)
            .map_err(|e| QuarryError::Telemetry(format!("cannot bind `{addr}`: {e}")))?;
        let bound = server.addr();
        self.obs_server = Some(server); // a previous server shuts down on drop
        Ok(bound)
    }

    /// The live telemetry endpoint's address, if one is serving.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs_server.as_ref().map(ObsServer::addr)
    }

    /// Shuts down the live telemetry endpoint (recording stays enabled).
    pub fn stop_serving_metrics(&mut self) {
        self.obs_server = None;
    }

    /// The Requirements Elicitor over this instance's ontology.
    pub fn elicitor(&self) -> Elicitor<'_> {
        Elicitor::new(&self.ontology)
    }

    /// Starts an elicitation session for a new requirement.
    pub fn session(&self, id: &str) -> Session<'_> {
        Session::new(&self.ontology, id)
    }

    /// The current unified design.
    pub fn unified(&self) -> (&MdSchema, &Flow) {
        (&self.unified_md, &self.unified_etl)
    }

    /// The requirement ids satisfied by the current design.
    pub fn requirement_ids(&self) -> Vec<&str> {
        self.requirements.keys().map(String::as_str).collect()
    }

    pub fn requirement(&self, id: &str) -> Option<&Requirement> {
        self.requirements.get(id)
    }

    // ---- lifecycle ------------------------------------------------------------

    /// Interprets a requirement in isolation (no change to the design).
    pub fn interpret(&self, req: &Requirement) -> Result<PartialDesign, QuarryError> {
        Interpreter::with_options(&self.ontology, &self.sources, self.config.interpreter)
            .interpret(req)
            .map_err(QuarryError::Interpret)
    }

    /// Adds a requirement: interpret → store partials → integrate → validate
    /// → store unified artifacts. The whole step runs inside an
    /// `add_requirement` span with one child span per phase; the completed
    /// trace is versioned in the repository.
    pub fn add_requirement(&mut self, req: Requirement) -> Result<DesignUpdate, QuarryError> {
        if self.requirements.contains_key(&req.id) {
            return Err(QuarryError::DuplicateRequirement(req.id.clone()));
        }
        let step = self.obs.span("add_requirement");
        step.attr("requirement", req.id.as_str());
        let result = self.add_requirement_phases(req);
        if let Ok(update) = &result {
            step.attr("md_cost", update.md_cost);
            step.attr("etl_cost", update.etl_cost);
        }
        self.finish_step(step, &result);
        result
    }

    fn add_requirement_phases(&mut self, req: Requirement) -> Result<DesignUpdate, QuarryError> {
        self.repository.record_marker(&format!("step:add_requirement:{}", req.id))?;
        let partial = {
            let phase = self.obs.span("interpret");
            let partial = self.interpret(&req)?;
            phase.attr("md_elements", partial.md.size().0 + partial.md.size().1);
            phase.attr("etl_ops", partial.etl.op_count());
            partial
        };

        // Persist the requirement and its partial designs.
        self.repository.put_artifact(ArtifactKind::Requirement, &req.id, &req.to_string_pretty())?;
        self.repository.put_artifact(
            ArtifactKind::MdSchema,
            &format!("partial-{}", req.id),
            &quarry_formats::xmd::to_string(&partial.md),
        )?;
        self.repository.put_artifact(
            ArtifactKind::EtlFlow,
            &format!("partial-{}", req.id),
            &quarry_formats::xlm::to_string(&partial.etl),
        )?;
        self.repository.link_requirement(&req.id, ArtifactKind::MdSchema, &format!("partial-{}", req.id))?;
        self.repository.link_requirement(&req.id, ArtifactKind::EtlFlow, &format!("partial-{}", req.id))?;

        // Integrate through the maintained consolidation state, recording the
        // quality-factor deltas (structural design complexity and estimated
        // ETL execution time) on the phase spans. The MD result is applied
        // only after the ETL step also succeeded (the ETL step restores the
        // flow itself on error), keeping the whole step transactional.
        let md_result = {
            let phase = self.obs.span("md_integrate");
            let before = self.config.md_cost.cost(&self.unified_md);
            let started = Instant::now();
            let result = self.consolidation.md_step(&self.unified_md, &partial.md, self.config.md_cost.as_ref())?;
            self.metrics.md_integrate_seconds.observe(started.elapsed().as_secs_f64());
            phase.attr("cost_before", before);
            phase.attr("cost_after", result.report.cost);
            phase.attr("cost_delta", result.report.cost - before);
            result
        };
        let etl_report = {
            let phase = self.obs.span("etl_integrate");
            let before = self.config.etl_cost.cost(&self.unified_etl, &self.config.stats).unwrap_or_default();
            let started = Instant::now();
            let report = self.consolidation.etl_step(
                &mut self.unified_etl,
                &partial.etl,
                self.config.etl_cost.as_ref(),
                &self.config.stats,
                self.config.etl_options,
            )?;
            self.metrics.etl_integrate_seconds.observe(started.elapsed().as_secs_f64());
            phase.attr("cost_before", before);
            phase.attr("cost_after", report.cost);
            phase.attr("cost_delta", report.cost - before);
            phase.attr("reused_ops", report.reused_ops);
            report
        };

        self.unified_md = md_result.schema;
        self.requirements.insert(req.id.clone(), req.clone());
        self.persist_unified()?;

        // `optimizer.enabled` folds the cost-based optimizer into every
        // integration step (off by default; `Quarry::optimize` runs it on
        // demand). An unimproved design passes through untouched.
        if self.config.optimizer.enabled {
            let phase = self.obs.span("optimize");
            let report = self.optimize_phases()?;
            phase.attr("applied", i64::from(report.applied));
            phase.attr("cost_delta", report.after_cost - report.before_cost);
        }

        let warnings = {
            let phase = self.obs.span("validate");
            let warnings = self.unified_md.validate();
            phase.attr("warnings", warnings.len());
            warnings
        };
        Ok(DesignUpdate {
            requirement_id: req.id,
            md_cost: md_result.report.cost,
            etl_cost: etl_report.cost,
            md_report: Some(md_result.report),
            etl_report: Some(etl_report),
            warnings,
        })
    }

    /// Integrates an externally produced partial design (paper §2.2: "Quarry
    /// allows plugging in other external design tools, with the assumption
    /// that the provided partial designs are sound"). The design is
    /// validated, stamped with `requirement_id`, and consolidated exactly
    /// like an interpreter-produced partial.
    pub fn add_partial_design(
        &mut self,
        requirement_id: &str,
        md: MdSchema,
        etl: Flow,
    ) -> Result<DesignUpdate, QuarryError> {
        if self.requirements.contains_key(requirement_id) {
            return Err(QuarryError::DuplicateRequirement(requirement_id.to_string()));
        }
        let step = self.obs.span("add_partial_design");
        step.attr("requirement", requirement_id);
        let result = self.add_partial_design_phases(requirement_id, md, etl);
        self.finish_step(step, &result);
        result
    }

    fn add_partial_design_phases(
        &mut self,
        requirement_id: &str,
        mut md: MdSchema,
        mut etl: Flow,
    ) -> Result<DesignUpdate, QuarryError> {
        // Trust but verify: external partials must be sound.
        let violations = md.validate();
        if violations.iter().any(|v| v.kind.is_error()) {
            return Err(QuarryError::Integrate(IntegrateError::InvalidResult(
                violations.iter().map(ToString::to_string).collect(),
            )));
        }
        etl.validate().map_err(|e| QuarryError::Integrate(IntegrateError::MalformedPartial(e.to_string())))?;
        md.stamp_requirement(requirement_id);
        etl.stamp_requirement(requirement_id);

        self.repository.record_marker(&format!("step:add_partial_design:{requirement_id}"))?;
        self.repository.put_artifact(
            ArtifactKind::MdSchema,
            &format!("partial-{requirement_id}"),
            &quarry_formats::xmd::to_string(&md),
        )?;
        self.repository.put_artifact(
            ArtifactKind::EtlFlow,
            &format!("partial-{requirement_id}"),
            &quarry_formats::xlm::to_string(&etl),
        )?;
        self.repository.link_requirement(
            requirement_id,
            ArtifactKind::MdSchema,
            &format!("partial-{requirement_id}"),
        )?;
        self.repository.link_requirement(
            requirement_id,
            ArtifactKind::EtlFlow,
            &format!("partial-{requirement_id}"),
        )?;

        let md_result = self.consolidation.md_step(&self.unified_md, &md, self.config.md_cost.as_ref())?;
        let etl_report = self.consolidation.etl_step(
            &mut self.unified_etl,
            &etl,
            self.config.etl_cost.as_ref(),
            &self.config.stats,
            self.config.etl_options,
        )?;
        self.unified_md = md_result.schema;
        // Record a marker requirement so lifecycle bookkeeping (removal,
        // listing) treats the external design like any other.
        self.requirements.insert(requirement_id.to_string(), Requirement::new(requirement_id));
        self.persist_unified()?;
        let warnings = self.unified_md.validate();
        Ok(DesignUpdate {
            requirement_id: requirement_id.to_string(),
            md_cost: md_result.report.cost,
            etl_cost: etl_report.cost,
            md_report: Some(md_result.report),
            etl_report: Some(etl_report),
            warnings,
        })
    }

    /// Removes a requirement: every design element serving only it is
    /// pruned, then the shrunken design is re-validated and persisted. The
    /// step is transactional: if the pruned design fails validation, the
    /// previous unified design (including traceability links) is restored.
    pub fn remove_requirement(&mut self, id: &str) -> Result<DesignUpdate, QuarryError> {
        if !self.requirements.contains_key(id) {
            return Err(QuarryError::UnknownRequirement(id.to_string()));
        }
        let step = self.obs.span("remove_requirement");
        step.attr("requirement", id);
        let result = self.remove_requirement_phases(id);
        if result.is_err() {
            step.attr("rolled_back", 1i64);
        }
        self.finish_step(step, &result);
        result
    }

    fn remove_requirement_phases(&mut self, id: &str) -> Result<DesignUpdate, QuarryError> {
        self.repository.record_marker(&format!("step:remove_requirement:{id}"))?;
        let snapshot = self.snapshot(id);
        self.requirements.remove(id);
        {
            let _phase = self.obs.span("retract");
            self.unified_md.retract_requirement(id);
            self.unified_etl.retract_requirement(id);
            self.repository.unlink_requirement(id)?;
            // Retraction splices the flow outside an integration step, so the
            // maintained ETL index no longer describes it.
            self.consolidation.invalidate();
        }

        let phase = self.obs.span("validate");
        let violations = self.unified_md.validate();
        phase.attr("warnings", violations.len());
        drop(phase);
        if violations.iter().any(|v| v.kind.is_error()) {
            self.restore(snapshot, id)?;
            return Err(QuarryError::Integrate(IntegrateError::InvalidResult(
                violations.iter().map(ToString::to_string).collect(),
            )));
        }
        if self.unified_etl.op_count() > 0 {
            if let Err(e) = self.unified_etl.validate() {
                self.restore(snapshot, id)?;
                return Err(QuarryError::Integrate(IntegrateError::InvalidResult(vec![e.to_string()])));
            }
        }
        self.persist_unified()?;
        Ok(DesignUpdate {
            requirement_id: id.to_string(),
            md_cost: self.config.md_cost.cost(&self.unified_md),
            etl_cost: self.config.etl_cost.cost(&self.unified_etl, &self.config.stats).unwrap_or_default(),
            warnings: violations,
            ..DesignUpdate::default()
        })
    }

    /// Changes a requirement: retract the old version, integrate the new one
    /// (same id). Transactional: if the replacement is rejected at any phase
    /// (interpretation, integration, validation), the pre-change design —
    /// unified MD schema, unified ETL flow, requirement set, and traceability
    /// links — is restored, so a failed change leaves no partial state.
    pub fn change_requirement(&mut self, req: Requirement) -> Result<DesignUpdate, QuarryError> {
        if !self.requirements.contains_key(&req.id) {
            return Err(QuarryError::UnknownRequirement(req.id.clone()));
        }
        let id = req.id.clone();
        let step = self.obs.span("change_requirement");
        step.attr("requirement", id.as_str());
        let snapshot = self.snapshot(&id);
        let mut result = self.remove_requirement(&id).and_then(|_| self.add_requirement(req));
        if let Err(e) = result {
            step.attr("rolled_back", 1i64);
            // A rollback that itself fails (durable-log I/O) outranks the
            // original rejection — the caller must know state may be partial.
            result = self.restore(snapshot, &id).and(Err(e));
        }
        self.finish_step(step, &result);
        result
    }

    /// Captures everything a failed lifecycle step must roll back: the live
    /// design state plus the requirement's traceability links. Repository
    /// artifact *versions* are deliberately not rolled back — the store is
    /// append-only history, and a rejected attempt is part of that history.
    fn snapshot(&self, id: &str) -> DesignSnapshot {
        DesignSnapshot {
            md: self.unified_md.clone(),
            etl: self.unified_etl.clone(),
            requirements: self.requirements.clone(),
            links: self.repository.links_for(id),
        }
    }

    /// Restores live state unconditionally; the repository writes that make
    /// the rollback durable (re-linking, re-persisting, and the rollback
    /// marker in the log) can fail in durable mode and surface as `Store`.
    fn restore(&mut self, snapshot: DesignSnapshot, id: &str) -> Result<(), QuarryError> {
        self.consolidation.invalidate();
        self.unified_md = snapshot.md;
        self.unified_etl = snapshot.etl;
        self.requirements = snapshot.requirements;
        self.repository.record_marker(&format!("rollback:{id}"))?;
        self.repository.unlink_requirement(id)?;
        for (kind, key) in &snapshot.links {
            if let Some(kind) = ArtifactKind::parse(kind) {
                self.repository.link_requirement(id, kind, key)?;
            }
        }
        self.persist_unified()?;
        Ok(())
    }

    /// Runs the cost-based flow optimizer over the unified ETL flow: a
    /// simulated-annealing search across semantically-equivalent rewrites
    /// (selection placement, join-spine order, projection pruning, duplicate
    /// merging), scored by the engine-aware execution-time model rescaled
    /// with any cardinalities observed by prior runs (see
    /// [`Quarry::observe_run`]). The swap is transactional: either a
    /// canonical, validated, strictly-cheaper flow replaces the unified one
    /// — with the consolidation index invalidated and the new design
    /// persisted — or the design is left untouched.
    pub fn optimize(&mut self) -> Result<OptimizeReport, QuarryError> {
        let step = self.obs.span("optimize");
        let result = self.optimize_phases();
        if let Ok(report) = &result {
            step.attr("applied", i64::from(report.applied));
            step.attr("cost_before", report.before_cost);
            step.attr("cost_after", report.after_cost);
            step.attr("moves_proposed", report.proposed as i64);
            step.attr("moves_accepted", report.accepted as i64);
        }
        self.finish_step(step, &result);
        result
    }

    fn optimize_phases(&mut self) -> Result<OptimizeReport, QuarryError> {
        self.repository.record_marker("step:optimize")?;
        // The native engine is columnar, so the optimizer scores with the
        // engine-aware weight preset (which also prices column width,
        // unlocking projection-pruning moves).
        let model = EstimatedTime { weights: TimeWeights::columnar() };
        let opts = self.config.optimizer.anneal_options();
        let started = Instant::now();
        // The result cache makes the subflows it holds near-free on the next
        // run, and committing a rewrite invalidates every entry — so the
        // commit comparison discounts whatever the cache would serve. The
        // discount walks like the executor's prepass: from the sinks down,
        // a cached op contributes its cone's modeled cost and is not
        // descended into, so overlapping cones are never double-counted.
        let cache = Arc::clone(&self.result_cache);
        let epoch = self.consolidation.flow_epoch();
        let stats_probe = self.config.stats.clone();
        let sources = self.last_source_epochs.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let discount = move |flow: &Flow| -> f64 {
            if !cache.enabled() || cache.stats().entries == 0 {
                return 0.0;
            }
            let source_epoch = |name: &str| sources.get(name).copied().unwrap_or(0);
            let Ok(plan) = CachePlan::for_flow(flow, &stats_probe, epoch, &source_epoch) else {
                return 0.0;
            };
            let Ok(order) = flow.topo_order() else {
                return 0.0;
            };
            let mut needed = std::collections::HashSet::new();
            let mut saved = 0.0;
            for id in order.iter().rev() {
                let op = flow.op(*id);
                if op.kind.is_sink() {
                    needed.insert(*id);
                }
                if !needed.contains(id) {
                    continue;
                }
                if plan.fingerprint(*id).is_some_and(|fp| cache.peek(fp)) {
                    saved += plan.saved_cost(*id);
                    continue;
                }
                for input in flow.inputs_of(*id) {
                    needed.insert(input);
                }
            }
            saved
        };
        let report =
            optimize_flow_with_discount(&mut self.unified_etl, &mut self.config.stats, model, &opts, &discount)?;
        self.metrics.optimize_seconds.observe(started.elapsed().as_secs_f64());
        self.metrics.optimizer_runs.inc();
        self.metrics.optimizer_moves_proposed.add(report.proposed);
        self.metrics.optimizer_moves_accepted.add(report.accepted);
        if report.applied {
            self.metrics.optimizer_applied.inc();
            // The rewritten flow was mutated outside an integration step, so
            // the maintained index no longer describes it.
            self.consolidation.invalidate();
            self.persist_unified()?;
        }
        Ok(report)
    }

    /// Feeds a run's measured per-operation cardinalities back into the
    /// configured source statistics ([`RunReport::observe_into`]): later
    /// optimizations and integrations then estimate with what the engine
    /// actually observed instead of static selectivity guesses. This is the
    /// correction the drift analyzer asks for — once the observations land,
    /// re-runs estimate close to actual and the `obs.drift.*` flags decay.
    /// Observations route through the canonical op fingerprint: a timing is
    /// folded only when the op name still exists in the unified flow *and*
    /// its semantic signature matches what the run executed. After an
    /// optimizer commit (or a requirement change) rewrites an operation
    /// under a surviving name, that op's stale observation is dropped
    /// instead of pinning the rewritten op's estimates to the old reality.
    pub fn observe_run(&mut self, report: &RunReport) {
        let recorded = {
            let fps = self.run_fingerprints.lock().unwrap_or_else(|p| p.into_inner());
            fps.clone()
        };
        for t in &report.timings {
            let Some(op) = self.unified_etl.op_by_name(&t.op) else {
                continue; // the op no longer exists: nothing to pin
            };
            if let Some(&fp) = recorded.get(&t.op) {
                if fp != op_fingerprint(&op.kind) {
                    continue; // rewritten since the run: the observation is stale
                }
            }
            if t.rows_in > 0 {
                self.config.stats.observe_op_io(&t.op, t.rows_in as f64, t.rows_out as f64);
            } else {
                self.config.stats.observe_op(&t.op, t.rows_out as f64);
            }
        }
    }

    /// Samples the drift analyzer with a run's estimated-vs-actual
    /// per-operator cardinalities. Runs on every execution (not on
    /// [`Quarry::observe_run`]): a plan that keeps executing on stale
    /// estimates keeps accumulating evidence, and once an operator's median
    /// misestimate exceeds the threshold it is flagged in `obs.drift.*` and
    /// the flight recorder until a correction is observed.
    fn digest_drift(&self, report: &RunReport) {
        let Ok(estimates) = cardinality_state(&self.unified_etl, &self.config.stats) else {
            return;
        };
        let mut sampled = false;
        for t in &report.timings {
            if let Some(op) = self.unified_etl.op_by_name(&t.op) {
                if let Some(&(rows, _)) = estimates.get(&op.id) {
                    self.drift.sample(&t.op, rows, t.rows_out as f64);
                    sampled = true;
                }
            }
        }
        if !sampled {
            return;
        }
        let recorder = flight::recorder();
        for op in self.drift.report().flagged() {
            recorder.record_named(EventKind::Drift, &op.op, 0, op.last_estimated as i64, op.last_actual as i64);
        }
    }

    /// The estimate-drift analyzer's current view: per-operator median
    /// misestimate ratios over a recent window, flagged outliers first.
    pub fn drift_report(&self) -> DriftReport {
        self.drift.report()
    }

    /// Cumulative consolidation-index traffic (ETL index hits/misses/rebuilds
    /// and MD lookup-map hits/misses) since this instance was created.
    pub fn consolidation_stats(&self) -> ConsolidationStats {
        self.consolidation.stats()
    }

    /// Closes a lifecycle-step span (tagging it with the error, if any) and
    /// versions the accumulated trace in the repository.
    fn finish_step<T>(&self, step: Span, result: &Result<T, QuarryError>) {
        if let Err(e) = result {
            step.attr("error", e.to_string());
        }
        drop(step);
        self.persist_trace();
    }

    /// Persists the current trace as a versioned repository document under
    /// [`TRACE_KEY`] — one version per completed lifecycle step. Traces are
    /// advisory, so a durable-log failure here is counted, not raised.
    fn persist_trace(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        let trace = self.obs.trace();
        if trace.is_empty() {
            return;
        }
        let doc = crate::tracedoc::trace_to_json(&trace);
        if self.repository.put_artifact(ArtifactKind::Trace, TRACE_KEY, &doc.to_pretty_string()).is_err() {
            self.obs.counter("repository.trace_persist_failures").inc();
        }
    }

    fn persist_unified(&self) -> Result<(), QuarryError> {
        self.repository.put_artifact(
            ArtifactKind::MdSchema,
            &self.config.design_name,
            &quarry_formats::xmd::to_string(&self.unified_md),
        )?;
        self.repository.put_artifact(
            ArtifactKind::EtlFlow,
            &self.config.design_name,
            &quarry_formats::xlm::to_string(&self.unified_etl),
        )?;
        // Every site that commits a new unified design persists here, so this
        // one marker keeps the durable log's flow epoch current: recovery
        // fast-forwards past it and a restart never serves pre-commit hits.
        self.repository.record_marker(&format!("{CACHE_EPOCH_MARKER}{}", self.consolidation.flow_epoch()))?;
        Ok(())
    }

    // ---- deployment & execution -----------------------------------------------

    /// Generates deployment artifacts for a registered platform and records
    /// them in the repository.
    pub fn deploy(&self, platform: &str) -> Result<DeploymentArtifacts, QuarryError> {
        let step = self.obs.span("deploy");
        step.attr("platform", platform);
        let result = self
            .platforms
            .deploy(platform, &self.unified_md, &self.unified_etl)
            .map_err(QuarryError::Deploy)
            .and_then(|artifacts| {
                for (name, content) in &artifacts.files {
                    self.repository.put_artifact(ArtifactKind::Deployment, &format!("{platform}/{name}"), content)?;
                }
                step.attr("files", artifacts.files.len());
                step.attr("bytes", artifacts.files.iter().map(|(_, c)| c.len()).sum::<usize>());
                Ok(artifacts)
            });
        self.finish_step(step, &result);
        result
    }

    /// Runs the unified ETL flow on the embedded engine over `catalog`,
    /// returning the populated engine and the run report. This is the
    /// "native" execution platform.
    pub fn run_etl(&self, catalog: Catalog) -> Result<(Engine, RunReport), QuarryError> {
        self.run_etl_impl(catalog, false)
    }

    /// Like [`Quarry::run_etl`] but with inter-operator parallelism layered
    /// on the engine's morsel parallelism: operations whose inputs are ready
    /// execute concurrently on the shared worker pool. Results are identical.
    pub fn run_etl_parallel(&self, catalog: Catalog) -> Result<(Engine, RunReport), QuarryError> {
        self.run_etl_impl(catalog, true)
    }

    fn run_etl_impl(&self, catalog: Catalog, parallel: bool) -> Result<(Engine, RunReport), QuarryError> {
        let step = self.obs.span("execute");
        step.attr("mode", if parallel { "parallel" } else { "serial" });
        let mut engine = crate::native::deploy(&self.unified_md, catalog);
        self.install_result_cache(&mut engine);
        let kernels_before = KernelDelta::snapshot();
        let run = if parallel { engine.run_parallel(&self.unified_etl) } else { engine.run(&self.unified_etl) };
        let kernels_after = KernelDelta::snapshot();
        let result = match run {
            Ok(report) => {
                self.remember_run_fingerprints();
                self.record_run(&step, &report);
                let profile = ExecutionProfile::capture(
                    &self.unified_etl,
                    &report,
                    &self.config.stats,
                    parallel,
                    kernels_before,
                    kernels_after,
                );
                self.persist_profile(&profile);
                self.digest_drift(&report);
                Ok((engine, report))
            }
            Err(e) => Err(QuarryError::Engine(e)),
        };
        self.finish_step(step, &result);
        result
    }

    /// Versions a run's execution profile in the repository under the design
    /// name — the document behind `explain --analyze` and `GET /profile`.
    /// Profiles are advisory like traces: a durable-log failure here is
    /// counted, not raised.
    fn persist_profile(&self, profile: &ExecutionProfile) {
        let doc = profile.to_json().to_pretty_string();
        if self.repository.put_artifact(ArtifactKind::Profile, &self.config.design_name, &doc).is_err() {
            self.obs.counter("repository.profile_persist_failures").inc();
        }
    }

    /// Lifts the engine's per-operator timings and row counts out of the
    /// [`RunReport`] into the execute span (one child per operator) and the
    /// metrics registry.
    fn record_run(&self, step: &Span, report: &RunReport) {
        if !self.obs.is_enabled() {
            return;
        }
        step.attr("ops", report.timings.len());
        step.attr("rows_processed", report.rows_processed);
        step.attr("total_us", report.total.as_micros() as i64);
        for t in &report.timings {
            self.obs.record_span(
                &t.op,
                t.elapsed,
                vec![
                    ("kind".into(), quarry_obs::AttrValue::Str(t.kind.to_string())),
                    ("rows_in".into(), quarry_obs::AttrValue::Int(t.rows_in as i64)),
                    ("rows_out".into(), quarry_obs::AttrValue::Int(t.rows_out as i64)),
                    ("worker".into(), quarry_obs::AttrValue::Int(t.worker as i64)),
                ],
            );
            self.metrics.engine_op_seconds.observe(t.elapsed.as_secs_f64());
        }
        self.metrics.engine_runs.inc();
        self.metrics.engine_ops.add(report.timings.len() as u64);
        self.metrics.engine_rows.add(report.rows_processed as u64);
    }

    /// [`Quarry::run_etl_parallel`] pinned to a specific worker count
    /// (process-wide, persists for later runs). `threads = 1` executes the
    /// whole flow inline; benchmark scaling series sweep this knob.
    pub fn run_etl_parallel_with_threads(
        &self,
        catalog: Catalog,
        threads: usize,
    ) -> Result<(Engine, RunReport), QuarryError> {
        quarry_engine::pool::set_threads(threads);
        self.run_etl_parallel(catalog)
    }

    // ---- result cache ---------------------------------------------------------

    /// Installs the cross-run result cache on `engine` for the unified flow:
    /// purges entries from older flow epochs, then keys this run's plan on
    /// the current epoch plus per-source epochs mixed with the catalog's
    /// table stamps (data identity). A flow the plan cannot be computed for
    /// simply runs uncached.
    fn install_result_cache(&self, engine: &mut Engine) {
        if !self.config.cache.enabled || self.unified_etl.op_count() == 0 {
            return;
        }
        let epoch = self.consolidation.flow_epoch();
        self.result_cache.set_flow_epoch(epoch);
        let catalog = &engine.catalog;
        let source_epochs = &self.source_epochs;
        let source_epoch = move |name: &str| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            source_epochs.get(name).copied().unwrap_or(0).hash(&mut h);
            quarry_engine::table_stamp(catalog, name).hash(&mut h);
            h.finish()
        };
        // Resolve the per-source epochs first (cheap table stamps): they key
        // the optimizer's cache discount and the plan memo below.
        let mut resolved = HashMap::new();
        for op in self.unified_etl.ops() {
            if let quarry_etl::OpKind::Datastore { datastore, .. } = &op.kind {
                resolved.insert(datastore.clone(), source_epoch(datastore));
            }
        }
        // Reuse the memoized plan when nothing it depends on changed: same
        // flow epoch (which bumps on every design mutation), same flow
        // shape, same resolved source epochs. Otherwise rebuild.
        let reusable = {
            let memo = self.cached_plan.lock().unwrap_or_else(|p| p.into_inner());
            let last = self.last_source_epochs.lock().unwrap_or_else(|p| p.into_inner());
            memo.as_ref()
                .filter(|p| p.flow_epoch == epoch && *last == resolved && p.matches(&self.unified_etl))
                .cloned()
        };
        *self.last_source_epochs.lock().unwrap_or_else(|p| p.into_inner()) = resolved;
        let plan = match reusable {
            Some(plan) => Some(plan),
            None => CachePlan::for_flow(&self.unified_etl, &self.config.stats, epoch, &source_epoch).ok(),
        };
        if let Some(plan) = plan {
            *self.cached_plan.lock().unwrap_or_else(|p| p.into_inner()) = Some(plan.clone());
            engine.set_result_cache(Arc::clone(&self.result_cache), plan);
        }
    }

    /// Snapshots the unified flow's canonical per-op fingerprints right after
    /// a run, so a later [`Quarry::observe_run`] can tell whether an op name
    /// still denotes the operation the run actually measured.
    fn remember_run_fingerprints(&self) {
        let mut fps = self.run_fingerprints.lock().unwrap_or_else(|p| p.into_inner());
        fps.clear();
        for op in self.unified_etl.ops() {
            fps.insert(op.name.clone(), op_fingerprint(&op.kind));
        }
    }

    /// Current result-cache counters (entries, bytes, hit/miss/insert/evict
    /// traffic) — the numbers behind the CLI's `cache` command and the
    /// `engine.cache.*` metrics.
    pub fn cache_stats(&self) -> CacheStats {
        self.result_cache.stats()
    }

    /// Drops every cached subflow result (the budget and counters survive).
    pub fn clear_result_cache(&self) {
        self.result_cache.clear();
    }

    /// Declares that the datastore `source` was registered or mutated outside
    /// the engine's view: its per-source epoch is bumped, which re-keys (and
    /// thereby invalidates) every cached subflow reading it. Catalog-visible
    /// mutations are caught by table stamps even without this call.
    pub fn bump_source_epoch(&mut self, source: &str) {
        *self.source_epochs.entry(source.to_string()).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_formats::xrq::figure4_requirement;
    use quarry_formats::MeasureSpec;

    fn netprofit_requirement() -> Requirement {
        let mut req = Requirement::new("IR2");
        req.measures.push(MeasureSpec {
            id: "netprofit".into(),
            function: "Orders_o_totalpriceATRIBUT - Partsupp_ps_supplycostATRIBUT".into(),
        });
        req.dimensions.push("Part_p_nameATRIBUT".into());
        req.dimensions.push("Supplier_s_nameATRIBUT".into());
        req
    }

    #[test]
    fn add_requirement_builds_the_initial_design() {
        let mut q = Quarry::tpch();
        let update = q.add_requirement(figure4_requirement()).unwrap();
        assert_eq!(update.requirement_id, "IR1");
        assert!(update.md_cost > 0.0);
        let (md, etl) = q.unified();
        assert_eq!(md.facts.len(), 1);
        assert!(etl.op_count() > 5);
        assert_eq!(q.requirement_ids(), ["IR1"]);
    }

    #[test]
    fn duplicate_requirements_are_rejected() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        assert!(matches!(q.add_requirement(figure4_requirement()), Err(QuarryError::DuplicateRequirement(_))));
    }

    #[test]
    fn second_requirement_reuses_conformed_dimensions() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let update = q.add_requirement(netprofit_requirement()).unwrap();
        let md_report = update.md_report.expect("integration ran");
        assert!(!md_report.matches.is_empty(), "Part/Supplier dimensions must be matched: {:?}", md_report.matches);
        let etl_report = update.etl_report.expect("integration ran");
        assert!(etl_report.reused_ops > 0, "source extractions must be shared");
        let (md, _) = q.unified();
        assert_eq!(md.dimensions.len(), 2, "conformed Part and Supplier");
        assert!(md.satisfied_requirements().contains("IR1") && md.satisfied_requirements().contains("IR2"));
    }

    #[test]
    fn remove_requirement_prunes_exclusive_elements() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        q.add_requirement(netprofit_requirement()).unwrap();
        let before_ops = q.unified().1.op_count();
        q.remove_requirement("IR2").unwrap();
        let (md, etl) = q.unified();
        assert_eq!(md.facts.len(), 1, "netprofit fact gone");
        assert!(md.fact("fact_table_revenue").is_some());
        assert!(etl.op_count() < before_ops);
        assert!(!md.satisfied_requirements().contains("IR2"));
        // The remaining design still validates and deploys.
        q.deploy("postgres-pdi").unwrap();
    }

    #[test]
    fn removing_the_last_requirement_empties_the_design() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        q.remove_requirement("IR1").unwrap();
        let (md, etl) = q.unified();
        assert!(md.facts.is_empty() && md.dimensions.is_empty());
        assert_eq!(etl.op_count(), 0);
    }

    #[test]
    fn unknown_removal_and_change_are_rejected() {
        let mut q = Quarry::tpch();
        assert!(matches!(q.remove_requirement("IRX"), Err(QuarryError::UnknownRequirement(_))));
        assert!(matches!(q.change_requirement(figure4_requirement()), Err(QuarryError::UnknownRequirement(_))));
    }

    #[test]
    fn change_requirement_replaces_in_place() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let mut v2 = figure4_requirement();
        v2.slicers.clear(); // drop the Spain filter
        q.change_requirement(v2).unwrap();
        let (_, etl) = q.unified();
        assert!(
            !etl.ops().any(|o| o.name.contains("SELECTION_1_n_name")),
            "slicer selection must disappear after the change"
        );
        assert_eq!(q.requirement_ids(), ["IR1"]);
    }

    #[test]
    fn failed_change_rolls_back_to_the_exact_previous_design() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        q.add_requirement(netprofit_requirement()).unwrap();
        let md_before = quarry_formats::xmd::to_string(q.unified().0);
        let etl_before = quarry_formats::xlm::to_string(q.unified().1);
        let req_before = q.requirement("IR2").unwrap().clone();
        let links_before = q.repository().links_for("IR2");

        // The replacement keeps the id but references a non-existent source
        // attribute, so interpretation rejects it mid-change (after the old
        // version has already been retracted internally).
        let mut broken = Requirement::new("IR2");
        broken.measures.push(MeasureSpec { id: "m".into(), function: "Ghost_xATRIBUT".into() });
        broken.dimensions.push("Part_p_nameATRIBUT".into());
        assert!(matches!(q.change_requirement(broken), Err(QuarryError::Interpret(_))));

        // Bit-identical design state: same serialized artifacts, same
        // requirement set, same traceability links.
        assert_eq!(quarry_formats::xmd::to_string(q.unified().0), md_before);
        assert_eq!(quarry_formats::xlm::to_string(q.unified().1), etl_before);
        assert_eq!(q.requirement_ids(), ["IR1", "IR2"]);
        assert_eq!(*q.requirement("IR2").unwrap(), req_before);
        assert_eq!(q.repository().links_for("IR2"), links_before);
        // The restored design still validates and deploys.
        q.deploy("postgres-pdi").unwrap();
    }

    #[test]
    fn failed_change_restores_the_persisted_unified_artifacts() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let mut broken = figure4_requirement();
        broken.measures[0].function = "Ghost_xATRIBUT".into();
        assert!(q.change_requirement(broken).is_err());
        // The latest persisted unified schema matches the live (restored) one.
        let stored = q.repository().latest(ArtifactKind::MdSchema, "unified").unwrap();
        assert_eq!(stored.content, quarry_formats::xmd::to_string(q.unified().0));
    }

    #[test]
    fn invalid_requirements_do_not_touch_the_design() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let before = q.unified().0.clone();
        let mut bad = Requirement::new("IRB");
        bad.measures.push(MeasureSpec { id: "m".into(), function: "Ghost_xATRIBUT".into() });
        bad.dimensions.push("Part_p_nameATRIBUT".into());
        assert!(matches!(q.add_requirement(bad), Err(QuarryError::Interpret(_))));
        assert_eq!(*q.unified().0, before);
        assert_eq!(q.requirement_ids(), ["IR1"]);
    }

    #[test]
    fn repository_records_the_full_history() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        q.add_requirement(netprofit_requirement()).unwrap();
        let repo = q.repository();
        assert_eq!(repo.keys(ArtifactKind::Requirement), ["IR1", "IR2"]);
        assert_eq!(repo.history(ArtifactKind::MdSchema, "unified").len(), 2, "one version per step");
        assert!(repo.latest(ArtifactKind::Ontology, "domain").is_ok());
        assert_eq!(repo.links_for("IR1").len(), 2);
        // The stored unified xMD parses back to the live design.
        let stored = repo.latest(ArtifactKind::MdSchema, "unified").unwrap();
        let parsed = quarry_formats::xmd::parse(&stored.content).unwrap();
        assert_eq!(parsed, *q.unified().0);
    }

    #[test]
    fn sql_exporter_is_registered() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let md = quarry_formats::registry::Artifact::Md(q.unified().0.clone());
        let ddl = q.formats().export("sql", &md).unwrap();
        assert!(ddl.contains("CREATE TABLE fact_table_revenue"));
        let etl = quarry_formats::registry::Artifact::Etl(q.unified().1.clone());
        let script = q.formats().export("sql", &etl).unwrap();
        assert!(script.contains("INSERT INTO fact_table_revenue"), "{script}");
        assert!(script.contains("WITH "));
    }

    #[test]
    fn deploy_produces_and_records_artifacts() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let artifacts = q.deploy("postgres-pdi").unwrap();
        let sql = artifacts.file("schema.sql").unwrap();
        assert!(sql.contains("CREATE TABLE fact_table_revenue"));
        assert!(q.repository().latest(ArtifactKind::Deployment, "postgres-pdi/schema.sql").is_ok());
    }

    #[test]
    fn run_etl_populates_the_warehouse() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let catalog = quarry_engine::tpch::generate(0.002, 42);
        let (engine, report) = q.run_etl(catalog).unwrap();
        assert!(report.rows_loaded("fact_table_revenue") > 0, "Spain rows exist at sf 0.002");
        assert!(engine.catalog.get("dim_part").is_some());
        assert!(engine.catalog.get("dim_supplier").is_some());
        let fact = engine.catalog.get("fact_table_revenue").unwrap();
        assert_eq!(fact.schema.names().collect::<Vec<_>>(), ["Part_PartID", "Supplier_SupplierID", "revenue"]);
    }

    #[test]
    fn engine_kernel_and_radix_stats_surface_in_metrics() {
        let mut q = Quarry::tpch();
        q.set_observability(true);
        q.add_requirement(figure4_requirement()).unwrap();
        q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
        let metrics = q.observability().metrics();
        let find = |name: &str| metrics.iter().find(|(n, _)| n == name).map(|(_, m)| m);
        let vectorized = find("engine.kernel.vectorized").and_then(Metric::as_counter);
        assert!(vectorized.unwrap() > 0, "the TPC-H flow must hit vectorized kernels");
        assert!(find("engine.kernel.scalar_fallback").and_then(Metric::as_counter).is_some());
        let Some(Metric::Histogram(h)) = find("engine.join.radix_partitions") else {
            panic!("radix-partition histogram missing after a flow with joins");
        };
        assert!(h.count > 0, "the TPC-H flow runs joins");
        assert!(!h.buckets.is_empty());
        assert!(h.min.unwrap() >= 1.0 && h.max.unwrap() >= h.min.unwrap());
    }

    /// Unique scratch directory for durable-repository tests, removed on drop.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!("quarry-core-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn durable_tpch(dir: &std::path::Path) -> Quarry {
        let domain = quarry_ontology::tpch::domain();
        let mut cfg = QuarryConfig::tpch(0.01);
        cfg.repository_dir = Some(dir.to_path_buf());
        cfg.fsync = quarry_repository::FsyncPolicy::Always;
        Quarry::with_config(domain.ontology, domain.sources, cfg)
    }

    #[test]
    fn durable_lifecycle_survives_restart() {
        let tmp = TempDir::new("restart");
        let (md_before, etl_before, links_before, bytes_before);
        {
            let mut q = durable_tpch(&tmp.0);
            assert!(q.repository().is_durable());
            q.add_requirement(figure4_requirement()).unwrap();
            md_before = q.repository().latest(ArtifactKind::MdSchema, "unified").unwrap();
            etl_before = q.repository().latest(ArtifactKind::EtlFlow, "unified").unwrap();
            links_before = q.repository().links_for("IR1");
            bytes_before = q.repository().with_store(quarry_repository::snapshot::snapshot_bytes);
        }
        // Read-only recovery reconstructs the exact same store from disk.
        let (recovered, report) = quarry_repository::recover(&tmp.0).unwrap();
        assert_eq!(quarry_repository::snapshot::snapshot_bytes(&recovered), bytes_before);
        assert!(report.records_replayed > 0);
        assert!(report.markers.iter().any(|m| m == "step:add_requirement:IR1"), "{:?}", report.markers);
        // A new instance over the same directory sees the full history.
        let q2 = durable_tpch(&tmp.0);
        let report = q2.repository().recovery_report().expect("reopened from disk");
        assert!(report.records_replayed > 0);
        assert_eq!(q2.repository().latest(ArtifactKind::MdSchema, "unified").unwrap(), md_before);
        assert_eq!(q2.repository().latest(ArtifactKind::EtlFlow, "unified").unwrap(), etl_before);
        assert_eq!(q2.repository().links_for("IR1"), links_before);
        assert!(!links_before.is_empty());
    }

    #[test]
    fn failed_change_rollback_is_durable_across_restart() {
        let tmp = TempDir::new("rollback");
        let (md_after_rollback, bytes_after_rollback);
        {
            let mut q = durable_tpch(&tmp.0);
            q.add_requirement(figure4_requirement()).unwrap();
            let mut broken = figure4_requirement();
            broken.measures[0].function = "Ghost_xATRIBUT".into();
            assert!(matches!(q.change_requirement(broken), Err(QuarryError::Interpret(_))));
            md_after_rollback = q.repository().latest(ArtifactKind::MdSchema, "unified").unwrap();
            bytes_after_rollback = q.repository().with_store(quarry_repository::snapshot::snapshot_bytes);
        }
        let (recovered, report) = quarry_repository::recover(&tmp.0).unwrap();
        assert_eq!(quarry_repository::snapshot::snapshot_bytes(&recovered), bytes_after_rollback);
        assert!(report.markers.iter().any(|m| m == "rollback:IR1"), "{:?}", report.markers);
        // The restored design survives the restart and still accepts work.
        let mut q2 = durable_tpch(&tmp.0);
        assert_eq!(q2.repository().latest(ArtifactKind::MdSchema, "unified").unwrap(), md_after_rollback);
        q2.add_requirement(netprofit_requirement()).unwrap();
        assert!(q2.repository().latest(ArtifactKind::Requirement, "IR2").is_ok());
    }

    #[test]
    fn optimize_keeps_the_design_sound_and_the_warehouse_identical() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        q.add_requirement(netprofit_requirement()).unwrap();
        let before_flow = q.unified().1.clone();
        let catalog = quarry_engine::tpch::generate(0.002, 42);
        let (baseline, _) = q.run_etl(catalog.clone()).unwrap();

        let report = q.optimize().unwrap();
        assert!(report.before_cost > 0.0 && report.after_cost <= report.before_cost);
        if report.applied {
            assert_ne!(*q.unified().1, before_flow);
        } else {
            assert_eq!(*q.unified().1, before_flow);
        }
        q.unified().1.validate().unwrap();

        // Whatever the optimizer did, the warehouse is bit-identical.
        let (optimized, _) = q.run_etl(catalog).unwrap();
        for table in ["fact_table_revenue", "fact_table_netprofit", "dim_part", "dim_supplier"] {
            assert_eq!(
                format!("{}", baseline.catalog.get(table).unwrap()),
                format!("{}", optimized.catalog.get(table).unwrap()),
                "{table} must be unchanged by optimization"
            );
        }
        // A later integration step still works (the index rebuilds).
        q.remove_requirement("IR2").unwrap();
        q.add_requirement(netprofit_requirement()).unwrap();
    }

    #[test]
    fn observe_run_feeds_the_source_statistics() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let (_, report) = q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
        let gen_before = q.config().stats.generation();
        q.observe_run(&report);
        assert!(q.config().stats.generation() > gen_before, "observations must invalidate cached cardinalities");
        assert!(
            report.timings.iter().any(|t| q.config().stats.observed_op(&t.op).is_some()),
            "at least one timed operation must be recorded"
        );
        // The optimizer runs fine with observed statistics in place.
        let opt = q.optimize().unwrap();
        assert!(opt.after_cost <= opt.before_cost);
    }

    #[test]
    fn observe_run_routes_through_canonical_fingerprints() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let (_, report) = q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
        // Rewrite the slicer under the same op name: France instead of Spain.
        // The selection keeps its name but its predicate — and therefore its
        // canonical fingerprint — changes.
        let mut v2 = figure4_requirement();
        v2.slicers[0].value = "France".into();
        q.change_requirement(v2).unwrap();
        let sel = q
            .unified()
            .1
            .ops()
            .find(|o| o.name.contains("SELECTION") && o.name.contains("n_name"))
            .expect("the slicer selection survives the change")
            .name
            .clone();
        assert!(report.timings.iter().any(|t| t.op == sel), "the old run timed the selection");

        q.observe_run(&report);
        assert!(
            q.config().stats.observed_op(&sel).is_none() && q.config().stats.observed_selectivity(&sel).is_none(),
            "a stale observation must not fold into the rewritten `{sel}`"
        );
        assert!(
            report.timings.iter().any(|t| q.config().stats.observed_op(&t.op).is_some()),
            "untouched operations still fold"
        );
    }

    #[test]
    fn observe_run_after_an_optimizer_commit_skips_rewritten_ops() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        q.add_requirement(netprofit_requirement()).unwrap();
        let (_, report) = q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
        let fingerprints_before: std::collections::HashMap<String, u64> =
            q.unified().1.ops().map(|o| (o.name.clone(), op_fingerprint(&o.kind))).collect();
        let opt = q.optimize().unwrap();
        q.observe_run(&report);
        for t in &report.timings {
            let Some(op) = q.unified().1.op_by_name(&t.op) else { continue };
            if fingerprints_before.get(&t.op) != Some(&op_fingerprint(&op.kind)) {
                assert!(opt.applied, "an op only changes under a commit");
                assert!(
                    q.config().stats.observed_op(&t.op).is_none()
                        && q.config().stats.observed_selectivity(&t.op).is_none(),
                    "`{}` was rewritten by the commit; its stale observation must be dropped",
                    t.op
                );
            }
        }
        // The run itself still contributed: at least one surviving op folded.
        assert!(report.timings.iter().any(|t| q.config().stats.observed_op(&t.op).is_some()));
    }

    #[test]
    fn repeated_runs_hit_the_result_cache_with_identical_output() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let catalog = quarry_engine::tpch::generate(0.002, 42);
        let (cold, _) = q.run_etl(catalog.clone()).unwrap();
        let stats = q.cache_stats();
        assert!(stats.enabled && stats.inserts > 0, "the cold run must populate the cache: {stats:?}");
        let (warm, _) = q.run_etl(catalog.clone()).unwrap();
        assert!(q.cache_stats().hits > stats.hits, "the warm run must hit");
        assert_eq!(
            cold.catalog.get("fact_table_revenue").unwrap(),
            warm.catalog.get("fact_table_revenue").unwrap(),
            "cache-served output is bit-identical"
        );
        // An explicit source-epoch bump re-keys every subflow reading that
        // source: bumping all of them leaves nothing stale to hit.
        let hits_before = q.cache_stats().hits;
        let sources: Vec<String> = q
            .unified()
            .1
            .ops()
            .filter_map(|o| match &o.kind {
                quarry_etl::OpKind::Datastore { datastore, .. } => Some(datastore.clone()),
                _ => None,
            })
            .collect();
        for s in &sources {
            q.bump_source_epoch(s);
        }
        let (bumped, _) = q.run_etl(catalog).unwrap();
        assert_eq!(q.cache_stats().hits, hits_before, "bumped source epochs must miss");
        assert_eq!(cold.catalog.get("fact_table_revenue").unwrap(), bumped.catalog.get("fact_table_revenue").unwrap());
    }

    #[test]
    fn integration_steps_invalidate_the_result_cache_via_the_flow_epoch() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let catalog = quarry_engine::tpch::generate(0.002, 42);
        q.run_etl(catalog.clone()).unwrap();
        let hits_before = q.cache_stats().hits;
        // Integrating a second requirement bumps the flow epoch: the next
        // run's fingerprints are all re-keyed, so nothing stale can hit.
        q.add_requirement(netprofit_requirement()).unwrap();
        q.run_etl(catalog).unwrap();
        assert_eq!(q.cache_stats().hits, hits_before, "post-commit run must not reuse pre-commit entries");
    }

    #[test]
    fn durable_restart_fast_forwards_the_cache_epoch() {
        let tmp = TempDir::new("cache-epoch");
        let epoch_before;
        {
            let mut q = durable_tpch(&tmp.0);
            q.add_requirement(figure4_requirement()).unwrap();
            q.add_requirement(netprofit_requirement()).unwrap();
            epoch_before = q.consolidation.flow_epoch();
            assert!(epoch_before >= 2, "each integration step advances the epoch");
        }
        let q = durable_tpch(&tmp.0);
        assert!(
            q.consolidation.flow_epoch() >= epoch_before,
            "recovery must fast-forward past every persisted commit ({} < {epoch_before})",
            q.consolidation.flow_epoch()
        );
    }

    #[test]
    fn enabled_optimizer_runs_inside_every_add_step() {
        let domain = quarry_ontology::tpch::domain();
        let mut cfg = QuarryConfig::tpch(0.01);
        cfg.optimizer.enabled = true;
        let mut q = Quarry::with_config(domain.ontology, domain.sources, cfg);
        q.set_observability(true);
        q.add_requirement(figure4_requirement()).unwrap();
        let metrics = q.observability().metrics();
        let runs = metrics
            .iter()
            .find(|(n, _)| n == "integrator.optimizer.runs")
            .and_then(|(_, m)| m.as_counter())
            .unwrap_or(0);
        assert!(runs >= 1, "optimizer.enabled must fold the optimizer into the add step");
        // The design stays usable afterwards.
        q.add_requirement(netprofit_requirement()).unwrap();
        q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
    }

    #[test]
    fn execution_profiles_version_in_the_repository_and_round_trip() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
        let first = q.repository().latest(ArtifactKind::Profile, "unified").unwrap();
        assert_eq!(first.version, 1);
        q.run_etl_parallel(quarry_engine::tpch::generate(0.002, 42)).unwrap();
        let second = q.repository().latest(ArtifactKind::Profile, "unified").unwrap();
        assert_eq!(second.version, 2, "every execution versions a new profile");
        // The stored document parses back and re-serializes bit-identically.
        let json = quarry_repository::Json::parse(&second.content).unwrap();
        let profile = ExecutionProfile::from_json(&json).expect("stored profile parses");
        assert!(profile.parallel, "second run was parallel");
        assert_eq!(profile.to_json().to_pretty_string(), second.content, "round-trip is bit-identical");
        // Estimated and actual cardinalities both survive, and the render
        // annotates the plan tree with them.
        assert!(profile.ops.iter().any(|op| op.estimated_rows > 0.0), "estimates present");
        assert!(profile.ops.iter().any(|op| op.rows_out > 0), "actuals present");
        let rendered = profile.render();
        assert!(rendered.contains("est "), "{rendered}");
        assert!(rendered.contains("LOADER_fact_table_revenue"), "{rendered}");
    }

    #[test]
    fn execution_profiles_survive_a_durable_restart_bit_identically() {
        let tmp = TempDir::new("profile");
        let stored;
        {
            let mut q = durable_tpch(&tmp.0);
            q.add_requirement(figure4_requirement()).unwrap();
            q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
            stored = q.repository().latest(ArtifactKind::Profile, "unified").unwrap();
        }
        let q2 = durable_tpch(&tmp.0);
        let recovered = q2.repository().latest(ArtifactKind::Profile, "unified").unwrap();
        assert_eq!(recovered, stored, "the profile recovers bit-identically from the log");
        let json = quarry_repository::Json::parse(&recovered.content).unwrap();
        assert!(ExecutionProfile::from_json(&json).is_some());
    }

    /// The annealing tests' three-table join spine, plus real data that
    /// contradicts stale statistics: the supplier table is claimed enormous
    /// but actually tiny, with a Spain filter keeping almost nothing.
    fn skewed_spine_flow() -> Flow {
        use quarry_etl::{parse_expr, ColType, Column, JoinKind, OpKind, Schema};
        let mut f = Flow::new("unified");
        let ps = f
            .add_op(
                "DS_partsupp",
                OpKind::Datastore {
                    datastore: "partsupp".into(),
                    schema: Schema::new(vec![
                        Column::new("ps_partkey", ColType::Integer),
                        Column::new("ps_suppkey", ColType::Integer),
                        Column::new("ps_supplycost", ColType::Decimal),
                    ]),
                },
            )
            .unwrap();
        let pt = f
            .add_op(
                "DS_part",
                OpKind::Datastore {
                    datastore: "part".into(),
                    schema: Schema::new(vec![
                        Column::new("p_partkey", ColType::Integer),
                        Column::new("p_name", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let sp = f
            .add_op(
                "DS_supplier",
                OpKind::Datastore {
                    datastore: "supplier".into(),
                    schema: Schema::new(vec![
                        Column::new("s_suppkey", ColType::Integer),
                        Column::new("s_nation", ColType::Text),
                    ]),
                },
            )
            .unwrap();
        let j1 = f
            .add_op(
                "JOIN_part",
                OpKind::Join {
                    kind: JoinKind::Inner,
                    left_on: vec!["ps_partkey".into()],
                    right_on: vec!["p_partkey".into()],
                },
            )
            .unwrap();
        f.connect(ps, j1).unwrap();
        f.connect(pt, j1).unwrap();
        let sel = f
            .append(sp, "SEL_spain", OpKind::Selection { predicate: parse_expr("s_nation = 'Spain'").unwrap() })
            .unwrap();
        let j2 = f
            .add_op(
                "JOIN_supp",
                OpKind::Join {
                    kind: JoinKind::Inner,
                    left_on: vec!["ps_suppkey".into()],
                    right_on: vec!["s_suppkey".into()],
                },
            )
            .unwrap();
        f.connect(j1, j2).unwrap();
        f.connect(sel, j2).unwrap();
        let agg = f
            .append(
                j2,
                "AGG",
                OpKind::Aggregation {
                    group_by: vec!["p_name".into()],
                    aggregates: vec![quarry_etl::AggSpec::new(
                        "SUM",
                        quarry_etl::parse_expr("ps_supplycost").unwrap(),
                        "total",
                    )],
                },
            )
            .unwrap();
        f.append(agg, "LOAD", OpKind::Loader { table: "out".into(), key: vec![] }).unwrap();
        f.validate().unwrap();
        f
    }

    fn skewed_spine_catalog() -> Catalog {
        use quarry_engine::{Relation, Value};
        use quarry_etl::{ColType, Column, Schema};
        let mut catalog = Catalog::new();
        let partsupp_schema = Schema::new(vec![
            Column::new("ps_partkey", ColType::Integer),
            Column::new("ps_suppkey", ColType::Integer),
            Column::new("ps_supplycost", ColType::Decimal),
        ]);
        let partsupp_rows = (0..8_000)
            .map(|i| vec![Value::Int(i % 2_000), Value::Int(i % 100), Value::Float((i % 97) as f64)])
            .collect();
        catalog.put("partsupp", Relation::with_rows(partsupp_schema, partsupp_rows));
        let part_schema =
            Schema::new(vec![Column::new("p_partkey", ColType::Integer), Column::new("p_name", ColType::Text)]);
        let part_rows = (0..2_000).map(|i| vec![Value::Int(i), Value::Str(format!("part {i}"))]).collect();
        catalog.put("part", Relation::with_rows(part_schema, part_rows));
        let supplier_schema =
            Schema::new(vec![Column::new("s_suppkey", ColType::Integer), Column::new("s_nation", ColType::Text)]);
        let supplier_rows = (0..100)
            .map(|i| vec![Value::Int(i), Value::Str(if i < 2 { "Spain".into() } else { format!("nation {i}") })])
            .collect();
        catalog.put("supplier", Relation::with_rows(supplier_schema, supplier_rows));
        catalog
    }

    #[test]
    fn skewed_source_flags_drift_and_the_correction_changes_the_chosen_plan() {
        let domain = quarry_ontology::tpch::domain();
        let mut cfg = QuarryConfig::tpch(0.01);
        // Stale statistics: the supplier table is claimed enormous, so the
        // modeled-optimal plan keeps the selective branch out of the spine.
        cfg.stats = quarry_etl::cost::SourceStats::new()
            .with_table("partsupp", 8_000.0)
            .with_table("part", 2_000.0)
            .with_table("supplier", 500_000.0)
            .with_unique("part", &["p_partkey"])
            .with_unique("supplier", &["s_suppkey"]);
        let mut q = Quarry::with_config(domain.ontology, domain.sources, cfg);
        q.set_observability(true);
        q.unified_etl = skewed_spine_flow();
        q.optimize().unwrap();
        let plan_stale = q.unified().1.clone();

        // Three runs over the real (skewed) data accumulate drift evidence;
        // nothing is observed back yet, so the estimates stay stale.
        let mut last_report = None;
        for _ in 0..3 {
            let (_, report) = q.run_etl(skewed_spine_catalog()).unwrap();
            last_report = Some(report);
        }
        let drift = q.drift_report();
        let flagged = drift.flagged();
        assert!(
            flagged.iter().any(|o| o.op == "DS_supplier"),
            "a 5000x supplier misestimate must be flagged after three runs: {flagged:?}"
        );
        let metrics = q.observability().metrics();
        let gauge = |name: &str| {
            metrics.iter().find(|(n, _)| n == name).and_then(|(_, m)| match m {
                Metric::Gauge(v) => Some(*v),
                _ => None,
            })
        };
        assert!(gauge("obs.drift.flagged_ops").unwrap_or(0) >= 1, "flagged gauge must surface");
        assert!(gauge("obs.drift.ops_tracked").unwrap_or(0) >= 3, "spine operators are tracked");
        let log = flight::recorder().drain();
        assert!(
            log.events.iter().any(|e| e.kind == EventKind::Drift && e.label == "DS_supplier"),
            "flagging lands a Drift event in the flight recorder"
        );

        // Feed the correction back: the annealer re-searches with observed
        // cardinalities and commits to a different plan.
        q.observe_run(&last_report.unwrap());
        q.optimize().unwrap();
        assert_ne!(plan_stale, *q.unified().1, "corrected statistics must change the chosen plan");
    }

    #[test]
    fn fact_fk_values_match_dimension_keys() {
        let mut q = Quarry::tpch();
        q.add_requirement(figure4_requirement()).unwrap();
        let (engine, _) = q.run_etl(quarry_engine::tpch::generate(0.002, 42)).unwrap();
        let fact = engine.catalog.get("fact_table_revenue").unwrap();
        let dim = engine.catalog.get("dim_part").unwrap();
        let dim_keys: std::collections::HashSet<_> = dim.column_values("PartID").into_iter().collect();
        for fk in fact.column_values("Part_PartID") {
            assert!(dim_keys.contains(&fk), "fact FK {fk} must exist in dim_part");
        }
    }
}
