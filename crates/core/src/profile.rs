//! EXPLAIN ANALYZE execution profiles: the plan tree of one engine run,
//! annotated with what the cost model *predicted* and what the engine
//! *measured*.
//!
//! A [`RunReport`](quarry_engine::RunReport) carries flat per-operation
//! timings; an [`ExecutionProfile`] joins them with the flow's structure and
//! the cost model's per-operator cardinality estimates (computed with the
//! statistics that were live when the run started), plus the engine's kernel
//! dispatch deltas. Profiles serialize to JSON — numbers render via Rust's
//! shortest-round-trip `f64` formatting, so a profile round-trips
//! bit-identically through the versioned repository — and are persisted
//! under [`ArtifactKind::Profile`](quarry_repository::ArtifactKind) after
//! every run.
//!
//! The rendered form (`quarry-cli explain --analyze`) is the classic
//! annotated tree, sinks at the root:
//!
//! ```text
//! LOADER_fact_table_revenue [loader]  est 1200 rows, actual 1187 (1.0x), 2.3 ms, lane 0
//! └─ AGGREGATION_revenue [aggregation]  est 1200 rows, actual 1187 (1.0x), ...
//!    └─ JOIN_... ...
//! ```

use quarry_engine::RunReport;
use quarry_etl::cost::{cardinality_state, SourceStats};
use quarry_etl::Flow;
use quarry_repository::Json;
use std::collections::HashMap;

/// Schema version of the profile document.
pub const PROFILE_DOC_VERSION: f64 = 1.0;

/// One operator of an executed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOp {
    /// Operator name (unique within the flow).
    pub name: String,
    /// Operator kind (`datastore`, `selection`, `join`, ...).
    pub kind: String,
    /// Names of the operator's input operators, in edge order.
    pub inputs: Vec<String>,
    /// The cost model's estimated output cardinality at run time.
    pub estimated_rows: f64,
    /// Measured rows across the operator's inputs.
    pub rows_in: u64,
    /// Measured output rows.
    pub rows_out: u64,
    /// Measured wall time of the operator's own work, microseconds.
    pub elapsed_us: u64,
    /// Pool lane that ran it (0 = calling/serial thread).
    pub worker: u32,
}

impl ProfileOp {
    /// `actual / estimated`, both floored at one row — the misestimate
    /// ratio drift detection digests.
    pub fn ratio(&self) -> f64 {
        (self.rows_out as f64).max(1.0) / self.estimated_rows.max(1.0)
    }
}

/// The execution profile of one engine run over one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionProfile {
    /// The executed flow's name.
    pub flow: String,
    /// Whether the run used the inter-operator parallel executor.
    pub parallel: bool,
    /// Total wall time of the run, microseconds.
    pub total_us: u64,
    /// Total rows emitted across all operations.
    pub rows_processed: u64,
    /// Vectorized kernel invocations during this run (process-wide delta).
    pub kernel_vectorized: u64,
    /// Scalar-fallback kernel invocations during this run.
    pub kernel_scalar_fallback: u64,
    /// Executed operators in execution order.
    pub ops: Vec<ProfileOp>,
    /// Names of the flow's sink operators (tree roots of [`render`]).
    pub sinks: Vec<String>,
}

/// Kernel dispatch counters bracketing a run; subtracting two snapshots
/// yields the run's own delta.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelDelta {
    pub vectorized: u64,
    pub scalar_fallback: u64,
}

impl KernelDelta {
    /// Snapshot of the engine's process-wide kernel counters.
    pub fn snapshot() -> KernelDelta {
        let k = quarry_engine::stats::kernel_stats();
        KernelDelta { vectorized: k.vectorized, scalar_fallback: k.scalar_fallback }
    }

    fn since(self, before: KernelDelta) -> KernelDelta {
        KernelDelta {
            vectorized: self.vectorized.saturating_sub(before.vectorized),
            scalar_fallback: self.scalar_fallback.saturating_sub(before.scalar_fallback),
        }
    }
}

impl ExecutionProfile {
    /// Builds a profile from a run over `flow`: per-operator estimates come
    /// from the cost model under `stats` (pass the statistics that were live
    /// when the run started — estimates folded *after* the run would just
    /// echo the observations back), measurements from `report`, and kernel
    /// deltas from counter snapshots bracketing the run.
    pub fn capture(
        flow: &Flow,
        report: &RunReport,
        stats: &SourceStats,
        parallel: bool,
        kernels_before: KernelDelta,
        kernels_after: KernelDelta,
    ) -> ExecutionProfile {
        // Estimates are best-effort: a flow the estimator cannot order (it
        // executed, so it is acyclic — this is defensive) profiles with
        // zero estimates rather than not at all.
        let estimates = cardinality_state(flow, stats).unwrap_or_default();
        let estimated_by_name: HashMap<&str, f64> = flow
            .ops()
            .map(|op| (op.name.as_str(), estimates.get(&op.id).map(|&(rows, _)| rows).unwrap_or(0.0)))
            .collect();
        let inputs_by_name: HashMap<&str, Vec<String>> = flow
            .ops()
            .map(|op| (op.name.as_str(), flow.inputs_of(op.id).into_iter().map(|i| flow.op(i).name.clone()).collect()))
            .collect();
        let delta = kernels_after.since(kernels_before);
        ExecutionProfile {
            flow: flow.name.clone(),
            parallel,
            total_us: report.total.as_micros() as u64,
            rows_processed: report.rows_processed as u64,
            kernel_vectorized: delta.vectorized,
            kernel_scalar_fallback: delta.scalar_fallback,
            ops: report
                .timings
                .iter()
                .map(|t| ProfileOp {
                    name: t.op.clone(),
                    kind: t.kind.to_string(),
                    inputs: inputs_by_name.get(t.op.as_str()).cloned().unwrap_or_default(),
                    estimated_rows: estimated_by_name.get(t.op.as_str()).copied().unwrap_or(0.0),
                    rows_in: t.rows_in as u64,
                    rows_out: t.rows_out as u64,
                    elapsed_us: t.elapsed.as_micros() as u64,
                    worker: t.worker as u32,
                })
                .collect(),
            sinks: flow.sinks().into_iter().map(|id| flow.op(id).name.clone()).collect(),
        }
    }

    /// Serializes the profile as a versioned JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.set("version", Json::Number(PROFILE_DOC_VERSION));
        doc.set("flow", Json::String(self.flow.clone()));
        doc.set("parallel", Json::Bool(self.parallel));
        doc.set("totalUs", Json::Number(self.total_us as f64));
        doc.set("rowsProcessed", Json::Number(self.rows_processed as f64));
        let mut kernels = Json::object();
        kernels.set("vectorized", Json::Number(self.kernel_vectorized as f64));
        kernels.set("scalarFallback", Json::Number(self.kernel_scalar_fallback as f64));
        doc.set("kernels", kernels);
        doc.set(
            "ops",
            Json::Array(
                self.ops
                    .iter()
                    .map(|op| {
                        let mut o = Json::object();
                        o.set("name", Json::String(op.name.clone()));
                        o.set("kind", Json::String(op.kind.clone()));
                        o.set("inputs", Json::Array(op.inputs.iter().map(|i| Json::String(i.clone())).collect()));
                        o.set("estimatedRows", Json::Number(op.estimated_rows));
                        o.set("rowsIn", Json::Number(op.rows_in as f64));
                        o.set("rowsOut", Json::Number(op.rows_out as f64));
                        o.set("elapsedUs", Json::Number(op.elapsed_us as f64));
                        o.set("worker", Json::Number(op.worker as f64));
                        o
                    })
                    .collect(),
            ),
        );
        doc.set("sinks", Json::Array(self.sinks.iter().map(|s| Json::String(s.clone())).collect()));
        doc
    }

    /// Rebuilds a profile from its JSON document. Returns `None` on any
    /// shape mismatch (missing member, wrong type).
    pub fn from_json(doc: &Json) -> Option<ExecutionProfile> {
        let as_u64 = |v: &Json| v.as_f64().map(|f| f as u64);
        let strings = |v: &Json| -> Option<Vec<String>> {
            v.as_array()?.iter().map(|s| s.as_str().map(str::to_string)).collect()
        };
        let mut ops = Vec::new();
        for o in doc.get("ops")?.as_array()? {
            ops.push(ProfileOp {
                name: o.get("name")?.as_str()?.to_string(),
                kind: o.get("kind")?.as_str()?.to_string(),
                inputs: strings(o.get("inputs")?)?,
                estimated_rows: o.get("estimatedRows")?.as_f64()?,
                rows_in: as_u64(o.get("rowsIn")?)?,
                rows_out: as_u64(o.get("rowsOut")?)?,
                elapsed_us: as_u64(o.get("elapsedUs")?)?,
                worker: as_u64(o.get("worker")?)? as u32,
            });
        }
        let kernels = doc.get("kernels")?;
        Some(ExecutionProfile {
            flow: doc.get("flow")?.as_str()?.to_string(),
            parallel: matches!(doc.get("parallel")?, Json::Bool(true)),
            total_us: as_u64(doc.get("totalUs")?)?,
            rows_processed: as_u64(doc.get("rowsProcessed")?)?,
            kernel_vectorized: as_u64(kernels.get("vectorized")?)?,
            kernel_scalar_fallback: as_u64(kernels.get("scalarFallback")?)?,
            ops,
            sinks: strings(doc.get("sinks")?)?,
        })
    }

    fn op(&self, name: &str) -> Option<&ProfileOp> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// Renders the annotated plan tree, sinks at the roots. An operator
    /// feeding several consumers prints its subtree once; later visits
    /// reference it. Estimated vs. actual cardinality is annotated per
    /// operator, with the misestimate factor when they disagree by ≥ 10%.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} ({}) — {} ops, {} rows, {:.3} ms; kernels: {} vectorized, {} scalar-fallback\n",
            self.flow,
            if self.parallel { "parallel" } else { "serial" },
            self.ops.len(),
            self.rows_processed,
            self.total_us as f64 / 1000.0,
            self.kernel_vectorized,
            self.kernel_scalar_fallback,
        );
        let mut seen: Vec<&str> = Vec::new();
        for (i, sink) in self.sinks.iter().enumerate() {
            self.render_op(sink, "", i + 1 == self.sinks.len(), true, &mut seen, &mut out);
        }
        out
    }

    fn render_op<'a>(
        &'a self,
        name: &'a str,
        prefix: &str,
        last: bool,
        root: bool,
        seen: &mut Vec<&'a str>,
        out: &mut String,
    ) {
        let (branch, child_prefix) = if root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let Some(op) = self.op(name) else {
            out.push_str(&format!("{branch}{name} (not executed)\n"));
            return;
        };
        if seen.contains(&name) {
            out.push_str(&format!("{branch}{name} (shared, shown above)\n"));
            return;
        }
        seen.push(name);
        let ratio = op.ratio();
        let misestimate =
            if !(0.9..=1.1).contains(&ratio) { format!(" — misestimated {ratio:.2}x") } else { String::new() };
        out.push_str(&format!(
            "{branch}{} [{}]  est {:.0} rows, actual {} ({} in), {:.3} ms, lane {}{}\n",
            op.name,
            op.kind,
            op.estimated_rows,
            op.rows_out,
            op.rows_in,
            op.elapsed_us as f64 / 1000.0,
            op.worker,
            misestimate,
        ));
        for (i, input) in op.inputs.iter().enumerate() {
            self.render_op(input, &child_prefix, i + 1 == op.inputs.len(), false, seen, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_etl::{parse_expr, ColType, Column, OpKind, Schema};

    fn src_schema() -> Schema {
        Schema::new(vec![Column::new("x", ColType::Integer)])
    }

    fn sample_profile() -> (Flow, ExecutionProfile) {
        let mut flow = Flow::new("demo");
        let src =
            flow.add_op("DATASTORE_src", OpKind::Datastore { datastore: "src".into(), schema: src_schema() }).unwrap();
        let sel = flow.add_op("SEL_x", OpKind::Selection { predicate: parse_expr("x > 1").unwrap() }).unwrap();
        let load = flow.add_op("LOADER_t", OpKind::Loader { table: "t".into(), key: vec![] }).unwrap();
        flow.connect(src, sel).unwrap();
        flow.connect(sel, load).unwrap();
        let mut stats = SourceStats::default();
        stats.set_table("src", 1000.0);
        let mut report = RunReport::default();
        for (name, kind, rows_in, rows_out) in
            [("DATASTORE_src", "datastore", 0, 1000), ("SEL_x", "selection", 1000, 37), ("LOADER_t", "loader", 37, 37)]
        {
            report.timings.push(quarry_engine::OpTiming {
                op: name.into(),
                kind,
                rows_in,
                rows_out,
                elapsed: std::time::Duration::from_micros(250),
                worker: 1,
            });
        }
        report.total = std::time::Duration::from_micros(900);
        report.rows_processed = 1074;
        let profile =
            ExecutionProfile::capture(&flow, &report, &stats, true, KernelDelta::default(), KernelDelta::default());
        (flow, profile)
    }

    #[test]
    fn capture_joins_estimates_with_measurements() {
        let (_, p) = sample_profile();
        assert_eq!(p.flow, "demo");
        assert!(p.parallel);
        assert_eq!(p.ops.len(), 3);
        let src = p.op("DATASTORE_src").unwrap();
        assert_eq!(src.estimated_rows, 1000.0);
        assert_eq!(src.rows_out, 1000);
        let sel = p.op("SEL_x").unwrap();
        assert!(sel.estimated_rows > 0.0);
        assert_eq!(sel.rows_out, 37);
        assert_eq!(sel.inputs, ["DATASTORE_src"]);
        assert_eq!(p.sinks, ["LOADER_t"]);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let (_, p) = sample_profile();
        let text = p.to_json().to_pretty_string();
        let parsed = ExecutionProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, p);
        // Bit-identical re-serialization: shortest-round-trip f64 formatting
        // means the document survives parse → serialize unchanged.
        assert_eq!(parsed.to_json().to_pretty_string(), text);
    }

    #[test]
    fn malformed_documents_parse_to_none() {
        for doc in ["{}", r#"{"flow": 3}"#, r#"{"flow": "f", "ops": "nope"}"#] {
            assert!(ExecutionProfile::from_json(&Json::parse(doc).unwrap()).is_none(), "{doc}");
        }
    }

    #[test]
    fn render_annotates_estimates_and_misestimates() {
        let (_, p) = sample_profile();
        let tree = p.render();
        assert!(tree.contains("demo (parallel)"), "{tree}");
        assert!(tree.contains("LOADER_t [loader]"), "{tree}");
        assert!(tree.contains("└─ SEL_x [selection]"), "{tree}");
        assert!(tree.contains("est 1000 rows, actual 1000"), "{tree}");
        // The selection's static estimate disagrees with the observed 37
        // rows, so the misestimate factor is flagged.
        assert!(tree.contains("misestimated"), "{tree}");
        assert!(tree.contains("lane 1"), "{tree}");
    }

    #[test]
    fn shared_subtrees_render_once() {
        let mut flow = Flow::new("diamond");
        let src =
            flow.add_op("DATASTORE_s", OpKind::Datastore { datastore: "s".into(), schema: src_schema() }).unwrap();
        let a = flow.add_op("SEL_a", OpKind::Selection { predicate: parse_expr("x > 1").unwrap() }).unwrap();
        let b = flow.add_op("SEL_b", OpKind::Selection { predicate: parse_expr("x > 2").unwrap() }).unwrap();
        let union = flow.add_op("UNION_u", OpKind::Union).unwrap();
        let load = flow.add_op("LOADER_t", OpKind::Loader { table: "t".into(), key: vec![] }).unwrap();
        flow.connect(src, a).unwrap();
        flow.connect(src, b).unwrap();
        flow.connect(a, union).unwrap();
        flow.connect(b, union).unwrap();
        flow.connect(union, load).unwrap();
        let mut report = RunReport::default();
        for name in ["DATASTORE_s", "SEL_a", "SEL_b", "UNION_u", "LOADER_t"] {
            report.timings.push(quarry_engine::OpTiming {
                op: name.into(),
                kind: "x",
                rows_in: 1,
                rows_out: 1,
                elapsed: std::time::Duration::from_micros(1),
                worker: 0,
            });
        }
        let p = ExecutionProfile::capture(
            &flow,
            &report,
            &SourceStats::default(),
            false,
            KernelDelta::default(),
            KernelDelta::default(),
        );
        let tree = p.render();
        assert_eq!(tree.matches("DATASTORE_s [").count(), 1, "shared source expands once: {tree}");
        assert!(tree.contains("DATASTORE_s (shared, shown above)"), "{tree}");
    }
}
