//! OLAP query generation: answer an information requirement *from the
//! deployed star schema* instead of from the sources.
//!
//! The paper's lifecycle ends at deployment ("the deployed design solutions
//! are then available for further user-preferred tunings and use"); this
//! module is the *use*: given the unified MD schema and the original xRQ, it
//! emits a logical flow that star-joins the fact table with the needed
//! dimension tables, filters, re-aggregates and loads the answer — runnable
//! on the embedded engine, deployable through any platform generator.
//!
//! Re-aggregation caveat (classic OLAP summarizability): the fact holds
//! measures at its grain with the requirement's own aggregation already
//! applied, so querying at a *coarser* grain re-aggregates aggregates. SUM /
//! MIN / MAX / COUNT compose; AVERAGE composes exactly only when the grouped
//! attributes are in one-to-one correspondence with the fact grain (true for
//! the demo's key-like descriptor attributes).

use quarry_etl::{AggSpec, ColType, Column, Expr, Flow, JoinKind, OpKind, Schema};
use quarry_formats::Requirement;
use quarry_md::{naming, MdDataType, MdSchema};
use quarry_ontology::Ontology;
use std::fmt;

/// Failures while generating an OLAP query flow.
#[derive(Debug, Clone, PartialEq)]
pub enum OlapError {
    /// No fact in the schema satisfies the requirement.
    NoFactFor(String),
    /// A requested dimension attribute is not materialized anywhere.
    AttributeNotInSchema(String),
    /// A reference did not resolve against the ontology.
    UnknownReference(String),
    /// The generated flow failed validation (internal guard).
    Generated(String),
}

impl fmt::Display for OlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OlapError::NoFactFor(id) => write!(f, "no fact satisfies requirement `{id}`"),
            OlapError::AttributeNotInSchema(a) => {
                write!(f, "attribute `{a}` is not materialized in the star schema")
            }
            OlapError::UnknownReference(r) => write!(f, "reference `{r}` resolves to nothing"),
            OlapError::Generated(d) => write!(f, "generated query flow is invalid: {d}"),
        }
    }
}

impl std::error::Error for OlapError {}

fn md_col_type(t: MdDataType) -> ColType {
    match t {
        MdDataType::Integer => ColType::Integer,
        MdDataType::Decimal => ColType::Decimal,
        MdDataType::Text => ColType::Text,
        MdDataType::Date => ColType::Date,
        MdDataType::Boolean => ColType::Boolean,
    }
}

/// Where an attribute lives in the star schema.
struct AttributeSite {
    dimension: String,
    column: String,
    ty: ColType,
}

/// Finds a dimension holding `attribute` among those the fact links.
fn find_attribute(md: &MdSchema, fact: &quarry_md::Fact, attribute: &str) -> Option<AttributeSite> {
    for link in &fact.dimensions {
        let dim = md.dimension(&link.dimension)?;
        for level in &dim.levels {
            if let Some(a) = level.attribute(attribute) {
                return Some(AttributeSite {
                    dimension: dim.name.clone(),
                    column: a.name.clone(),
                    ty: md_col_type(a.datatype),
                });
            }
            if level.key == attribute {
                return Some(AttributeSite {
                    dimension: dim.name.clone(),
                    column: level.key.clone(),
                    ty: md_col_type(level.key_type),
                });
            }
        }
    }
    None
}

/// Generates the star-join query flow answering `req` over the unified MD
/// schema. The answer loads into table `answer_<req id>`.
pub fn query_flow(md: &MdSchema, onto: &Ontology, req: &Requirement) -> Result<Flow, OlapError> {
    // The fact satisfying this requirement.
    let fact = md
        .facts
        .iter()
        .find(|f| f.satisfies.contains(&req.id))
        .or_else(|| md.facts.iter().find(|f| req.measures.iter().all(|m| f.measure(&m.id).is_some())))
        .ok_or_else(|| OlapError::NoFactFor(req.id.clone()))?;

    let mut flow = Flow::new(format!("olap_{}", req.id));

    // Scan the fact table: FK columns + the requested measures.
    let mut fact_columns: Vec<Column> =
        fact.dimensions.iter().map(|l| Column::new(naming::fact_fk(&l.dimension), ColType::Integer)).collect();
    for m in &req.measures {
        if fact.measure(&m.id).is_some() {
            fact_columns.push(Column::new(m.id.clone(), ColType::Decimal));
        }
    }
    let fact_scan = flow
        .add_op("FACT", OpKind::Datastore { datastore: fact.name.clone(), schema: Schema::new(fact_columns) })
        .map_err(|e| OlapError::Generated(e.to_string()))?;

    // Resolve the requested dimension attributes (and sliceable contexts).
    let mut group_columns: Vec<String> = Vec::new();
    let mut joined_dims: Vec<String> = Vec::new();
    let mut current = fact_scan;
    let join_dim = |flow: &mut Flow,
                    current: &mut quarry_etl::OpId,
                    joined: &mut Vec<String>,
                    site: &AttributeSite|
     -> Result<(), OlapError> {
        if joined.contains(&site.dimension) {
            return Ok(());
        }
        let dim_table = naming::dim_table(&site.dimension);
        let key = naming::dim_key(&site.dimension);
        // The dimension scan exposes its key and every attribute the query
        // touches; columns are added lazily by a second pass below, so scan
        // key + this attribute now and widen later via signature identity.
        let dim = md.dimension(&site.dimension).expect("site found in this schema");
        let mut cols = vec![Column::new(key.clone(), ColType::Integer)];
        for level in &dim.levels {
            for a in &level.attributes {
                cols.push(Column::new(a.name.clone(), md_col_type(a.datatype)));
            }
            if level.key != key && !cols.iter().any(|c| c.name == level.key) {
                cols.push(Column::new(level.key.clone(), md_col_type(level.key_type)));
            }
        }
        let scan = flow
            .add_op(
                format!("DIM_{}", site.dimension),
                OpKind::Datastore { datastore: dim_table, schema: Schema::new(cols) },
            )
            .map_err(|e| OlapError::Generated(e.to_string()))?;
        let join = flow
            .add_op(
                format!("JOIN_{}", site.dimension),
                OpKind::Join {
                    kind: JoinKind::Inner,
                    left_on: vec![naming::fact_fk(&site.dimension)],
                    right_on: vec![key],
                },
            )
            .map_err(|e| OlapError::Generated(e.to_string()))?;
        flow.connect(*current, join).map_err(|e| OlapError::Generated(e.to_string()))?;
        flow.connect(scan, join).map_err(|e| OlapError::Generated(e.to_string()))?;
        *current = join;
        joined.push(site.dimension.clone());
        Ok(())
    };

    for dim_ref in &req.dimensions {
        let prop = onto.resolve_property_ref(dim_ref).map_err(|_| OlapError::UnknownReference(dim_ref.clone()))?;
        let attr = &onto.property_def(prop).name;
        let site = find_attribute(md, fact, attr).ok_or_else(|| OlapError::AttributeNotInSchema(attr.clone()))?;
        join_dim(&mut flow, &mut current, &mut joined_dims, &site)?;
        if !group_columns.contains(&site.column) {
            group_columns.push(site.column.clone());
        }
    }

    // Slicers: re-filter when the context is materialized; contexts that are
    // not in the schema were applied at load time and need nothing here.
    for slicer in &req.slicers {
        let prop = onto
            .resolve_property_ref(&slicer.concept)
            .map_err(|_| OlapError::UnknownReference(slicer.concept.clone()))?;
        let attr = &onto.property_def(prop).name;
        if let Some(site) = find_attribute(md, fact, attr) {
            join_dim(&mut flow, &mut current, &mut joined_dims, &site)?;
            let literal = match site.ty {
                ColType::Integer => {
                    slicer.value.parse::<i64>().map(Expr::Int).unwrap_or(Expr::Str(slicer.value.clone()))
                }
                ColType::Decimal => {
                    slicer.value.parse::<f64>().map(Expr::Float).unwrap_or(Expr::Str(slicer.value.clone()))
                }
                _ => Expr::Str(slicer.value.clone()),
            };
            let op = match slicer.operator.as_str() {
                "<>" | "!=" => quarry_etl::BinOp::Ne,
                "<" => quarry_etl::BinOp::Lt,
                "<=" => quarry_etl::BinOp::Le,
                ">" => quarry_etl::BinOp::Gt,
                ">=" => quarry_etl::BinOp::Ge,
                _ => quarry_etl::BinOp::Eq,
            };
            current = flow
                .append(
                    current,
                    format!("SLICE_{attr}"),
                    OpKind::Selection { predicate: Expr::binary(op, Expr::col(site.column), literal) },
                )
                .map_err(|e| OlapError::Generated(e.to_string()))?;
        }
    }

    // Re-aggregate at the requested grain.
    let aggregates: Vec<AggSpec> = req
        .measures
        .iter()
        .filter(|m| fact.measure(&m.id).is_some())
        .map(|m| {
            let func = req.agg_for(&m.id).unwrap_or("SUM").to_string();
            AggSpec::new(func, Expr::col(m.id.clone()), m.id.clone())
        })
        .collect();
    let agg = flow
        .append(current, "ANSWER_AGG", OpKind::Aggregation { group_by: group_columns, aggregates })
        .map_err(|e| OlapError::Generated(e.to_string()))?;
    flow.append(agg, "ANSWER", OpKind::Loader { table: format!("answer_{}", req.id), key: vec![] })
        .map_err(|e| OlapError::Generated(e.to_string()))?;
    flow.validate().map_err(|e| OlapError::Generated(e.to_string()))?;
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Quarry;
    use quarry_formats::xrq::figure4_requirement;

    #[test]
    fn figure4_query_answers_from_the_warehouse() {
        let mut quarry = Quarry::tpch();
        quarry.add_requirement(figure4_requirement()).expect("integrates");
        let (mut engine, _) = quarry.run_etl(quarry_engine::tpch::generate(0.002, 42)).expect("loads");

        let q = query_flow(quarry.unified().0, quarry.ontology(), &figure4_requirement()).expect("generates");
        engine.run(&q).expect("query executes over the star schema");
        let answer = engine.catalog.get("answer_IR1").expect("answer loaded");
        assert_eq!(answer.schema.names().collect::<Vec<_>>(), ["p_name", "s_name", "revenue"]);
        assert!(!answer.is_empty());

        // The grouped names are key-like in generated TPC-H, so the grain is
        // preserved and the answer matches the fact row count.
        let fact = engine.catalog.get("fact_table_revenue").expect("loaded");
        assert_eq!(answer.len(), fact.len());
    }

    #[test]
    fn slicers_refilter_when_materialized() {
        // A requirement whose slicer context IS a requested dimension
        // attribute: the query re-applies the filter.
        let mut quarry = Quarry::tpch();
        let mut req = quarry_formats::Requirement::new("IRF");
        req.measures
            .push(quarry_formats::MeasureSpec { id: "qty".into(), function: "Lineitem_l_quantityATRIBUT".into() });
        req.dimensions.push("Part_p_brandATRIBUT".into());
        quarry.add_requirement(req.clone()).expect("integrates");
        let (mut engine, _) = quarry.run_etl(quarry_engine::tpch::generate(0.002, 42)).expect("loads");

        // Query the same fact, now sliced to one brand.
        req.slicers.push(quarry_formats::Slicer {
            concept: "Part_p_brandATRIBUT".into(),
            operator: "=".into(),
            value: "Brand#11".into(),
        });
        let q = query_flow(quarry.unified().0, quarry.ontology(), &req).expect("generates");
        engine.run(&q).expect("query executes");
        let answer = engine.catalog.get("answer_IRF").expect("answer loaded");
        assert_eq!(answer.len(), 1, "one brand group");
        assert_eq!(answer.row(0)[0], quarry_engine::Value::Str("Brand#11".into()));
    }

    #[test]
    fn missing_fact_and_attribute_error() {
        let quarry = Quarry::tpch();
        let req = figure4_requirement();
        assert!(matches!(query_flow(quarry.unified().0, quarry.ontology(), &req), Err(OlapError::NoFactFor(_))));

        let mut quarry = Quarry::tpch();
        quarry.add_requirement(figure4_requirement()).expect("integrates");
        let mut other = figure4_requirement();
        other.dimensions.push("Customer_c_nameATRIBUT".into());
        assert!(matches!(
            query_flow(quarry.unified().0, quarry.ontology(), &other),
            Err(OlapError::AttributeNotInSchema(_))
        ));
    }
}
