//! JSON documents for observability data: span trees and metric snapshots.
//!
//! The repository stores every artifact as versioned text, so completed
//! lifecycle traces are serialized to JSON here and put under
//! `ArtifactKind::Trace`. The same encoding backs the `GetTrace` /
//! `GetMetrics` service endpoints.

use quarry_obs::{AttrValue, Metric, Obs, SpanNode, Trace};
use quarry_repository::Json;

/// Schema version of the trace document. Bump when the shape changes so
/// readers of old repository versions can tell them apart.
pub const TRACE_DOC_VERSION: f64 = 1.0;

/// Serializes a trace as a versioned JSON document:
///
/// ```json
/// {
///   "version": 1,
///   "spans": [
///     {"name": "add_requirement", "startUs": 0, "elapsedUs": 1234,
///      "attrs": {"requirement": "IR1"}, "children": [...]}
///   ]
/// }
/// ```
pub fn trace_to_json(trace: &Trace) -> Json {
    let mut doc = Json::object();
    doc.set("version", Json::Number(TRACE_DOC_VERSION));
    doc.set("spans", Json::Array(trace.spans.iter().map(span_to_json).collect()));
    doc
}

fn span_to_json(span: &SpanNode) -> Json {
    let mut doc = Json::object();
    doc.set("name", Json::String(span.name.clone()));
    doc.set("startUs", Json::Number(span.start.as_micros() as f64));
    doc.set("elapsedUs", Json::Number(span.elapsed.as_micros() as f64));
    if !span.attrs.is_empty() {
        let mut attrs = Json::object();
        for (key, value) in &span.attrs {
            attrs.set(key.clone(), attr_to_json(value));
        }
        doc.set("attrs", attrs);
    }
    if !span.children.is_empty() {
        doc.set("children", Json::Array(span.children.iter().map(span_to_json).collect()));
    }
    doc
}

fn attr_to_json(value: &AttrValue) -> Json {
    match value {
        AttrValue::Int(i) => Json::Number(*i as f64),
        AttrValue::Float(f) => Json::Number(*f),
        AttrValue::Str(s) => Json::String(s.clone()),
    }
}

/// Serializes the current metric registry plus the engine worker pool's
/// lifetime counters:
///
/// ```json
/// {
///   "version": 1,
///   "counters": {"engine.runs": 2, ...},
///   "gauges": {"pool.queue_depth": 0, ...},
///   "histograms": {"engine.op_seconds": {"count": 9, "sum": ..., "min": ..., "max": ...,
///                                        "p50": ..., "p95": ..., "p99": ...}},
///   "info": {"obs.build_info": {"version": "...", "git_hash": "..."}},
///   "pool": {"regions": ..., "jobs": ..., "helpersSpawned": ...}
/// }
/// ```
///
/// An empty histogram carries only `"count": 0` — no min/max/sum/quantiles,
/// so readers never see fabricated `null` extrema.
pub fn metrics_to_json(obs: &Obs) -> Json {
    let mut counters = Json::object();
    let mut gauges = Json::object();
    let mut histograms = Json::object();
    let mut info = Json::object();
    for (name, metric) in obs.metrics() {
        match metric {
            Metric::Counter(n) => counters.set(name, Json::Number(n as f64)),
            Metric::Gauge(v) => gauges.set(name, Json::Number(v as f64)),
            Metric::Histogram(snap) => histograms.set(name, histogram_to_json(&snap)),
            Metric::Info(labels) => {
                let mut entry = Json::object();
                for (key, value) in labels {
                    entry.set(&key, Json::String(value));
                }
                info.set(name, entry);
            }
        }
    }
    let pool = quarry_engine::pool::stats();
    let mut pool_doc = Json::object();
    pool_doc.set("regions", Json::Number(pool.regions as f64));
    pool_doc.set("jobs", Json::Number(pool.jobs as f64));
    pool_doc.set("helpersSpawned", Json::Number(pool.helpers_spawned as f64));

    let mut doc = Json::object();
    doc.set("version", Json::Number(TRACE_DOC_VERSION));
    doc.set("counters", counters);
    doc.set("gauges", gauges);
    doc.set("histograms", histograms);
    doc.set("info", info);
    doc.set("pool", pool_doc);
    doc
}

fn histogram_to_json(snap: &quarry_obs::HistogramSnapshot) -> Json {
    let mut h = Json::object();
    h.set("count", Json::Number(snap.count as f64));
    if snap.is_empty() {
        return h;
    }
    h.set("sum", Json::Number(snap.sum));
    if let Some(min) = snap.min {
        h.set("min", Json::Number(min));
    }
    if let Some(max) = snap.max {
        h.set("max", Json::Number(max));
    }
    for (key, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
        if let Some(v) = snap.quantile(q) {
            h.set(key, Json::Number(v));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_serializes_the_span_tree() {
        let obs = Obs::new(true);
        {
            let step = obs.span("add_requirement");
            step.attr("requirement", "IR1");
            let _phase = obs.span("interpret");
        }
        let doc = trace_to_json(&obs.trace());
        assert_eq!(doc.path("spans.0.name").and_then(Json::as_str), Some("add_requirement"));
        assert_eq!(doc.path("spans.0.attrs.requirement").and_then(Json::as_str), Some("IR1"));
        assert_eq!(doc.path("spans.0.children.0.name").and_then(Json::as_str), Some("interpret"));
        // The document round-trips through the parser.
        let parsed = Json::parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(parsed.path("spans.0.name").and_then(Json::as_str), Some("add_requirement"));
    }

    #[test]
    fn metrics_include_counters_histograms_and_pool_stats() {
        let obs = Obs::new(true);
        obs.add("engine.runs", 2);
        obs.observe("engine.op_seconds", 0.25);
        let doc = metrics_to_json(&obs);
        // Metric names contain dots, so fetch them with `get`, not `path`.
        assert_eq!(doc.get("counters").and_then(|c| c.get("engine.runs")).and_then(Json::as_f64), Some(2.0));
        let h = doc.get("histograms").and_then(|h| h.get("engine.op_seconds")).unwrap();
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(h.get("p50").and_then(Json::as_f64).is_some(), "quantiles present");
        assert!(h.get("p99").and_then(Json::as_f64).is_some());
        assert!(doc.path("pool.regions").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn gauges_get_their_own_section() {
        let obs = Obs::new(true);
        obs.set_gauge("pool.queue_depth", 3);
        let doc = metrics_to_json(&obs);
        assert_eq!(doc.get("gauges").and_then(|g| g.get("pool.queue_depth")).and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn empty_histograms_render_as_bare_count_zero() {
        let obs = Obs::new(true);
        obs.histogram("idle.seconds"); // registered, never observed
                                       // Force it into the document the way a collector would.
        let snap = match obs.metric("idle.seconds").unwrap() {
            Metric::Histogram(s) => s,
            other => panic!("{other:?}"),
        };
        let h = histogram_to_json(&snap);
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(0.0));
        assert!(h.get("min").is_none(), "no fabricated min: {h:?}");
        assert!(h.get("max").is_none(), "no fabricated max: {h:?}");
        assert!(h.get("p50").is_none());
        // And the encoding stays parseable (no bare `inf` tokens).
        Json::parse(&h.to_pretty_string()).expect("well-formed");
    }
}
