//! Lifecycle configuration: the user-specified quality factors (paper §1:
//! "Quarry accounts for user-specified quality factors") and integration
//! options.

use quarry_etl::cost::{EstimatedTime, EtlCostModel, SourceStats};
use quarry_integrator::anneal::AnnealOptions;
use quarry_integrator::etl::EtlIntegrationOptions;
use quarry_md::{CostModel, StructuralComplexity};
use quarry_repository::FsyncPolicy;
use std::path::PathBuf;

/// Configuration of a [`crate::Quarry`] instance.
pub struct QuarryConfig {
    /// Quality factor for MD schema integration (default: structural design
    /// complexity, the paper's demonstrated factor).
    pub md_cost: Box<dyn CostModel + Send + Sync>,
    /// Quality factor for ETL integration (default: estimated overall
    /// execution time).
    pub etl_cost: Box<dyn EtlCostModel + Send + Sync>,
    /// Source statistics feeding the ETL cost model.
    pub stats: SourceStats,
    /// ETL consolidation options (equivalence-rule alignment on by default).
    pub etl_options: EtlIntegrationOptions,
    /// Name of the unified design (used in artifact keys and DDL).
    pub design_name: String,
    /// Interpreter options (e.g. derived time dimensions).
    pub interpreter: quarry_interpreter::InterpreterOptions,
    /// Address for the live telemetry endpoint (e.g. `"127.0.0.1:9464"`;
    /// port 0 picks a free port). `None` (the default) means no endpoint;
    /// the service layer starts one from this via
    /// [`crate::service::ServiceRequest::ServeMetrics`].
    pub metrics_addr: Option<String>,
    /// Directory for the durable metadata repository (write-ahead log +
    /// snapshots). `None` (the default) keeps the repository in memory —
    /// metadata vanishes with the process. With a directory set, the
    /// instance recovers all prior lifecycle state on construction and logs
    /// every mutation before applying it.
    pub repository_dir: Option<PathBuf>,
    /// When repository log appends reach disk (only meaningful with
    /// `repository_dir` set). Defaults to batched fsyncs.
    pub fsync: FsyncPolicy,
    /// Cost-based flow optimizer settings (the `optimizer.*` keys).
    pub optimizer: OptimizerConfig,
    /// Cross-run subflow result cache settings (the `cache.*` keys).
    pub cache: CacheConfig,
}

/// The `optimizer.*` configuration keys: the cost-based flow optimizer that
/// anneals the unified ETL flow over semantically-equivalent rewrites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// `optimizer.enabled` — run the optimizer automatically after every
    /// integration step. Off by default: [`crate::Quarry::optimize`] can
    /// always be invoked explicitly.
    pub enabled: bool,
    /// `optimizer.budget_ms` — wall-clock safety valve per optimization.
    pub budget_ms: u64,
    /// `optimizer.chains` — independent annealing chains on the worker pool.
    pub chains: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        let d = AnnealOptions::default();
        OptimizerConfig { enabled: false, budget_ms: d.budget_ms, chains: d.chains }
    }
}

impl OptimizerConfig {
    /// The annealer options these keys select (search schedule knobs keep
    /// their defaults, so results stay deterministic per seed).
    pub fn anneal_options(&self) -> AnnealOptions {
        AnnealOptions { chains: self.chains.max(1), budget_ms: self.budget_ms.max(1), ..AnnealOptions::default() }
    }
}

/// The `cache.*` configuration keys: the cross-run subflow result cache that
/// serves materialized intermediates keyed by recursive operator fingerprint
/// (epoch-invalidated, cost-admitted, budget-evicted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// `cache.enabled` — consult and populate the result cache on every ETL
    /// run. On by default: correctness is guaranteed by fingerprinting (a
    /// stale entry cannot hit), so the only cost of `true` is the admission
    /// bookkeeping.
    pub enabled: bool,
    /// `cache.budget_bytes` — upper bound on resident cached bytes; the
    /// cache evicts cost-weighted-LRU victims past it. Default 256 MiB.
    pub budget_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { enabled: true, budget_bytes: 256 << 20 }
    }
}

impl Default for QuarryConfig {
    fn default() -> Self {
        QuarryConfig {
            md_cost: Box::new(StructuralComplexity::new()),
            etl_cost: Box::new(EstimatedTime::new()),
            stats: SourceStats::new(),
            etl_options: EtlIntegrationOptions::default(),
            design_name: "unified".to_string(),
            interpreter: quarry_interpreter::InterpreterOptions::default(),
            metrics_addr: None,
            repository_dir: None,
            fsync: FsyncPolicy::Batched,
            optimizer: OptimizerConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

impl QuarryConfig {
    /// TPC-H-flavoured defaults: source statistics matching the generator's
    /// cardinalities at the given scale factor.
    pub fn tpch(scale_factor: f64) -> Self {
        let mut cfg = QuarryConfig::default();
        let (supplier, part, partsupp, customer, orders) = quarry_engine::tpch::row_counts(scale_factor);
        cfg.stats.set_table("region", 5.0);
        cfg.stats.set_table("nation", 25.0);
        cfg.stats.set_table("supplier", supplier as f64);
        cfg.stats.set_table("part", part as f64);
        cfg.stats.set_table("partsupp", partsupp as f64);
        cfg.stats.set_table("customer", customer as f64);
        cfg.stats.set_table("orders", orders as f64);
        cfg.stats.set_table("lineitem", orders as f64 * 4.0);
        // The TPC-H primary keys, declared so the optimizer's join-reorder
        // legality analysis can prove build-side uniqueness.
        cfg.stats.declare_unique("region", vec!["r_regionkey".into()]);
        cfg.stats.declare_unique("nation", vec!["n_nationkey".into()]);
        cfg.stats.declare_unique("supplier", vec!["s_suppkey".into()]);
        cfg.stats.declare_unique("part", vec!["p_partkey".into()]);
        cfg.stats.declare_unique("partsupp", vec!["ps_partkey".into(), "ps_suppkey".into()]);
        cfg.stats.declare_unique("customer", vec!["c_custkey".into()]);
        cfg.stats.declare_unique("orders", vec!["o_orderkey".into()]);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_the_paper_quality_factors() {
        let cfg = QuarryConfig::default();
        assert_eq!(cfg.md_cost.name(), "structural-design-complexity");
        assert_eq!(cfg.etl_cost.name(), "estimated-execution-time");
        assert!(cfg.etl_options.align_with_rules);
    }

    #[test]
    fn tpch_stats_scale_with_sf() {
        let small = QuarryConfig::tpch(0.01);
        let large = QuarryConfig::tpch(0.1);
        assert!(small.stats.table_rows("lineitem") < large.stats.table_rows("lineitem"));
        assert_eq!(small.stats.table_rows("nation"), 25.0);
    }

    #[test]
    fn tpch_declares_the_primary_keys() {
        let cfg = QuarryConfig::tpch(0.01);
        assert!(cfg.stats.datastore_unique_on("part", &["p_partkey".into()]));
        assert!(cfg.stats.datastore_unique_on("supplier", &["s_suppkey".into()]));
        assert!(cfg.stats.datastore_unique_on("partsupp", &["ps_partkey".into(), "ps_suppkey".into()]));
        assert!(!cfg.stats.datastore_unique_on("partsupp", &["ps_partkey".into()]));
        assert!(!cfg.stats.datastore_unique_on("lineitem", &["l_orderkey".into()]));
    }

    #[test]
    fn cache_defaults_are_on_and_budgeted() {
        let cfg = QuarryConfig::default();
        assert!(cfg.cache.enabled);
        assert_eq!(cfg.cache.budget_bytes, 256 << 20);
    }

    #[test]
    fn optimizer_defaults_are_off_but_budgeted() {
        let cfg = QuarryConfig::default();
        assert!(!cfg.optimizer.enabled);
        assert!(cfg.optimizer.budget_ms > 0 && cfg.optimizer.chains > 0);
        let opts = cfg.optimizer.anneal_options();
        assert_eq!(opts.chains, cfg.optimizer.chains);
        assert_eq!(opts.budget_ms, cfg.optimizer.budget_ms);
    }
}
