//! Lifecycle configuration: the user-specified quality factors (paper §1:
//! "Quarry accounts for user-specified quality factors") and integration
//! options.

use quarry_etl::cost::{EstimatedTime, EtlCostModel, SourceStats};
use quarry_integrator::etl::EtlIntegrationOptions;
use quarry_md::{CostModel, StructuralComplexity};
use quarry_repository::FsyncPolicy;
use std::path::PathBuf;

/// Configuration of a [`crate::Quarry`] instance.
pub struct QuarryConfig {
    /// Quality factor for MD schema integration (default: structural design
    /// complexity, the paper's demonstrated factor).
    pub md_cost: Box<dyn CostModel + Send + Sync>,
    /// Quality factor for ETL integration (default: estimated overall
    /// execution time).
    pub etl_cost: Box<dyn EtlCostModel + Send + Sync>,
    /// Source statistics feeding the ETL cost model.
    pub stats: SourceStats,
    /// ETL consolidation options (equivalence-rule alignment on by default).
    pub etl_options: EtlIntegrationOptions,
    /// Name of the unified design (used in artifact keys and DDL).
    pub design_name: String,
    /// Interpreter options (e.g. derived time dimensions).
    pub interpreter: quarry_interpreter::InterpreterOptions,
    /// Address for the live telemetry endpoint (e.g. `"127.0.0.1:9464"`;
    /// port 0 picks a free port). `None` (the default) means no endpoint;
    /// the service layer starts one from this via
    /// [`crate::service::ServiceRequest::ServeMetrics`].
    pub metrics_addr: Option<String>,
    /// Directory for the durable metadata repository (write-ahead log +
    /// snapshots). `None` (the default) keeps the repository in memory —
    /// metadata vanishes with the process. With a directory set, the
    /// instance recovers all prior lifecycle state on construction and logs
    /// every mutation before applying it.
    pub repository_dir: Option<PathBuf>,
    /// When repository log appends reach disk (only meaningful with
    /// `repository_dir` set). Defaults to batched fsyncs.
    pub fsync: FsyncPolicy,
}

impl Default for QuarryConfig {
    fn default() -> Self {
        QuarryConfig {
            md_cost: Box::new(StructuralComplexity::new()),
            etl_cost: Box::new(EstimatedTime::new()),
            stats: SourceStats::new(),
            etl_options: EtlIntegrationOptions::default(),
            design_name: "unified".to_string(),
            interpreter: quarry_interpreter::InterpreterOptions::default(),
            metrics_addr: None,
            repository_dir: None,
            fsync: FsyncPolicy::Batched,
        }
    }
}

impl QuarryConfig {
    /// TPC-H-flavoured defaults: source statistics matching the generator's
    /// cardinalities at the given scale factor.
    pub fn tpch(scale_factor: f64) -> Self {
        let mut cfg = QuarryConfig::default();
        let (supplier, part, partsupp, customer, orders) = quarry_engine::tpch::row_counts(scale_factor);
        cfg.stats.set_table("region", 5.0);
        cfg.stats.set_table("nation", 25.0);
        cfg.stats.set_table("supplier", supplier as f64);
        cfg.stats.set_table("part", part as f64);
        cfg.stats.set_table("partsupp", partsupp as f64);
        cfg.stats.set_table("customer", customer as f64);
        cfg.stats.set_table("orders", orders as f64);
        cfg.stats.set_table("lineitem", orders as f64 * 4.0);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_the_paper_quality_factors() {
        let cfg = QuarryConfig::default();
        assert_eq!(cfg.md_cost.name(), "structural-design-complexity");
        assert_eq!(cfg.etl_cost.name(), "estimated-execution-time");
        assert!(cfg.etl_options.align_with_rules);
    }

    #[test]
    fn tpch_stats_scale_with_sf() {
        let small = QuarryConfig::tpch(0.01);
        let large = QuarryConfig::tpch(0.1);
        assert!(small.stats.table_rows("lineitem") < large.stats.table_rows("lineitem"));
        assert_eq!(small.stats.table_rows("nation"), 25.0);
    }
}
