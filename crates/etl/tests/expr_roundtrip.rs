//! Property tests for the expression language: display → parse is the
//! identity on arbitrary expression trees, and normalization is stable.

use proptest::prelude::*;
use quarry_etl::{parse_expr, rules, BinOp, Expr, UnOp};

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(Expr::Column),
        (-1000i64..1000).prop_map(Expr::Int),
        // Floats with short decimal expansions survive display exactly.
        (-10_000i64..10_000).prop_map(|v| Expr::Float(v as f64 / 100.0)),
        "[a-zA-Z0-9 ']{0,10}".prop_map(Expr::Str),
        any::<bool>().prop_map(Expr::Bool),
        Just(Expr::Null),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            // The parser canonicalizes negated numeric literals into the
            // literal itself, so fold them here too.
            inner.clone().prop_map(|e| match e {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Float(v) => Expr::Float(-v),
                other => Expr::Unary(UnOp::Neg, Box::new(other)),
            }),
            (
                prop_oneof![Just("YEAR"), Just("ABS"), Just("CONCAT"), Just("COALESCE")],
                prop::collection::vec(inner, 1..3)
            )
                .prop_map(|(name, args)| Expr::Call(name.to_string(), args)),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::And),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_parse_is_identity(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap_or_else(|err| panic!("{err}\n{printed}"));
        prop_assert_eq!(reparsed, e);
    }

    #[test]
    fn predicate_normalization_is_idempotent(e in arb_expr()) {
        let once = rules::normalize_predicate(&e);
        let twice = rules::normalize_predicate(&once);
        prop_assert_eq!(once.to_string(), twice.to_string());
    }

    #[test]
    fn column_footprint_is_stable_under_roundtrip(e in arb_expr()) {
        let reparsed = parse_expr(&e.to_string()).expect("display output parses");
        prop_assert_eq!(reparsed.columns(), e.columns());
    }
}
