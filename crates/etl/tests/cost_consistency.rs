//! Cost-model consistency properties on randomized flows — the invariants
//! the annealing optimizer's correctness rests on:
//!
//! 1. `EstimatedTime::decompose()` parts sum to `cost()` (±ε).
//! 2. Every rewrite move is cost-delta-consistent: the incrementally
//!    maintained cost equals a full re-cost of the mutated flow.
//! 3. `undo` restores the state bit-identically.

use proptest::prelude::*;
use quarry_etl::cost::{EstimatedTime, EtlCostModel, SourceStats, TimeWeights};
use quarry_etl::rewrite::{Move, RewriteError, RewriteState};
use quarry_etl::{parse_expr, AggSpec, ColType, Column, Flow, JoinKind, OpKind, Schema};

fn mix(state: &mut u64) -> u64 {
    // SplitMix64: deterministic, seedable, no external dependency.
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, n: u64) -> u64 {
    mix(state) % n
}

fn chance(state: &mut u64, percent: u64) -> bool {
    pick(state, 100) < percent
}

fn lineitem() -> OpKind {
    OpKind::Datastore {
        datastore: "lineitem".into(),
        schema: Schema::new(vec![
            Column::new("l_orderkey", ColType::Integer),
            Column::new("l_partkey", ColType::Integer),
            Column::new("l_extendedprice", ColType::Decimal),
            Column::new("l_discount", ColType::Decimal),
            Column::new("l_quantity", ColType::Integer),
        ]),
    }
}

fn orders() -> OpKind {
    OpKind::Datastore {
        datastore: "orders".into(),
        schema: Schema::new(vec![
            Column::new("o_orderkey", ColType::Integer),
            Column::new("o_custkey", ColType::Integer),
            Column::new("o_totalprice", ColType::Decimal),
        ]),
    }
}

fn part() -> OpKind {
    OpKind::Datastore {
        datastore: "part".into(),
        schema: Schema::new(vec![
            Column::new("p_partkey", ColType::Integer),
            Column::new("p_name", ColType::Text),
            Column::new("p_retailprice", ColType::Decimal),
        ]),
    }
}

/// Appends a random run of unary operations over the lineitem schema.
fn random_lineitem_chain(f: &mut Flow, mut at: quarry_etl::OpId, rng: &mut u64, tag: &str) -> quarry_etl::OpId {
    let preds =
        ["l_discount > 0.05", "l_quantity < 25", "l_extendedprice > 1000", "l_discount > 0.01 AND l_quantity > 5"];
    for i in 0..pick(rng, 3) {
        let p = preds[pick(rng, preds.len() as u64) as usize];
        at = f.append(at, format!("SEL_{tag}_{i}"), OpKind::Selection { predicate: parse_expr(p).unwrap() }).unwrap();
    }
    if chance(rng, 30) {
        at = f.append(at, format!("SORT_{tag}"), OpKind::Sort { columns: vec!["l_orderkey".into()] }).unwrap();
    }
    at
}

/// A randomized but always-valid flow over the TPC-H-shaped table pool,
/// plus randomized statistics (rows, declared keys, observations).
fn random_flow(seed: u64) -> (Flow, SourceStats) {
    let mut rng = seed;
    let mut f = Flow::new(format!("rand_{seed}"));
    let li = f.add_op("DS_lineitem", lineitem()).unwrap();
    let mut spine = random_lineitem_chain(&mut f, li, &mut rng, "a");

    // Optionally a union of two lineitem branches (schemas stay identical:
    // selections and sorts preserve schema).
    if chance(&mut rng, 25) {
        let li2 = f.append(spine, "DUP_GUARD", OpKind::Distinct).unwrap();
        let li3 = f.add_op("DS_lineitem_b", lineitem()).unwrap();
        let branch = random_lineitem_chain(&mut f, li3, &mut rng, "b");
        let u = f.add_op("UNION_li", OpKind::Union).unwrap();
        f.connect(li2, u).unwrap();
        f.connect(branch, u).unwrap();
        spine = u;
    }

    // Join orders; maybe stack a part join on top (the swap-move shape).
    if chance(&mut rng, 80) {
        let ord = f.add_op("DS_orders", orders()).unwrap();
        let j = f
            .add_op(
                "JOIN_orders",
                OpKind::Join {
                    kind: if chance(&mut rng, 80) { JoinKind::Inner } else { JoinKind::Left },
                    left_on: vec!["l_orderkey".into()],
                    right_on: vec!["o_orderkey".into()],
                },
            )
            .unwrap();
        f.connect(spine, j).unwrap();
        f.connect(ord, j).unwrap();
        spine = j;
        if chance(&mut rng, 60) {
            let pt = f.add_op("DS_part", part()).unwrap();
            let pin = if chance(&mut rng, 50) {
                f.append(pt, "SEL_part", OpKind::Selection { predicate: parse_expr("p_retailprice > 500").unwrap() })
                    .unwrap()
            } else {
                pt
            };
            let j2 = f
                .add_op(
                    "JOIN_part",
                    OpKind::Join {
                        kind: JoinKind::Inner,
                        left_on: vec!["l_partkey".into()],
                        right_on: vec!["p_partkey".into()],
                    },
                )
                .unwrap();
            f.connect(spine, j2).unwrap();
            f.connect(pin, j2).unwrap();
            spine = j2;
        }
    }

    if chance(&mut rng, 40) {
        spine = f
            .append(
                spine,
                "DERIVE_rev",
                OpKind::Derivation {
                    column: "revenue".into(),
                    expr: parse_expr("l_extendedprice * (1 - l_discount)").unwrap(),
                },
            )
            .unwrap();
    }

    // Post-join filters keep the optimizer's pushdown moves interesting.
    if chance(&mut rng, 50) {
        spine = f
            .append(spine, "SEL_late", OpKind::Selection { predicate: parse_expr("l_quantity > 1").unwrap() })
            .unwrap();
    }

    if chance(&mut rng, 70) {
        spine = f
            .append(
                spine,
                "AGG_main",
                OpKind::Aggregation {
                    group_by: vec!["l_orderkey".into()],
                    aggregates: vec![AggSpec::new("SUM", parse_expr("l_extendedprice").unwrap(), "total")],
                },
            )
            .unwrap();
    }
    f.append(spine, "LOAD_main", OpKind::Loader { table: "fact".into(), key: vec![] }).unwrap();

    let mut stats = SourceStats::new()
        .with_table("lineitem", (1000 + pick(&mut rng, 9000)) as f64)
        .with_table("orders", (500 + pick(&mut rng, 2000)) as f64)
        .with_table("part", (200 + pick(&mut rng, 1000)) as f64);
    if chance(&mut rng, 70) {
        stats.declare_unique("orders", vec!["o_orderkey".into()]);
    }
    if chance(&mut rng, 70) {
        stats.declare_unique("part", vec!["p_partkey".into()]);
    }
    // Random observations against existing op names (absolute for any op,
    // io pairs for selections).
    let names: Vec<(String, bool)> =
        f.ops().map(|o| (o.name.clone(), matches!(o.kind, OpKind::Selection { .. }))).collect();
    for (name, is_sel) in names {
        if is_sel && chance(&mut rng, 40) {
            let rows_in = (100 + pick(&mut rng, 5000)) as f64;
            let rows_out = rows_in * (pick(&mut rng, 100) as f64 / 100.0);
            stats.observe_op_io(&name, rows_in, rows_out);
        } else if chance(&mut rng, 15) {
            stats.observe_op(&name, (1 + pick(&mut rng, 4000)) as f64);
        }
    }
    (f, stats)
}

fn models() -> [EstimatedTime; 2] {
    [EstimatedTime::default(), EstimatedTime { weights: TimeWeights::columnar() }]
}

fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite invariant: the additive decomposition sums to the total.
    #[test]
    fn decompose_parts_sum_to_cost(seed in any::<u64>()) {
        let (flow, stats) = random_flow(seed);
        for model in models() {
            let total = model.cost(&flow, &stats).unwrap();
            let parts = model.decompose(&flow, &stats).unwrap().expect("EstimatedTime decomposes");
            prop_assert_eq!(parts.len(), flow.op_count());
            let sum: f64 = parts.iter().map(|p| p.cost).sum();
            assert_close(sum, total, "decompose sum");
        }
    }

    /// The annealer invariant: every move either cleanly rejects, or the
    /// incrementally maintained cost matches a full re-cost and undo
    /// restores the state bit-identically.
    #[test]
    fn every_move_is_delta_consistent(seed in any::<u64>()) {
        let (flow, stats) = random_flow(seed);
        for model in models() {
            let mut st = RewriteState::new(flow.clone(), stats.clone(), model).unwrap();
            assert_close(st.cost(), st.full_recost().unwrap(), "initial cost");
            for mv in st.candidate_moves() {
                let reference = st.clone();
                match st.apply(&mv) {
                    Ok(applied) => {
                        st.flow().validate().unwrap();
                        assert_close(st.cost(), st.full_recost().unwrap(), &st.describe(&mv));
                        st.undo(applied);
                    }
                    // `Flow` errors are late legality rejections (e.g. a
                    // hoisted predicate's column was pruned upstream by an
                    // earlier move): the rollback below must leave the state
                    // untouched.
                    Err(RewriteError::Illegal(_) | RewriteError::Flow(_)) => {}
                }
                prop_assert_eq!(st.flow(), reference.flow(), "flow restored after {}", st.describe(&mv));
                prop_assert_eq!(st.cost().to_bits(), reference.cost().to_bits());
            }
        }
    }

    /// Random walks stay consistent: a chain of accepted moves (no undo)
    /// still re-costs exactly, and the flow stays valid throughout.
    #[test]
    fn random_move_sequences_stay_consistent(seed in any::<u64>()) {
        let (flow, stats) = random_flow(seed);
        let model = EstimatedTime { weights: TimeWeights::columnar() };
        let mut st = RewriteState::new(flow, stats, model).unwrap();
        let mut rng = seed ^ 0xabcdef;
        for _ in 0..12 {
            let moves = st.candidate_moves();
            if moves.is_empty() {
                break;
            }
            let mv = moves[pick(&mut rng, moves.len() as u64) as usize];
            match st.apply(&mv) {
                Ok(applied) => {
                    // Keep roughly half, undo the rest — both paths must
                    // stay consistent.
                    if chance(&mut rng, 50) {
                        st.undo(applied);
                    }
                }
                // Late legality rejections roll back; the checks below
                // verify the state stayed consistent either way.
                Err(RewriteError::Illegal(_) | RewriteError::Flow(_)) => {}
            }
            st.flow().validate().unwrap();
            assert_close(st.cost(), st.full_recost().unwrap(), "after walk step");
        }
    }

    /// Selectivity composition stays a probability on arbitrary predicates
    /// (satellite: AND/OR clamping).
    #[test]
    fn selectivity_is_always_a_probability(seed in any::<u64>()) {
        let mut rng = seed;
        let preds = [
            "a > 1 OR b > 2 OR c > 3 OR d > 4 OR e > 5",
            "a = 1 OR a = 2 OR a = 3 OR a = 4 OR a = 5 OR a = 6 OR a = 7",
            "NOT (a > 1 OR b > 2 OR c > 3)",
            "a > 1 AND (b > 2 OR c > 3 OR d > 4 OR e > 5 OR f > 6)",
        ];
        let p = parse_expr(preds[pick(&mut rng, preds.len() as u64) as usize]).unwrap();
        let s = quarry_etl::cost::selectivity(&p);
        prop_assert!((0.0..=1.0).contains(&s), "selectivity {s} out of [0,1]");
    }
}

/// A left join must never accept a swap (outer semantics are not
/// reorderable) — deterministic companion to the randomized suite.
#[test]
fn left_joins_never_swap() {
    for seed in 0..64u64 {
        let (flow, stats) = random_flow(seed);
        let model = EstimatedTime { weights: TimeWeights::columnar() };
        let Ok(mut st) = RewriteState::new(flow, stats, model) else { continue };
        let left_joins: Vec<_> = st
            .flow()
            .ops()
            .filter(|o| matches!(o.kind, OpKind::Join { kind: JoinKind::Left, .. }))
            .map(|o| o.id)
            .collect();
        for j in left_joins {
            assert!(
                matches!(st.apply(&Move::SwapJoins { upper: j }), Err(RewriteError::Illegal(_))),
                "left join accepted a swap"
            );
        }
    }
}
