//! The logical operation taxonomy of the xLM layer.

use crate::expr::Expr;
use crate::flow::FlowError;
use crate::schema::{ColType, Column, Schema};
use std::fmt;

/// Join kinds supported by the logical layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Left,
}

impl JoinKind {
    pub fn as_str(self) -> &'static str {
        match self {
            JoinKind::Inner => "inner",
            JoinKind::Left => "left",
        }
    }

    pub fn parse(s: &str) -> Option<JoinKind> {
        match s {
            "inner" => Some(JoinKind::Inner),
            "left" => Some(JoinKind::Left),
            _ => None,
        }
    }
}

/// One aggregate computed by an [`OpKind::Aggregation`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregation function name: SUM, AVERAGE, MIN, MAX, COUNT.
    pub function: String,
    /// Input expression over the input schema (empty column set for COUNT).
    pub input: Expr,
    /// Output column name.
    pub output: String,
}

impl AggSpec {
    pub fn new(function: impl Into<String>, input: Expr, output: impl Into<String>) -> Self {
        AggSpec { function: function.into(), input, output: output.into() }
    }
}

/// The kind (and parameters) of a logical ETL operation.
///
/// Arity: `Datastore` is a source (0 inputs); `Join` and `Union` are binary;
/// `Loader` is a sink (1 input, 0 consumers required); everything else is
/// unary.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Binding to a source datastore with its extraction schema.
    Datastore { datastore: String, schema: Schema },
    /// Extraction of a subset of the datastore's columns into the flow
    /// (the paper's `DATASTORE_x → EXTRACTION_x` pattern).
    Extraction { columns: Vec<String> },
    /// Row filter.
    Selection { predicate: Expr },
    /// Column subset / reordering.
    Projection { columns: Vec<String> },
    /// Computed column appended to the schema.
    Derivation { column: String, expr: Expr },
    /// Equi-join of two inputs on positionally paired columns.
    Join { kind: JoinKind, left_on: Vec<String>, right_on: Vec<String> },
    /// Group-by aggregation.
    Aggregation { group_by: Vec<String>, aggregates: Vec<AggSpec> },
    /// Union of two schema-compatible inputs.
    Union,
    /// Duplicate elimination over the full row.
    Distinct,
    /// Sort (logical ordering hint; deployers map it to platform sorters).
    Sort { columns: Vec<String> },
    /// Surrogate-key generation from a natural key (how the Partsupp
    /// composite key becomes the single `PartsuppID` of the paper's DDL).
    SurrogateKey { natural: Vec<String>, output: String },
    /// Sink into a target table. With a non-empty `key`, loading is an
    /// upsert on those columns (how conformed dimension tables grow across
    /// requirements); with an empty key it appends.
    Loader { table: String, key: Vec<String> },
}

impl OpKind {
    /// Number of inputs the operation consumes.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::Datastore { .. } => 0,
            OpKind::Join { .. } | OpKind::Union => 2,
            _ => 1,
        }
    }

    /// True for sources.
    pub fn is_source(&self) -> bool {
        matches!(self, OpKind::Datastore { .. })
    }

    /// True for sinks.
    pub fn is_sink(&self) -> bool {
        matches!(self, OpKind::Loader { .. })
    }

    /// The xLM `<type>` tag of the operation.
    pub fn type_name(&self) -> &'static str {
        match self {
            OpKind::Datastore { .. } => "Datastore",
            OpKind::Extraction { .. } => "Extraction",
            OpKind::Selection { .. } => "Selection",
            OpKind::Projection { .. } => "Projection",
            OpKind::Derivation { .. } => "Derivation",
            OpKind::Join { .. } => "Join",
            OpKind::Aggregation { .. } => "Aggregation",
            OpKind::Union => "Union",
            OpKind::Distinct => "Distinct",
            OpKind::Sort { .. } => "Sort",
            OpKind::SurrogateKey { .. } => "SurrogateKey",
            OpKind::Loader { .. } => "Loader",
        }
    }

    /// Computes the output schema from the input schemas, validating every
    /// column reference and type constraint on the way. `name` is the
    /// operation name used in error reports.
    pub fn output_schema(&self, name: &str, inputs: &[Schema]) -> Result<Schema, FlowError> {
        let expect_arity = self.arity();
        if inputs.len() != expect_arity {
            return Err(FlowError::Arity { op: name.to_string(), expected: expect_arity, found: inputs.len() });
        }
        let invalid = |detail: String| FlowError::InvalidOp { op: name.to_string(), detail };
        match self {
            OpKind::Datastore { schema, .. } => Ok(schema.clone()),
            OpKind::Extraction { columns } => {
                let input = &inputs[0];
                input.project(columns).ok_or_else(|| invalid(format!("extracts a column missing from {input}")))
            }
            OpKind::Selection { predicate } => {
                let t = predicate.infer_type(&inputs[0]).map_err(|e| invalid(e.to_string()))?;
                if t != ColType::Boolean {
                    return Err(invalid(format!("selection predicate has type {t}, expected boolean")));
                }
                Ok(inputs[0].clone())
            }
            OpKind::Projection { columns } => inputs[0]
                .project(columns)
                .ok_or_else(|| invalid(format!("projects a column missing from {}", inputs[0]))),
            OpKind::Derivation { column, expr } => {
                if inputs[0].has(column) {
                    return Err(invalid(format!("derived column `{column}` already exists")));
                }
                let ty = expr.infer_type(&inputs[0]).map_err(|e| invalid(e.to_string()))?;
                let mut out = inputs[0].clone();
                out.columns.push(Column::new(column.clone(), ty));
                Ok(out)
            }
            OpKind::Join { left_on, right_on, .. } => {
                if left_on.len() != right_on.len() || left_on.is_empty() {
                    return Err(invalid("join key lists must be non-empty and of equal length".into()));
                }
                for (l, r) in left_on.iter().zip(right_on) {
                    let lc = inputs[0].column(l).ok_or_else(|| invalid(format!("left join key `{l}` missing")))?;
                    let rc = inputs[1].column(r).ok_or_else(|| invalid(format!("right join key `{r}` missing")))?;
                    if lc.ty != rc.ty {
                        return Err(invalid(format!("join key type mismatch: {l}:{} vs {r}:{}", lc.ty, rc.ty)));
                    }
                }
                // Same-name equi-joined key pairs (the FK = PK case) are kept
                // once: the left copy. Their values coincide on matches, and
                // on left-join misses the left side holds the data.
                let kept: Vec<&Column> = inputs[1]
                    .columns
                    .iter()
                    .filter(|c| !right_on.iter().zip(left_on).any(|(r, l)| *r == c.name && l == r))
                    .collect();
                let mut out = inputs[0].clone();
                out.columns.extend(kept.into_iter().cloned());
                if let Some(dup) = out.duplicate_name() {
                    return Err(invalid(format!("join output would duplicate column `{dup}`")));
                }
                Ok(out)
            }
            OpKind::Aggregation { group_by, aggregates } => {
                let input = &inputs[0];
                let mut out = Vec::with_capacity(group_by.len() + aggregates.len());
                for g in group_by {
                    out.push(input.column(g).ok_or_else(|| invalid(format!("group-by column `{g}` missing")))?.clone());
                }
                for a in aggregates {
                    let fn_upper = a.function.to_ascii_uppercase();
                    let ty = match fn_upper.as_str() {
                        "COUNT" => ColType::Integer,
                        "SUM" | "AVG" | "AVERAGE" | "MIN" | "MAX" => {
                            let t = a.input.infer_type(input).map_err(|e| invalid(e.to_string()))?;
                            if matches!(fn_upper.as_str(), "SUM" | "AVG" | "AVERAGE") && !t.is_numeric() {
                                return Err(invalid(format!("{} over non-numeric input", a.function)));
                            }
                            if matches!(fn_upper.as_str(), "AVG" | "AVERAGE") {
                                ColType::Decimal
                            } else {
                                t
                            }
                        }
                        other => return Err(invalid(format!("unknown aggregation function `{other}`"))),
                    };
                    out.push(Column::new(a.output.clone(), ty));
                }
                let schema = Schema::new(out);
                if let Some(dup) = schema.duplicate_name() {
                    return Err(invalid(format!("aggregation output duplicates column `{dup}`")));
                }
                Ok(schema)
            }
            OpKind::Union => {
                let (l, r) = (&inputs[0], &inputs[1]);
                if l != r {
                    return Err(invalid(format!("union inputs differ: {l} vs {r}")));
                }
                Ok(l.clone())
            }
            OpKind::Distinct => Ok(inputs[0].clone()),
            OpKind::Sort { columns } => {
                for c in columns {
                    if !inputs[0].has(c) {
                        return Err(invalid(format!("sort column `{c}` missing")));
                    }
                }
                Ok(inputs[0].clone())
            }
            OpKind::SurrogateKey { natural, output } => {
                for c in natural {
                    if !inputs[0].has(c) {
                        return Err(invalid(format!("surrogate-key input column `{c}` missing")));
                    }
                }
                if inputs[0].has(output) {
                    return Err(invalid(format!("surrogate-key output `{output}` already exists")));
                }
                let mut out = inputs[0].clone();
                out.columns.push(Column::new(output.clone(), ColType::Integer));
                Ok(out)
            }
            OpKind::Loader { key, .. } => {
                for k in key {
                    if !inputs[0].has(k) {
                        return Err(invalid(format!("upsert key column `{k}` missing")));
                    }
                }
                Ok(inputs[0].clone())
            }
        }
    }

    /// The set of input columns the operation *reads* (not what it passes
    /// through) — the footprint used by the equivalence rules.
    pub fn reads(&self) -> Vec<String> {
        match self {
            OpKind::Datastore { .. } | OpKind::Union | OpKind::Distinct | OpKind::Loader { .. } => Vec::new(),
            OpKind::Extraction { columns } | OpKind::Projection { columns } | OpKind::Sort { columns } => {
                columns.clone()
            }
            OpKind::Selection { predicate } => predicate.columns().into_iter().collect(),
            OpKind::Derivation { expr, .. } => expr.columns().into_iter().collect(),
            OpKind::Join { left_on, right_on, .. } => {
                let mut v = left_on.clone();
                v.extend(right_on.iter().cloned());
                v
            }
            OpKind::Aggregation { group_by, aggregates } => {
                let mut v = group_by.clone();
                for a in aggregates {
                    v.extend(a.input.columns());
                }
                v
            }
            OpKind::SurrogateKey { natural, .. } => natural.clone(),
        }
    }

    /// Columns the operation introduces into its output.
    pub fn introduces(&self) -> Vec<String> {
        match self {
            OpKind::Derivation { column, .. } => vec![column.clone()],
            OpKind::SurrogateKey { output, .. } => vec![output.clone()],
            OpKind::Aggregation { aggregates, .. } => aggregates.iter().map(|a| a.output.clone()).collect(),
            _ => Vec::new(),
        }
    }
}

/// The right-input columns a join keeps in its output: everything except
/// same-name equi-joined key columns (those are represented by their left
/// copies). Returns indices into the right schema.
pub fn join_kept_right_indices(right: &Schema, left_on: &[String], right_on: &[String]) -> Vec<usize> {
    right
        .columns
        .iter()
        .enumerate()
        .filter(|(_, c)| !right_on.iter().zip(left_on).any(|(r, l)| *r == c.name && l == r))
        .map(|(i, _)| i)
        .collect()
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Datastore { datastore, .. } => write!(f, "Datastore({datastore})"),
            OpKind::Extraction { columns } => write!(f, "Extraction({})", columns.join(", ")),
            OpKind::Selection { predicate } => write!(f, "Selection({predicate})"),
            OpKind::Projection { columns } => write!(f, "Projection({})", columns.join(", ")),
            OpKind::Derivation { column, expr } => write!(f, "Derivation({column} := {expr})"),
            OpKind::Join { kind, left_on, right_on } => {
                write!(f, "Join[{}]({} = {})", kind.as_str(), left_on.join(","), right_on.join(","))
            }
            OpKind::Aggregation { group_by, aggregates } => {
                write!(f, "Aggregation(by {}; ", group_by.join(","))?;
                for (i, a) in aggregates.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}({}) as {}", a.function, a.input, a.output)?;
                }
                write!(f, ")")
            }
            OpKind::Union => write!(f, "Union"),
            OpKind::Distinct => write!(f, "Distinct"),
            OpKind::Sort { columns } => write!(f, "Sort({})", columns.join(", ")),
            OpKind::SurrogateKey { natural, output } => {
                write!(f, "SurrogateKey({} -> {output})", natural.join(","))
            }
            OpKind::Loader { table, key } => {
                if key.is_empty() {
                    write!(f, "Loader({table})")
                } else {
                    write!(f, "Loader({table} upsert {})", key.join(","))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_expr;

    fn lineitem_schema() -> Schema {
        Schema::new(vec![
            Column::new("l_orderkey", ColType::Integer),
            Column::new("l_extendedprice", ColType::Decimal),
            Column::new("l_discount", ColType::Decimal),
        ])
    }

    fn orders_schema() -> Schema {
        Schema::new(vec![Column::new("o_orderkey", ColType::Integer), Column::new("o_totalprice", ColType::Decimal)])
    }

    #[test]
    fn datastore_emits_its_schema() {
        let op = OpKind::Datastore { datastore: "lineitem".into(), schema: lineitem_schema() };
        assert_eq!(op.output_schema("d", &[]).unwrap(), lineitem_schema());
        assert!(op.output_schema("d", &[lineitem_schema()]).is_err(), "sources take no inputs");
    }

    #[test]
    fn extraction_projects() {
        let op = OpKind::Extraction { columns: vec!["l_discount".into()] };
        let out = op.output_schema("e", &[lineitem_schema()]).unwrap();
        assert_eq!(out.names().collect::<Vec<_>>(), ["l_discount"]);
        let bad = OpKind::Extraction { columns: vec!["ghost".into()] };
        assert!(bad.output_schema("e", &[lineitem_schema()]).is_err());
    }

    #[test]
    fn selection_requires_boolean_predicate() {
        let ok = OpKind::Selection { predicate: parse_expr("l_discount > 0.05").unwrap() };
        assert_eq!(ok.output_schema("s", &[lineitem_schema()]).unwrap(), lineitem_schema());
        let bad = OpKind::Selection { predicate: parse_expr("l_discount + 1").unwrap() };
        assert!(bad.output_schema("s", &[lineitem_schema()]).is_err());
    }

    #[test]
    fn derivation_appends_typed_column() {
        let op = OpKind::Derivation {
            column: "revenue".into(),
            expr: parse_expr("l_extendedprice * (1 - l_discount)").unwrap(),
        };
        let out = op.output_schema("d", &[lineitem_schema()]).unwrap();
        assert_eq!(out.column("revenue").unwrap().ty, ColType::Decimal);
        // Duplicate output column rejected.
        assert!(op.output_schema("d", &[out]).is_err());
    }

    #[test]
    fn join_concats_and_checks_keys() {
        let op = OpKind::Join {
            kind: JoinKind::Inner,
            left_on: vec!["l_orderkey".into()],
            right_on: vec!["o_orderkey".into()],
        };
        let out = op.output_schema("j", &[lineitem_schema(), orders_schema()]).unwrap();
        assert_eq!(out.len(), 5);
        let bad_key =
            OpKind::Join { kind: JoinKind::Inner, left_on: vec!["ghost".into()], right_on: vec!["o_orderkey".into()] };
        assert!(bad_key.output_schema("j", &[lineitem_schema(), orders_schema()]).is_err());
        let type_clash = OpKind::Join {
            kind: JoinKind::Inner,
            left_on: vec!["l_extendedprice".into()],
            right_on: vec!["o_orderkey".into()],
        };
        assert!(type_clash.output_schema("j", &[lineitem_schema(), orders_schema()]).is_err());
    }

    #[test]
    fn join_rejects_duplicate_output_columns() {
        let op = OpKind::Join {
            kind: JoinKind::Inner,
            left_on: vec!["l_orderkey".into()],
            right_on: vec!["l_orderkey".into()],
        };
        assert!(op.output_schema("j", &[lineitem_schema(), lineitem_schema()]).is_err());
    }

    #[test]
    fn aggregation_builds_output_schema() {
        let op = OpKind::Aggregation {
            group_by: vec!["l_orderkey".into()],
            aggregates: vec![
                AggSpec::new("SUM", parse_expr("l_extendedprice").unwrap(), "total"),
                AggSpec::new("COUNT", Expr::Int(1), "n"),
                AggSpec::new("AVERAGE", parse_expr("l_discount").unwrap(), "avg_disc"),
            ],
        };
        let out = op.output_schema("a", &[lineitem_schema()]).unwrap();
        assert_eq!(out.names().collect::<Vec<_>>(), ["l_orderkey", "total", "n", "avg_disc"]);
        assert_eq!(out.column("n").unwrap().ty, ColType::Integer);
        assert_eq!(out.column("avg_disc").unwrap().ty, ColType::Decimal);
    }

    #[test]
    fn aggregation_rejects_bad_functions_and_inputs() {
        let bad_fn = OpKind::Aggregation {
            group_by: vec![],
            aggregates: vec![AggSpec::new("MEDIAN", parse_expr("l_discount").unwrap(), "m")],
        };
        assert!(bad_fn.output_schema("a", &[lineitem_schema()]).is_err());
        let sum_text =
            OpKind::Aggregation { group_by: vec![], aggregates: vec![AggSpec::new("SUM", Expr::Str("x".into()), "m")] };
        assert!(sum_text.output_schema("a", &[lineitem_schema()]).is_err());
    }

    #[test]
    fn union_requires_identical_schemas() {
        let op = OpKind::Union;
        assert!(op.output_schema("u", &[lineitem_schema(), lineitem_schema()]).is_ok());
        assert!(op.output_schema("u", &[lineitem_schema(), orders_schema()]).is_err());
    }

    #[test]
    fn surrogate_key_appends_integer() {
        let op = OpKind::SurrogateKey { natural: vec!["l_orderkey".into()], output: "sk".into() };
        let out = op.output_schema("k", &[lineitem_schema()]).unwrap();
        assert_eq!(out.column("sk").unwrap().ty, ColType::Integer);
    }

    #[test]
    fn reads_and_introduces_footprints() {
        let op = OpKind::Selection { predicate: parse_expr("a > 1 AND b = 'x'").unwrap() };
        assert_eq!(op.reads(), ["a", "b"]);
        let op = OpKind::Derivation { column: "c".into(), expr: parse_expr("a + b").unwrap() };
        assert_eq!(op.introduces(), ["c"]);
        let op = OpKind::Aggregation {
            group_by: vec!["g".into()],
            aggregates: vec![AggSpec::new("SUM", parse_expr("x").unwrap(), "out")],
        };
        assert_eq!(op.reads(), ["g", "x"]);
        assert_eq!(op.introduces(), ["out"]);
    }

    #[test]
    fn type_names_cover_all_variants() {
        let ops: Vec<OpKind> = vec![
            OpKind::Datastore { datastore: "d".into(), schema: Schema::empty() },
            OpKind::Extraction { columns: vec![] },
            OpKind::Selection { predicate: Expr::Bool(true) },
            OpKind::Projection { columns: vec![] },
            OpKind::Derivation { column: "c".into(), expr: Expr::Int(1) },
            OpKind::Join { kind: JoinKind::Inner, left_on: vec![], right_on: vec![] },
            OpKind::Aggregation { group_by: vec![], aggregates: vec![] },
            OpKind::Union,
            OpKind::Distinct,
            OpKind::Sort { columns: vec![] },
            OpKind::SurrogateKey { natural: vec![], output: "o".into() },
            OpKind::Loader { table: "t".into(), key: vec![] },
        ];
        let names: std::collections::BTreeSet<_> = ops.iter().map(|o| o.type_name()).collect();
        assert_eq!(names.len(), ops.len(), "every variant has a distinct type name");
    }
}
