//! The logical ETL process model of Quarry (the xLM layer \[12\]).
//!
//! An ETL process is a DAG of logical operations — datastores, extractions,
//! selections, projections, joins, aggregations, surrogate-key generation,
//! loaders — exchanged between components as xLM documents and deployed onto
//! execution platforms (Pentaho PDI in the paper; this workspace's
//! `quarry-engine` runs them natively).
//!
//! The crate provides:
//!
//! - the flow graph ([`Flow`], [`Operation`], [`OpKind`]) with requirement
//!   traceability on every operation;
//! - typed schema propagation ([`Flow::validate`]) — every edge carries a
//!   well-defined relational schema or the flow is rejected;
//! - the expression language shared by predicates, derivations and measures
//!   ([`Expr`], [`parse_expr`]);
//! - the **generic equivalence rules** (§2.3) that let the ETL Process
//!   Integrator align operation order when hunting for overlap ([`rules`]);
//! - **configurable cost models** (§2.3) estimating e.g. overall execution
//!   time from propagated cardinalities ([`cost`]).

#![forbid(unsafe_code)]

mod compiled;
pub mod cost;
mod expr;
mod flow;
mod ops;
pub mod rewrite;
pub mod rules;
mod schema;

pub use compiled::{CompiledExpr, UnboundColumn};
pub use expr::{parse_expr, BinOp, Expr, ExprError, UnOp};
pub use flow::{Flow, FlowError, OpId, Operation, ReqSet};
pub use ops::{join_kept_right_indices, AggSpec, JoinKind, OpKind};
pub use schema::{ColType, Column, Schema};
