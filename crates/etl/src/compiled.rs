//! Pre-compiled expressions: [`Expr`] with every column reference resolved
//! to a positional index against a fixed input schema.
//!
//! The executor's hot loops evaluate the same expression once per row; with
//! the plain AST every `Expr::Column` costs a name lookup (string hash +
//! compare) per row. Compiling binds names to positions once per operator,
//! so row evaluation is pure positional access. Function names are
//! upper-cased at compile time for the same reason.

use crate::expr::{BinOp, Expr, UnOp};
use crate::schema::Schema;
use std::fmt;

/// An expression with column references bound to positions in a schema.
///
/// Mirrors [`Expr`] exactly, except `Column(String)` becomes `Col(usize)`
/// and call names are pre-uppercased. Built with [`CompiledExpr::compile`].
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// Positional column reference into the schema it was compiled against.
    Col(usize),
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    Unary(UnOp, Box<CompiledExpr>),
    Binary(BinOp, Box<CompiledExpr>, Box<CompiledExpr>),
    /// Call with the function name already upper-cased.
    Call(String, Vec<CompiledExpr>),
}

/// A column reference that does not exist in the schema compiled against.
/// Surfaced at bind time, before any row is touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundColumn(pub String);

impl fmt::Display for UnboundColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown column `{}`", self.0)
    }
}

impl std::error::Error for UnboundColumn {}

impl CompiledExpr {
    /// Binds every column reference in `expr` to its position in `schema`.
    ///
    /// Unknown function names are *not* rejected here: they stay runtime
    /// errors so that short-circuit evaluation keeps its semantics (a
    /// predicate `false AND MYSTERY(x)` never evaluates the call).
    pub fn compile(expr: &Expr, schema: &Schema) -> Result<CompiledExpr, UnboundColumn> {
        Ok(match expr {
            Expr::Column(name) => {
                let i = schema.index_of(name).ok_or_else(|| UnboundColumn(name.clone()))?;
                CompiledExpr::Col(i)
            }
            Expr::Int(v) => CompiledExpr::Int(*v),
            Expr::Float(v) => CompiledExpr::Float(*v),
            Expr::Str(s) => CompiledExpr::Str(s.clone()),
            Expr::Bool(b) => CompiledExpr::Bool(*b),
            Expr::Null => CompiledExpr::Null,
            Expr::Unary(op, e) => CompiledExpr::Unary(*op, Box::new(Self::compile(e, schema)?)),
            Expr::Binary(op, l, r) => {
                CompiledExpr::Binary(*op, Box::new(Self::compile(l, schema)?), Box::new(Self::compile(r, schema)?))
            }
            Expr::Call(name, args) => CompiledExpr::Call(
                name.to_ascii_uppercase(),
                args.iter().map(|a| Self::compile(a, schema)).collect::<Result<_, _>>()?,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_expr;
    use crate::schema::{ColType, Column};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("price", ColType::Decimal), Column::new("qty", ColType::Integer)])
    }

    #[test]
    fn binds_columns_to_positions() {
        let e = parse_expr("price * qty").unwrap();
        let c = CompiledExpr::compile(&e, &schema()).unwrap();
        assert_eq!(
            c,
            CompiledExpr::Binary(BinOp::Mul, Box::new(CompiledExpr::Col(0)), Box::new(CompiledExpr::Col(1)),)
        );
    }

    #[test]
    fn unknown_column_fails_at_bind_time() {
        let e = parse_expr("ghost + 1").unwrap();
        let err = CompiledExpr::compile(&e, &schema()).unwrap_err();
        assert_eq!(err, UnboundColumn("ghost".into()));
        assert_eq!(err.to_string(), "unknown column `ghost`");
    }

    #[test]
    fn call_names_are_uppercased_once() {
        let e = parse_expr("concat(price, 'x')").unwrap();
        match CompiledExpr::compile(&e, &schema()).unwrap() {
            CompiledExpr::Call(name, args) => {
                assert_eq!(name, "CONCAT");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn unknown_functions_survive_compilation() {
        // Runtime concern: `false AND MYSTERY(qty)` must stay evaluable.
        let e = parse_expr("MYSTERY(qty)").unwrap();
        assert!(CompiledExpr::compile(&e, &schema()).is_ok());
    }
}
